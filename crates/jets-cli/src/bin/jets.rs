//! The stand-alone `jets` tool (paper Section 5.1).
//!
//! ```text
//! jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS]
//!               [--events-out FILE] [--metrics-addr ADDR]
//!               [--journal FILE] [--fsync-policy always|interval|never]
//!               [--flight-recorder FILE]
//! jets events --in FILE [--nodes N] [--step-ms MS] [--stats]
//! jets top --metrics ADDR [--interval-ms MS] [--once]
//! jets journal <dump|verify> FILE
//! jets flight <dump|tail> FILE [--stats] [--interval-ms MS]
//! jets trace <export|critical-path JOB|stats> FLIGHT_FILE... [--out FILE]
//! jets bench-conn [--conns N] [--frames M] [--loops L]
//!                 [--workers W] [--jobs J] [--out FILE]
//! ```
//!
//! Reads a task list (`MPI: <nodes> [ppn=<k>] cmd args...` or bare
//! command lines), starts the dispatcher, and runs the batch on whatever
//! workers connect. `--simulate N` boots N in-process worker agents with
//! the standard + science application registries, so a batch of builtin
//! (`@`-prefixed) tasks runs with no external setup.
//!
//! `--events-out FILE` dumps the dispatcher's event log as JSON Lines
//! after the run; `jets events --in FILE` recomputes the paper's
//! utilization / load / availability statistics from such a dump
//! offline, with no dispatcher running — `--stats` adds the per-phase
//! latency percentile table, under the same metric names a live
//! `/metrics` scrape uses.
//!
//! `--metrics-addr ADDR` serves `GET /metrics` (Prometheus text) and
//! `GET /healthz` off the running dispatcher; `jets top --metrics ADDR`
//! polls that endpoint and renders a one-screen cluster snapshot. See
//! `docs/observability.md`.
//!
//! `--journal FILE` makes the dispatcher keep a crash-recovery
//! write-ahead journal; re-running with the same file resumes the
//! batch's unfinished jobs (see `docs/fault-tolerance.md`). `jets
//! journal dump FILE` prints a journal's records; `jets journal verify
//! FILE` checks its integrity and summarizes what a restart would
//! recover.
//!
//! `--flight-recorder FILE` backs the dispatcher's event ring with a
//! crash-durable mmap at FILE: the last ~131k events survive `kill -9`.
//! `jets flight dump FILE` replays such a file offline (`--stats` adds
//! the phase table); `jets flight tail FILE` follows a *live* ring from
//! another process without ever blocking its writer.
//!
//! `jets trace` merges dispatcher + relay + worker flight files into one
//! cross-process span timeline (see `docs/observability.md`): `export`
//! writes Chrome trace-event / Perfetto JSON, `critical-path JOB` prints
//! where one job's wall time went phase by phase, and `stats` recomputes
//! the paper's Eq. (1) utilization from exec spans.

use cluster_sim::{science_registry, Allocation, AllocationConfig};
use jets_cli::prom::Scrape;
use jets_cli::{parse_args, Args};
use jets_core::protocol::{read_msg, write_msg, DispatcherMsg, WorkerMsg};
use jets_core::{stats, Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets_obs::Histogram;
use jets_reactor::{CloseReason, ConnHandler, Flow, Outbox, Reactor, ReactorConfig};
use jets_worker::Executor;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("events") {
        let args = parse_args(argv.into_iter().skip(1), &["in", "nodes", "step-ms"]);
        events_main(&args);
    }
    if argv.first().map(String::as_str) == Some("top") {
        let args = parse_args(argv.into_iter().skip(1), &["metrics", "interval-ms"]);
        top_main(&args);
    }
    if argv.first().map(String::as_str) == Some("journal") {
        let args = parse_args(argv.into_iter().skip(1), &[]);
        journal_main(&args);
    }
    if argv.first().map(String::as_str) == Some("flight") {
        let args = parse_args(argv.into_iter().skip(1), &["interval-ms"]);
        flight_main(&args);
    }
    if argv.first().map(String::as_str) == Some("trace") {
        let args = parse_args(argv.into_iter().skip(1), &["out"]);
        trace_main(&args);
    }
    if argv.first().map(String::as_str) == Some("bench-conn") {
        let args = parse_args(
            argv.into_iter().skip(1),
            &["conns", "frames", "loops", "workers", "jobs", "out"],
        );
        bench_conn_main(&args);
    }
    let args = parse_args(
        argv,
        &[
            "listen",
            "simulate",
            "timeout",
            "events-out",
            "metrics-addr",
            "journal",
            "fsync-policy",
            "flight-recorder",
        ],
    );
    let Some(taskfile) = args.positional.first() else {
        eprintln!(
            "usage: jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS] [--events-out FILE] [--metrics-addr ADDR] [--journal FILE] [--fsync-policy always|interval|never] [--flight-recorder FILE]\n       jets events --in FILE [--nodes N] [--step-ms MS] [--stats]\n       jets top --metrics ADDR [--interval-ms MS] [--once]\n       jets journal <dump|verify> FILE\n       jets flight <dump|tail> FILE [--stats] [--interval-ms MS]\n       jets trace <export|critical-path JOB|stats> FLIGHT_FILE... [--out FILE]"
        );
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(taskfile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jets: cannot read {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    let fsync_policy = match args.get("fsync-policy") {
        None => jets_core::FsyncPolicy::Always,
        Some(s) => match jets_core::FsyncPolicy::parse(s) {
            Some(p) => p,
            None => {
                eprintln!("jets: bad --fsync-policy {s:?} (always | interval | never)");
                std::process::exit(2);
            }
        },
    };
    let config = DispatcherConfig {
        bind_addr: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        journal: args.get("journal").map(std::path::PathBuf::from),
        fsync_policy,
        flight_recorder: args.get("flight-recorder").map(std::path::PathBuf::from),
        ..DispatcherConfig::default()
    };
    let dispatcher = match Dispatcher::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jets: cannot start dispatcher: {e}");
            std::process::exit(1);
        }
    };
    println!("jets: dispatcher listening on {}", dispatcher.addr());
    if let Some(path) = args.get("journal") {
        println!("jets: journaling state transitions to {path}");
        if dispatcher.recovering() {
            println!("jets: reconciling jobs recovered from a previous run");
        }
    }
    if let Some(path) = args.get("flight-recorder") {
        println!("jets: flight recorder ring at {path}");
    }
    if let Some(addr) = args.get("metrics-addr") {
        match dispatcher.serve_metrics(addr) {
            Ok(local) => println!("jets: serving http://{local}/metrics"),
            Err(e) => {
                eprintln!("jets: cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    let simulate: u32 = args.get_parse("simulate", 0);
    let allocation = if simulate > 0 {
        println!("jets: booting {simulate} simulated workers");
        Some(Allocation::start(
            &dispatcher.addr().to_string(),
            AllocationConfig::new(simulate),
            Arc::new(Executor::new(science_registry())),
        ))
    } else {
        println!(
            "jets: waiting for external workers (start jets-worker --dispatcher {})",
            dispatcher.addr()
        );
        None
    };

    let ids = match dispatcher.submit_input(&text) {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("jets: {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    println!("jets: submitted {} jobs", ids.len());

    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    if !dispatcher.wait_idle(timeout) {
        eprintln!(
            "jets: timed out after {timeout:?} with {} jobs outstanding",
            dispatcher.outstanding()
        );
        std::process::exit(1);
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for id in &ids {
        match dispatcher.job_record(*id).map(|r| r.status) {
            Some(JobStatus::Succeeded) => ok += 1,
            _ => failed += 1,
        }
    }
    println!("jets: {ok} succeeded, {failed} failed");
    dispatcher.shutdown();
    if let Some(alloc) = allocation {
        alloc.join_all();
    }
    if let Some(path) = args.get("events-out") {
        match std::fs::File::create(path) {
            Ok(mut file) => match dispatcher.events().write_jsonl(&mut file) {
                Ok(()) => println!("jets: wrote {} events to {path}", dispatcher.events().len()),
                Err(e) => eprintln!("jets: cannot write events to {path}: {e}"),
            },
            Err(e) => eprintln!("jets: cannot create {path}: {e}"),
        }
    }
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

/// `jets events --in FILE`: recompute run statistics from a JSONL event
/// dump, offline.
fn events_main(args: &Args) -> ! {
    let Some(path) = args.get("in") else {
        eprintln!("usage: jets events --in FILE [--nodes N] [--step-ms MS]");
        std::process::exit(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jets: cannot open {path}: {e}");
            std::process::exit(2);
        }
    };
    let load = match jets_core::read_jsonl(BufReader::new(file)) {
        Ok(load) => load,
        Err(e) => {
            eprintln!("jets: {path}: {e}");
            std::process::exit(2);
        }
    };
    if load.skipped > 0 {
        eprintln!("jets: {path}: skipped {} malformed line(s)", load.skipped);
    }
    let events = load.events;
    if events.is_empty() {
        println!("jets: {path}: empty event log");
        std::process::exit(0);
    }
    let span = events.last().map(|e| e.t).unwrap_or_default();
    // Allocation size: given, or inferred as the distinct workers seen.
    let nodes = {
        let given: usize = args.get_parse("nodes", 0);
        if given > 0 {
            given
        } else {
            let mut seen = HashSet::new();
            for e in &events {
                if let EventKind::WorkerUp { worker } = &e.kind {
                    seen.insert(*worker);
                }
            }
            seen.len()
        }
    };
    let step = Duration::from_millis(args.get_parse("step-ms", 1000u64));
    println!(
        "jets: {path}: {} events over {:.3}s",
        events.len(),
        span.as_secs_f64()
    );
    println!("  allocation size: {nodes}");
    let done = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskEnded { .. }))
        .count();
    println!("  tasks ended:     {done}");
    if nodes > 0 {
        println!(
            "  utilization:     {:.1}%",
            100.0 * stats::measured_utilization(&events, nodes)
        );
    }
    let load = stats::load_series(&events, step);
    if let Some(peak) = load.iter().max_by_key(|s| s.busy_ranks) {
        println!(
            "  peak load:       {} tasks / {} busy ranks at t={:.1}s",
            peak.running_tasks,
            peak.busy_ranks,
            peak.t.as_secs_f64()
        );
    }
    let avail = stats::availability_series(&events, step);
    if let (Some(min), Some(max)) = (
        avail.iter().map(|s| s.alive).min(),
        avail.iter().map(|s| s.alive).max(),
    ) {
        println!("  workers alive:   min {min}, max {max}");
    }
    if args.has_flag("stats") {
        print_phase_stats(&events);
    }
    std::process::exit(0);
}

/// `jets events --stats`: per-phase latency percentiles by job size,
/// computed from `JobPhases` records through the same histogram type
/// (and under the same metric name) a live `/metrics` scrape uses.
///
/// The pmi column's denominator is honest: only gangs that actually
/// released a barrier feed the pmi percentiles. Jobs with no barrier
/// (sequential jobs, or gangs that died before fencing) are counted and
/// reported separately, never folded in as zeros.
fn print_phase_stats(events: &[jets_core::Event]) {
    use std::collections::BTreeMap;

    struct SizeRow {
        jobs: u64,
        queue: Histogram,
        launch: Histogram,
        run: Histogram,
        pmi: Histogram,
        pmi_jobs: u64,
        no_barrier: u64,
    }
    let mut by_size: BTreeMap<u32, SizeRow> = BTreeMap::new();
    for e in events {
        if let EventKind::JobPhases {
            nodes,
            queue_us,
            launch_us,
            pmi_us,
            run_us,
            ..
        } = &e.kind
        {
            let row = by_size.entry(*nodes).or_insert_with(|| SizeRow {
                jobs: 0,
                queue: Histogram::new(),
                launch: Histogram::new(),
                run: Histogram::new(),
                pmi: Histogram::new(),
                pmi_jobs: 0,
                no_barrier: 0,
            });
            row.jobs += 1;
            row.queue.record(*queue_us);
            row.launch.record(*launch_us);
            row.run.record(*run_us);
            match pmi_us {
                Some(us) => {
                    row.pmi.record(*us);
                    row.pmi_jobs += 1;
                }
                None => row.no_barrier += 1,
            }
        }
    }
    if by_size.is_empty() {
        println!("  no JobPhases records (log predates lifecycle tracing)");
        return;
    }
    let fmt = |s: &jets_obs::HistogramSnapshot| {
        format!(
            "{:.6}/{:.6}/{:.6}",
            s.p50 as f64 / 1e6,
            s.p95 as f64 / 1e6,
            s.p99 as f64 / 1e6
        )
    };
    println!(
        "  {} p50/p95/p99 by job size (seconds):",
        jets_core::metrics::JOB_PHASE_METRIC
    );
    println!(
        "  {:>5} {:>6}  {:<28} {:<28} {:<28} {:<28}",
        "nodes", "jobs", "queue", "launch", "run", "pmi"
    );
    for (nodes, row) in &by_size {
        println!(
            "  {:>5} {:>6}  {:<28} {:<28} {:<28} {:<28}",
            nodes,
            row.jobs,
            fmt(&row.queue.snapshot()),
            fmt(&row.launch.snapshot()),
            fmt(&row.run.snapshot()),
            if row.pmi_jobs > 0 {
                format!("{} ({} gangs)", fmt(&row.pmi.snapshot()), row.pmi_jobs)
            } else {
                "-".to_string()
            }
        );
    }
    let no_barrier: u64 = by_size.values().map(|r| r.no_barrier).sum();
    if no_barrier > 0 {
        println!(
            "  {no_barrier} job(s) released no PMI barrier (sequential or died \
             before fencing); excluded from the pmi percentiles above"
        );
    }
}

/// `jets journal <dump|verify> FILE`: inspect a dispatcher write-ahead
/// journal offline. `dump` prints every intact record in append order;
/// `verify` checks framing integrity and summarizes what a restart
/// would recover. Both tolerate a torn tail (the crash case the journal
/// exists for) and report how many bytes it cost; a file that is not a
/// journal at all is an error.
fn journal_main(args: &Args) -> ! {
    let (Some(action), Some(path)) = (
        args.positional.first().map(String::as_str),
        args.positional.get(1),
    ) else {
        eprintln!("usage: jets journal <dump|verify> FILE");
        std::process::exit(2);
    };
    if action != "dump" && action != "verify" {
        eprintln!("jets journal: unknown action {action:?} (dump | verify)");
        std::process::exit(2);
    }
    let summary = match jets_core::journal::scan(std::path::Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jets journal: {path}: {e}");
            std::process::exit(1);
        }
    };
    if action == "dump" {
        for (i, rec) in summary.records.iter().enumerate() {
            println!("{i:>6}  {rec:?}");
        }
    }
    println!(
        "jets journal: {path}: {} records, {} bytes valid",
        summary.records.len(),
        summary.valid_len
    );
    if summary.dropped_bytes() > 0 {
        println!(
            "  torn tail: {} trailing bytes will be discarded on reopen",
            summary.dropped_bytes()
        );
    }
    if action == "verify" {
        let rec = jets_core::journal::recover(&summary.records);
        let queued = rec
            .jobs
            .iter()
            .filter(|j| j.phase == jets_core::journal::RecoveredPhase::Queued)
            .count();
        println!("  finished jobs:   {}", rec.finished);
        println!(
            "  recoverable:     {} ({queued} queued, {} mid-attempt)",
            rec.jobs.len(),
            rec.jobs.len() - queued
        );
        println!("  next job id:     {}", rec.next_job);
        println!("  next task id:    {}", rec.next_task);
        if !rec.strikes.is_empty() {
            println!("  quarantine strikes carried: {:?}", rec.strikes);
        }
    }
    std::process::exit(0);
}

/// `jets flight <dump|tail> FILE`: inspect a flight-recorder ring.
/// `dump` maps the file read-only and replays everything it retains —
/// the file may come from a `kill -9`'d process; torn and overwritten
/// slots are reported, not fatal. `--stats` adds the same per-phase
/// latency table `jets events --stats` prints. `tail` follows a *live*
/// ring: it seats a lock-free cursor at the current head and streams
/// events as the writer commits them, without ever blocking it.
fn flight_main(args: &Args) -> ! {
    let (Some(action), Some(path)) = (
        args.positional.first().map(String::as_str),
        args.positional.get(1),
    ) else {
        eprintln!("usage: jets flight <dump|tail> FILE [--stats] [--interval-ms MS]");
        std::process::exit(2);
    };
    let fmt_event = |e: &jets_core::Event| format!("t={:>12.6}s  {:?}", e.t.as_secs_f64(), e.kind);
    match action {
        "dump" => {
            let view = match jets_core::read_flight(std::path::Path::new(path)) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("jets flight: {path}: {e}");
                    std::process::exit(1);
                }
            };
            for (i, e) in view.events.iter().enumerate() {
                println!("{i:>6}  {}", fmt_event(e));
            }
            println!(
                "jets flight: {path}: {} events retained of {} recorded (epoch {} us)",
                view.events.len(),
                view.total_recorded,
                view.epoch_unix_us
            );
            if view.overwritten > 0 {
                println!(
                    "  overwritten:  {} oldest events lost to the ring",
                    view.overwritten
                );
            }
            if view.torn > 0 {
                println!(
                    "  torn:         {} slot(s) mid-write at the moment of death",
                    view.torn
                );
            }
            if view.undecodable > 0 {
                println!(
                    "  undecodable:  {} committed slot(s) failed to decode",
                    view.undecodable
                );
            }
            if args.has_flag("stats") {
                print_phase_stats(&view.events);
            }
            std::process::exit(0);
        }
        "tail" => {
            let mut tail = match jets_core::tail_flight(std::path::Path::new(path)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("jets flight: {path}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "jets flight: tailing {path} (writer pid {}); ctrl-c to stop",
                tail.writer_pid()
            );
            let interval = Duration::from_millis(args.get_parse("interval-ms", 200u64));
            let mut lapped_seen = 0u64;
            loop {
                while let Some(e) = tail.poll() {
                    println!("{}", fmt_event(&e));
                }
                if tail.lapped() > lapped_seen {
                    eprintln!(
                        "jets flight: fell behind the writer, skipped {} event(s)",
                        tail.lapped() - lapped_seen
                    );
                    lapped_seen = tail.lapped();
                }
                std::thread::sleep(interval);
            }
        }
        _ => {
            eprintln!("jets flight: unknown action {action:?} (dump | tail)");
            std::process::exit(2);
        }
    }
}

/// `jets trace <export|critical-path JOB|stats> FLIGHT_FILE...`: merge
/// dispatcher + relay + worker flight-recorder files into one
/// cross-process span timeline. Every input may come from a `kill -9`'d
/// process — spans whose end never landed are reported as open, never
/// fatal. `export` writes Chrome trace-event / Perfetto JSON to `--out`
/// (or stdout); `critical-path JOB` prints where that job's wall time
/// went; `stats` recomputes Eq. (1) utilization from exec spans.
fn trace_main(args: &Args) -> ! {
    const USAGE: &str =
        "usage: jets trace <export|critical-path JOB|stats> FLIGHT_FILE... [--out FILE]";
    let Some(action) = args.positional.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let fmt_s = |us: u64| format!("{:.6}", us as f64 / 1e6);
    let load = |paths: &[String]| -> jets_trace::TraceModel {
        if paths.is_empty() {
            eprintln!("jets trace: no flight files given\n{USAGE}");
            std::process::exit(2);
        }
        match jets_trace::TraceModel::from_files(paths) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("jets trace: {e}");
                std::process::exit(1);
            }
        }
    };
    let lane_summary = |m: &jets_trace::TraceModel| {
        for lane in &m.lanes {
            println!(
                "  lane {} (pid {}): torn {}, undecodable {}, overwritten {}",
                lane.role.as_str(),
                lane.pid,
                lane.torn,
                lane.undecodable,
                lane.overwritten
            );
        }
        if m.unmatched_ends > 0 {
            println!(
                "  {} span end(s) whose start was lost to ring wraparound",
                m.unmatched_ends
            );
        }
        if !m.open.is_empty() {
            println!(
                "  {} span(s) still open at end of log (crash or in flight)",
                m.open.len()
            );
        }
    };
    match action {
        "export" => {
            let model = load(&args.positional[1..]);
            let json = model.perfetto_json();
            match args.get("out") {
                Some(out) => {
                    if let Err(e) = std::fs::write(out, &json) {
                        eprintln!("jets trace: cannot write {out}: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "jets trace: wrote {} span(s) from {} lane(s) to {out}",
                        model.spans.len(),
                        model.lanes.len()
                    );
                    lane_summary(&model);
                }
                None => print!("{json}"),
            }
            std::process::exit(0);
        }
        "critical-path" => {
            let Some(Ok(job)) = args.positional.get(1).map(|s| s.parse::<u64>()) else {
                eprintln!("jets trace: critical-path needs a numeric JOB id\n{USAGE}");
                std::process::exit(2);
            };
            let model = load(&args.positional[2..]);
            let Some(cp) = model.critical_path(job) else {
                eprintln!("jets trace: no spans for job {job}");
                std::process::exit(1);
            };
            println!(
                "jets trace: job {job} (trace {:#018x}): {} s wall across {} lane(s)",
                cp.trace,
                fmt_s(cp.total_us),
                model.lanes.len()
            );
            println!(
                "  {:<14} {:>5} {:>12} {:>7}",
                "phase", "spans", "seconds", "share"
            );
            for p in &cp.phases {
                println!(
                    "  {:<14} {:>5} {:>12} {:>6.1}%",
                    p.kind.as_str(),
                    p.spans,
                    fmt_s(p.dur_us),
                    p.share * 100.0
                );
            }
            println!(
                "  {:<14} {:>5} {:>12} {:>6.1}%",
                "(slack)",
                "",
                fmt_s(cp.slack_us),
                cp.slack_us as f64 / cp.total_us as f64 * 100.0
            );
            if let Some(task) = cp.dominant_task {
                println!("  dominant task {task} (last exec to finish):");
                for p in &cp.task_phases {
                    println!(
                        "  {:<14} {:>5} {:>12} {:>6.1}%",
                        p.kind.as_str(),
                        p.spans,
                        fmt_s(p.dur_us),
                        p.share * 100.0
                    );
                }
            }
            lane_summary(&model);
            std::process::exit(0);
        }
        "stats" => {
            let model = load(&args.positional[1..]);
            let st = model.stats();
            println!(
                "jets trace: {} job(s), {} closed span(s) over {} s",
                st.jobs,
                st.spans,
                fmt_s(st.window_us)
            );
            println!(
                "  utilization (Eq. 1): {:.4} ({} s exec-busy / {} worker lane(s) x {} s)",
                st.utilization,
                fmt_s(st.busy_us),
                st.worker_lanes,
                fmt_s(st.window_us)
            );
            println!(
                "  {:<14} {:>6} {:>12} {:>12} {:>12}",
                "kind", "count", "total s", "mean s", "max s"
            );
            for k in &st.per_kind {
                if k.count == 0 {
                    continue;
                }
                println!(
                    "  {:<14} {:>6} {:>12} {:>12} {:>12}",
                    k.kind.as_str(),
                    k.count,
                    fmt_s(k.total_us),
                    fmt_s(k.mean_us),
                    fmt_s(k.max_us)
                );
            }
            lane_summary(&model);
            std::process::exit(0);
        }
        _ => {
            eprintln!("jets trace: unknown action {action:?} (export | critical-path | stats)");
            std::process::exit(2);
        }
    }
}

/// `jets top`: poll a `/metrics` endpoint and render a one-screen
/// snapshot of the dispatcher.
fn top_main(args: &Args) -> ! {
    let Some(addr) = args.get("metrics") else {
        eprintln!("usage: jets top --metrics ADDR [--interval-ms MS] [--once]");
        std::process::exit(2);
    };
    let interval = Duration::from_millis(args.get_parse("interval-ms", 1000u64));
    let once = args.has_flag("once");
    scrape_loop(addr, interval, once);
}

/// The polling loop behind `jets top`. Never panics: a failed scrape is
/// reported and retried (`--once` turns it into a nonzero exit).
fn scrape_loop(addr: &str, interval: Duration, once: bool) -> ! {
    let mut tick = 0u64;
    loop {
        tick += 1;
        match jets_obs::scrape(addr, "/metrics") {
            Ok(text) => {
                let scrape = Scrape::parse(&text);
                if !once {
                    // Clear and home, terminal-top style.
                    print!("\x1b[2J\x1b[H");
                }
                render_top(addr, tick, &scrape);
            }
            Err(e) => {
                eprintln!("jets top: scrape {addr} failed: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        if once {
            std::process::exit(0);
        }
        std::thread::sleep(interval);
    }
}

/// Print one `jets top` frame from a parsed scrape.
fn render_top(addr: &str, tick: u64, s: &Scrape) {
    let v = |name: &str| s.value(name).unwrap_or(0.0);
    println!("jets top — {addr} (scrape #{tick})");
    println!();
    println!(
        "  jobs     submitted {:>8}  completed {:>8}  failed {:>6}  requeued {:>6}",
        v("jets_jobs_submitted_total"),
        v("jets_jobs_completed_total"),
        v("jets_jobs_failed_total"),
        v("jets_jobs_requeued_total"),
    );
    println!(
        "  queue    depth {:>8}      running gangs {:>6}",
        v("jets_queue_depth"),
        v("jets_running_gangs"),
    );
    println!(
        "  workers  alive {:>6}  ready {:>6}  busy {:>6}  quarantined {:>4}  relays {:>4}",
        v("jets_workers_alive"),
        v("jets_workers_ready"),
        v("jets_workers_busy"),
        v("jets_quarantined_current"),
        v("jets_relays_current"),
    );
    println!(
        "  faults   reconnects {:>6}  deadline-exceeded {:>6}",
        v("jets_reconnects_total"),
        v("jets_deadline_exceeded_total"),
    );
    println!();
    println!("  phase latency (seconds)        p50         p95         p99");
    for phase in jets_core::metrics::JOB_PHASES {
        let q = s.quantiles(jets_core::metrics::JOB_PHASE_METRIC, "phase", phase);
        let get = |k: &str| q.get(k).copied().unwrap_or(0.0);
        println!(
            "    {:<8} {:>21.6} {:>11.6} {:>11.6}",
            phase,
            get("0.5"),
            get("0.95"),
            get("0.99"),
        );
    }
}

/// `jets bench-conn`: measure the event-driven connection core and emit
/// a JSON report (`BENCH_pr6.json` at the repo root is a committed run).
///
/// Two phases:
///
/// 1. `reactor_echo` — a raw `jets-reactor` echo server: `--conns`
///    connections ping-pong `--frames` newline frames round-robin
///    through `--loops` event loops. No serde on this path, so it runs
///    anywhere — including the offline stub workspace — and isolates
///    the reactor's own per-frame cost.
/// 2. `dispatcher_scale` — a real dispatcher with `--conns` raw workers
///    registered over blocking sockets, held open: the thread census
///    before/after is the O(event loops)-not-O(connections) claim as a
///    number. Needs a working serde to frame the handshake; recorded as
///    skipped (with the reason) where only the inert stub is available.
/// 3. `job_throughput` — `--jobs` builtin no-op jobs drained by
///    `--workers` simulated workers: launch rate plus the per-phase
///    latency percentiles off the dispatcher's own histograms. Same
///    serde requirement as phase 2.
fn bench_conn_main(args: &Args) -> ! {
    let conns: usize = args.get_parse("conns", 512usize).max(1);
    let frames: usize = args.get_parse("frames", 20_000usize).max(1);
    let loops: usize = args.get_parse("loops", 2usize).max(1);

    let workers: u32 = args.get_parse("workers", 64u32).max(1);
    let jobs: usize = args.get_parse("jobs", 1024usize).max(1);

    eprintln!("bench-conn: reactor echo ({conns} conns, {frames} frames, {loops} loops)");
    let echo = bench_reactor_echo(conns, frames, loops);
    eprintln!("bench-conn: dispatcher scale ({conns} raw workers)");
    let scale = bench_dispatcher_scale(conns);
    eprintln!("bench-conn: job throughput ({jobs} jobs over {workers} simulated workers)");
    let thru = bench_job_throughput(workers, jobs);

    let mut doc = String::from("{\n");
    doc.push_str("  \"bench\": \"bench-conn\",\n");
    doc.push_str(&format!(
        "  \"config\": {{ \"conns\": {conns}, \"frames\": {frames}, \"event_loops\": {loops} }},\n"
    ));
    match &echo {
        Ok(s) => doc.push_str(&format!("  \"reactor_echo\": {s},\n")),
        Err(e) => doc.push_str(&format!(
            "  \"reactor_echo\": {{ \"skipped\": {} }},\n",
            json_str(e)
        )),
    }
    match &scale {
        Ok(s) => doc.push_str(&format!("  \"dispatcher_scale\": {s},\n")),
        Err(e) => doc.push_str(&format!(
            "  \"dispatcher_scale\": {{ \"skipped\": {} }},\n",
            json_str(e)
        )),
    }
    match &thru {
        Ok(s) => doc.push_str(&format!("  \"job_throughput\": {s}\n")),
        Err(e) => doc.push_str(&format!(
            "  \"job_throughput\": {{ \"skipped\": {} }}\n",
            json_str(e)
        )),
    }
    doc.push_str("}\n");

    match args.get("out") {
        Some(path) => match std::fs::write(path, &doc) {
            Ok(()) => println!("bench-conn: wrote {path}"),
            Err(e) => {
                eprintln!("bench-conn: cannot write {path}: {e}");
                std::process::exit(1);
            }
        },
        None => print!("{doc}"),
    }
    std::process::exit(if echo.is_ok() { 0 } else { 1 });
}

/// Minimal JSON string escaping for error messages.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `Threads:` from `/proc/self/status`, where the OS offers it.
fn thread_census() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn json_opt(n: Option<usize>) -> String {
    n.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Echo state machine for the raw reactor phase.
struct Echo {
    out: Option<Arc<Outbox>>,
    buf: Vec<u8>,
}

impl ConnHandler for Echo {
    fn on_open(&mut self, outbox: &Arc<Outbox>) {
        self.out = Some(outbox.clone());
    }
    fn on_frame(&mut self, frame: &[u8]) -> Flow {
        self.buf.clear();
        self.buf.extend_from_slice(frame);
        self.buf.push(b'\n');
        match &self.out {
            Some(out) if out.send(&self.buf) => Flow::Continue,
            _ => Flow::Close,
        }
    }
    fn on_close(&mut self, _reason: CloseReason) {}
}

fn bench_reactor_echo(conns: usize, frames: usize, loops: usize) -> Result<String, String> {
    let reactor = Reactor::start(ReactorConfig {
        event_loops: loops,
        thread_name: "bench-loop".to_string(),
        ..ReactorConfig::default()
    })
    .map_err(|e| format!("reactor start: {e}"))?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    reactor
        .listen(
            listener,
            Arc::new(|_sock: &TcpStream, _peer| {
                Some(Box::new(Echo {
                    out: None,
                    buf: Vec::new(),
                }) as Box<dyn ConnHandler>)
            }),
        )
        .map_err(|e| format!("listen: {e}"))?;

    let threads_before = thread_census();
    let mut clients = Vec::with_capacity(conns);
    for i in 0..conns {
        let sock = TcpStream::connect(addr).map_err(|e| format!("connect {i}: {e}"))?;
        sock.set_read_timeout(Some(Duration::from_secs(10))).ok();
        sock.set_nodelay(true).ok();
        let writer = sock.try_clone().map_err(|e| format!("clone {i}: {e}"))?;
        clients.push((BufReader::new(sock), writer));
    }
    let threads_after = thread_census();

    let start = Instant::now();
    let mut line = String::new();
    for i in 0..frames {
        let (reader, writer) = &mut clients[i % conns];
        writer
            .write_all(format!("ping-{i}\n").as_bytes())
            .map_err(|e| format!("frame {i} write: {e}"))?;
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("frame {i} read: {e}"))?;
        if line.trim_end() != format!("ping-{i}") {
            return Err(format!("frame {i}: echo mismatch: {line:?}"));
        }
    }
    let wall = start.elapsed();
    let stats = reactor.stats();
    let per_sec = frames as f64 / wall.as_secs_f64().max(1e-9);
    let out = format!(
        "{{ \"wall_ms\": {}, \"round_trips_per_sec\": {:.0}, \"threads_before_connect\": {}, \"threads_after_connect\": {}, \"reactor_connections_registered\": {}, \"reactor_frames_in\": {}, \"reactor_bytes_in\": {}, \"reactor_wakeups\": {}, \"outbox_high_water_bytes\": {}, \"slow_consumer_disconnects\": {} }}",
        wall.as_millis(),
        per_sec,
        json_opt(threads_before),
        json_opt(threads_after),
        stats.connections_registered(),
        stats.frames_in(),
        stats.bytes_in(),
        stats.wakeups(),
        stats.outbox_high_water(),
        stats.slow_consumer_disconnects(),
    );
    reactor.shutdown();
    drop(clients);
    Ok(out)
}

fn bench_dispatcher_scale(conns: usize) -> Result<String, String> {
    wire_serde_available()?;
    let d = Dispatcher::start(DispatcherConfig::default())
        .map_err(|e| format!("dispatcher start: {e}"))?;
    let addr = d.addr().to_string();
    let threads_before = thread_census();
    let mut held = Vec::with_capacity(conns);
    for i in 0..conns {
        let sock = TcpStream::connect(&addr).map_err(|e| format!("connect {i}: {e}"))?;
        sock.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let mut writer = sock.try_clone().map_err(|e| format!("clone {i}: {e}"))?;
        let mut reader = BufReader::new(sock);
        write_msg(
            &mut writer,
            &WorkerMsg::Register {
                name: format!("bench-{i}"),
                cores: 1,
                location: "bench".to_string(),
            },
        )
        .map_err(|e| format!("register {i}: {e}"))?;
        let ack: Option<DispatcherMsg> =
            read_msg(&mut reader).map_err(|e| format!("ack {i}: {e}"))?;
        if !matches!(ack, Some(DispatcherMsg::Registered { .. })) {
            return Err(format!(
                "connection {i}: no Registered ack (got {ack:?}); \
                 a None here usually means this build cannot frame wire \
                 messages (offline stub serde) — run from the full workspace"
            ));
        }
        held.push((reader, writer));
    }
    let threads_after = thread_census();
    let grown = match (threads_before, threads_after) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b)),
        _ => None,
    };
    let rs = d.reactor_stats();
    let out = format!(
        "{{ \"conns\": {}, \"alive_workers\": {}, \"threads_before_connect\": {}, \"threads_after_connect\": {}, \"thread_growth\": {}, \"reactor_event_loops\": {}, \"reactor_connections_open\": {}, \"reactor_wakeups\": {} }}",
        conns,
        d.alive_workers(),
        json_opt(threads_before),
        json_opt(threads_after),
        json_opt(grown),
        d.reactor_event_loops(),
        rs.connections_open(),
        rs.wakeups(),
    );
    d.shutdown();
    drop(held);
    Ok(out)
}

/// Quick round-trip probe: can this build actually frame and parse wire
/// messages? The offline stub serde serializes but cannot deserialize,
/// so dispatcher-side phases would stall or drop every connection —
/// detect that up front and skip with a reason instead.
fn wire_serde_available() -> Result<(), String> {
    let mut probe = Vec::new();
    jets_core::protocol::encode_msg_buf(&WorkerMsg::Goodbye, &mut probe)
        .map_err(|e| format!("wire serde unavailable (encode: {e})"))?;
    jets_core::protocol::decode_msg::<WorkerMsg>(&probe[..probe.len().saturating_sub(1)])
        .map(drop)
        .map_err(|e| format!("wire serde unavailable, offline stub build (decode: {e})"))
}

fn bench_job_throughput(workers: u32, jobs: usize) -> Result<String, String> {
    wire_serde_available()?;
    let d = Dispatcher::start(DispatcherConfig::default())
        .map_err(|e| format!("dispatcher start: {e}"))?;
    let alloc = Allocation::start(
        &d.addr().to_string(),
        AllocationConfig::new(workers),
        Arc::new(Executor::new(science_registry())),
    );
    let ready_deadline = Instant::now() + Duration::from_secs(30);
    while d.alive_workers() < workers as usize {
        if Instant::now() > ready_deadline {
            return Err(format!(
                "only {}/{workers} simulated workers registered in 30s",
                d.alive_workers()
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let batch = "@sleep 0\n".repeat(jobs);
    let start = Instant::now();
    let ids = d.submit_input(&batch).map_err(|e| format!("submit: {e}"))?;
    if !d.wait_idle(Duration::from_secs(300)) {
        return Err(format!(
            "timed out with {} jobs outstanding",
            d.outstanding()
        ));
    }
    let wall = start.elapsed();
    let ok = ids
        .iter()
        .filter(|id| {
            matches!(
                d.job_record(**id).map(|r| r.status),
                Some(JobStatus::Succeeded)
            )
        })
        .count();
    let rate = jobs as f64 / wall.as_secs_f64().max(1e-9);

    // Phase latency percentiles straight off the dispatcher's own
    // histograms, via the same text format `jets top` scrapes.
    let scrape = Scrape::parse(&d.metrics().render());
    let mut phases = String::from("{ ");
    for (n, phase) in jets_core::metrics::JOB_PHASES.iter().enumerate() {
        let q = scrape.quantiles(jets_core::metrics::JOB_PHASE_METRIC, "phase", phase);
        let get = |k: &str| q.get(k).copied().unwrap_or(0.0);
        if n > 0 {
            phases.push_str(", ");
        }
        phases.push_str(&format!(
            "\"{phase}\": {{ \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6} }}",
            get("0.5"),
            get("0.95"),
            get("0.99"),
        ));
    }
    phases.push_str(" }");

    let out = format!(
        "{{ \"workers\": {workers}, \"jobs\": {jobs}, \"succeeded\": {ok}, \"wall_ms\": {}, \"launch_rate_per_sec\": {rate:.0}, \"phase_latency\": {phases} }}",
        wall.as_millis(),
    );
    d.shutdown();
    alloc.join_all();
    Ok(out)
}
