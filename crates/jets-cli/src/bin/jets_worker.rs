//! The pilot-job worker agent (real-process deployment).
//!
//! ```text
//! jets-worker --dispatcher HOST:PORT [--name N] [--cores C]
//!             [--location L] [--heartbeat SECS]
//!             [--reconnect] [--reconnect-attempts N]
//!             [--reconnect-base-ms MS] [--reconnect-cap-ms MS]
//!             [--reconnect-jitter F] [--reconnect-seed S]
//!             [--metrics-addr ADDR] [--flight-recorder FILE]
//! jets-worker --relay HOST:PORT [...]
//! ```
//!
//! Registers with the dispatcher and executes tasks until told to shut
//! down. `--relay` points the agent at a relay daemon instead — the wire
//! protocol is identical, so the two options differ only in intent.
//! Builtin (`@`) tasks resolve against the standard + science
//! application registries; everything else is executed as an OS process.
//!
//! Any `--reconnect*` option enables reconnect-with-backoff; unset knobs
//! keep their defaults.
//!
//! `--metrics-addr ADDR` serves this agent's `GET /metrics` (Prometheus
//! text) and `GET /healthz`; see `docs/observability.md`.
//!
//! `--flight-recorder FILE` records the agent's lifecycle events
//! (registration, task start/end) into a crash-durable mmap ring at
//! FILE; replay it with `jets flight dump FILE`.

use cluster_sim::science_registry;
use jets_cli::parse_args;
use jets_worker::{Executor, ReconnectPolicy, Worker, WorkerConfig, WorkerMetrics};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = parse_args(
        std::env::args().skip(1),
        &[
            "dispatcher",
            "relay",
            "name",
            "cores",
            "location",
            "heartbeat",
            "reconnect-attempts",
            "reconnect-base-ms",
            "reconnect-cap-ms",
            "reconnect-jitter",
            "reconnect-seed",
            "metrics-addr",
            "flight-recorder",
        ],
    );
    let endpoint = match (args.get("dispatcher"), args.get("relay")) {
        (Some(d), None) => d.to_string(),
        (None, Some(r)) => r.to_string(),
        _ => {
            eprintln!(
                "usage: jets-worker (--dispatcher HOST:PORT | --relay HOST:PORT) \
                 [--name N] [--cores C] [--location L] [--heartbeat SECS] \
                 [--reconnect] [--reconnect-attempts N] [--reconnect-base-ms MS] \
                 [--reconnect-cap-ms MS] [--reconnect-jitter F] [--reconnect-seed S]"
            );
            std::process::exit(2);
        }
    };
    let defaults = ReconnectPolicy::default();
    let wants_reconnect = args.has_flag("reconnect")
        || ["attempts", "base-ms", "cap-ms", "jitter", "seed"]
            .iter()
            .any(|k| args.get(&format!("reconnect-{k}")).is_some());
    let reconnect = wants_reconnect.then(|| ReconnectPolicy {
        max_attempts: args.get_parse("reconnect-attempts", defaults.max_attempts),
        base_backoff: Duration::from_millis(args.get_parse(
            "reconnect-base-ms",
            defaults.base_backoff.as_millis() as u64,
        )),
        max_backoff: Duration::from_millis(
            args.get_parse("reconnect-cap-ms", defaults.max_backoff.as_millis() as u64),
        ),
        jitter: args.get_parse("reconnect-jitter", defaults.jitter),
        seed: args.get_parse("reconnect-seed", defaults.seed),
    });
    let mut config = WorkerConfig {
        dispatcher_addr: endpoint.clone(),
        name: args
            .get("name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        cores: args.get_parse("cores", 1),
        location: args.get("location").unwrap_or("default").to_string(),
        heartbeat: args
            .get("heartbeat")
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs),
        reconnect,
        flight_recorder: args.get("flight-recorder").map(std::path::PathBuf::from),
        ..WorkerConfig::new(endpoint.clone(), "unnamed")
    };
    if let Some(path) = args.get("flight-recorder") {
        println!("jets-worker: flight recorder ring at {path}");
    }
    let metrics = Arc::new(WorkerMetrics::new());
    config.metrics = Some(Arc::clone(&metrics));
    // Held for the process lifetime; dropping it would close the port.
    let mut _metrics_server = None;
    if let Some(addr) = args.get("metrics-addr") {
        match jets_obs::serve_metrics(addr, metrics.registry()) {
            Ok(server) => {
                println!("jets-worker: serving http://{}/metrics", server.addr());
                _metrics_server = Some(server);
            }
            Err(e) => {
                eprintln!("jets-worker: cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let name = config.name.clone();
    println!("jets-worker: {name} connecting to {endpoint}");
    let worker = Worker::spawn(config, Arc::new(Executor::new(science_registry())));
    let exit = worker.join();
    println!(
        "jets-worker: {name} exiting after {} tasks ({:?})",
        exit.tasks_done, exit.reason
    );
}
