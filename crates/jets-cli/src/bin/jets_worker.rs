//! The pilot-job worker agent (real-process deployment).
//!
//! ```text
//! jets-worker --dispatcher HOST:PORT [--name N] [--cores C]
//!             [--location L] [--heartbeat SECS]
//! ```
//!
//! Registers with the dispatcher and executes tasks until told to shut
//! down. Builtin (`@`) tasks resolve against the standard + science
//! application registries; everything else is executed as an OS process.

use cluster_sim::science_registry;
use jets_cli::parse_args;
use jets_worker::{Executor, Worker, WorkerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = parse_args(
        std::env::args().skip(1),
        &["dispatcher", "name", "cores", "location", "heartbeat"],
    );
    let Some(dispatcher) = args.get("dispatcher") else {
        eprintln!("usage: jets-worker --dispatcher HOST:PORT [--name N] [--cores C] [--location L] [--heartbeat SECS]");
        std::process::exit(2);
    };
    let config = WorkerConfig {
        dispatcher_addr: dispatcher.to_string(),
        name: args
            .get("name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        cores: args.get_parse("cores", 1),
        location: args.get("location").unwrap_or("default").to_string(),
        heartbeat: args
            .get("heartbeat")
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs),
        connect_delay: Duration::ZERO,
    };
    let name = config.name.clone();
    println!("jets-worker: {name} connecting to {dispatcher}");
    let worker = Worker::spawn(config, Arc::new(Executor::new(science_registry())));
    let exit = worker.join();
    println!(
        "jets-worker: {name} exiting after {} tasks ({:?})",
        exit.tasks_done, exit.reason
    );
}
