//! `rem-exchange` — the replica-exchange step.
//!
//! ```text
//! rem-exchange PREFIX_A T_A PREFIX_B T_B [SEED]
//! ```
//!
//! Attempts a Metropolis exchange between the restart-file triples
//! `PREFIX_A.{coor,vel,xsc}` and `PREFIX_B.{coor,vel,xsc}` held at
//! temperatures `T_A` and `T_B`. Prints `accepted` or `rejected` (also
//! written to `$SWIFT_STDOUT` when set, as the workflow token).

use namd_sim::rem::{attempt_file_exchange, ReplicaFiles};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 4 {
        eprintln!("usage: rem-exchange PREFIX_A T_A PREFIX_B T_B [SEED]");
        std::process::exit(2);
    }
    let (Ok(t_a), Ok(t_b)) = (args[1].parse::<f64>(), args[3].parse::<f64>()) else {
        eprintln!("rem-exchange: temperatures must be numbers");
        std::process::exit(2);
    };
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0);
    let a = ReplicaFiles::from_prefix(&args[0]);
    let b = ReplicaFiles::from_prefix(&args[2]);
    let mut rng = StdRng::seed_from_u64(seed);
    match attempt_file_exchange(&a, &b, t_a, t_b, &mut rng) {
        Ok(accepted) => {
            let verdict = if accepted { "accepted" } else { "rejected" };
            println!("{verdict}");
            if let Ok(out) = std::env::var("SWIFT_STDOUT") {
                let _ = std::fs::write(out, format!("{verdict}\n"));
            }
        }
        Err(e) => {
            eprintln!("rem-exchange: {e}");
            std::process::exit(3);
        }
    }
}
