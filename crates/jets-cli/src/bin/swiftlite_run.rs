//! `swiftlite` — run a workflow script.
//!
//! ```text
//! swiftlite SCRIPT [--jets HOST:PORT] [--workdir DIR] [--timeout SECS]
//! ```
//!
//! Without `--jets`, apps run as local OS processes (Swift's "local"
//! provider). With `--jets`, every app call is submitted to the given
//! JETS dispatcher — the MPICH/Coasters configuration of the paper —
//! including its `mpi(nodes=…, ppn=…)` shape.

use jets_cli::parse_args;
use std::sync::Arc;
use std::time::Duration;
use swiftlite::{AppExecutor, JetsExecutor, ProcessExecutor, RunOptions, Workflow};

fn main() {
    let args = parse_args(std::env::args().skip(1), &["jets", "workdir", "timeout"]);
    let Some(script) = args.positional.first() else {
        eprintln!("usage: swiftlite SCRIPT [--jets HOST:PORT] [--workdir DIR] [--timeout SECS]");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(script) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swiftlite: cannot read {script}: {e}");
            std::process::exit(2);
        }
    };
    let workflow = match Workflow::parse(&source) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("swiftlite: {e}");
            std::process::exit(2);
        }
    };
    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    let executor: Arc<dyn AppExecutor> = match args.get("jets") {
        Some(addr) => {
            // Attach to a running dispatcher by address. The executor
            // submits over the worker protocol? No: submission is an API
            // call, so attach-by-address requires a local dispatcher —
            // start one here and tell the user where it listens if the
            // given address is "start".
            if addr == "start" {
                let dispatcher = Arc::new(
                    jets_core::Dispatcher::start(jets_core::DispatcherConfig::default())
                        .expect("start dispatcher"),
                );
                println!(
                    "swiftlite: started dispatcher on {} — point jets-worker agents at it",
                    dispatcher.addr()
                );
                Arc::new(JetsExecutor::new(dispatcher, timeout))
            } else {
                eprintln!(
                    "swiftlite: --jets {addr}: remote dispatcher attach is not supported; \
                     use --jets start and point workers at the printed address"
                );
                std::process::exit(2);
            }
        }
        None => Arc::new(ProcessExecutor),
    };
    let mut options = RunOptions::default();
    if let Some(dir) = args.get("workdir") {
        options.work_dir = dir.into();
    }
    options.wait_timeout = timeout;
    match workflow.run(executor, options) {
        Ok(report) => {
            for line in &report.traces {
                println!("trace: {line}");
            }
            println!("swiftlite: {} app invocations completed", report.apps_run);
        }
        Err(e) => {
            eprintln!("swiftlite: workflow failed: {e}");
            std::process::exit(1);
        }
    }
}
