//! Property-based tests of the molecular-dynamics substrate.

use namd_sim::force::compute_all;
use namd_sim::io::{read_vectors, read_xsc, write_vectors, write_xsc, XscData};
use namd_sim::system::ParticleSystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Momentum conservation: total force over all atoms is ~zero for
    /// arbitrary configurations (Newton's third law summed).
    #[test]
    fn total_force_vanishes(
        coords in prop::collection::vec(0.0f64..8.0, 3 * 3..3 * 12),
    ) {
        prop_assume!(coords.len() % 3 == 0);
        let out = compute_all(&coords, 8.0, 2.5);
        for d in 0..3 {
            let total: f64 = out.forces.iter().skip(d).step_by(3).sum();
            // Scale tolerance with force magnitude (close random pairs
            // produce huge repulsions).
            let magnitude: f64 = out
                .forces
                .iter()
                .skip(d)
                .step_by(3)
                .map(|f| f.abs())
                .sum::<f64>()
                .max(1.0);
            prop_assert!(
                (total / magnitude).abs() < 1e-9,
                "net force {total} vs magnitude {magnitude}"
            );
        }
    }

    /// The block decomposition equals the monolithic computation for any
    /// split point — the invariant that makes parallel MD correct.
    #[test]
    fn any_block_split_matches_full(
        coords in prop::collection::vec(0.0f64..6.0, 3 * 4..3 * 10),
        split_frac in 0.0f64..1.0,
    ) {
        prop_assume!(coords.len() % 3 == 0);
        let n = coords.len() / 3;
        let split = ((n as f64 * split_frac) as usize).min(n);
        let full = compute_all(&coords, 6.0, 2.0);
        let a = namd_sim::force::compute_block(&coords, 0, split, 6.0, 2.0);
        let b = namd_sim::force::compute_block(&coords, split, n - split, 6.0, 2.0);
        let mut combined = a.forces;
        combined.extend(b.forces);
        for (x, y) in combined.iter().zip(full.forces.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        prop_assert!((a.potential + b.potential - full.potential).abs() < 1e-9);
    }

    /// Thermalize hits any requested temperature exactly and removes net
    /// momentum, for arbitrary system shapes and seeds.
    #[test]
    fn thermalize_contract(
        n in 4usize..60,
        density in 0.05f64..0.5,
        temperature in 0.05f64..4.0,
        seed in 0u64..10_000,
    ) {
        let s = ParticleSystem::lattice(n, density, temperature, seed);
        prop_assert_eq!(s.len(), n);
        prop_assert!((s.temperature() - temperature).abs() < 1e-9);
        for d in 0..3 {
            let p: f64 = (0..n).map(|i| s.velocities[3 * i + d]).sum();
            prop_assert!(p.abs() < 1e-9);
        }
    }

    /// Restart files are bit-exact for arbitrary finite vectors.
    #[test]
    fn vector_files_bit_exact(
        data in prop::collection::vec(
            any::<f64>().prop_filter("finite", |f| f.is_finite()),
            0..30,
        ),
        tag in 0u64..1_000_000,
    ) {
        prop_assume!(data.len() % 3 == 0);
        let dir = std::env::temp_dir().join(format!("md-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("v{tag}.coor"));
        write_vectors(&path, &data).unwrap();
        let back = read_vectors(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, data);
    }

    /// XSC files round-trip arbitrary finite values.
    #[test]
    fn xsc_files_bit_exact(
        step in 0u64..1_000_000,
        potential in -1e12f64..1e12,
        temperature in 0.0f64..1e6,
        box_length in 0.1f64..1e6,
        tag in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!("md-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("x{tag}.xsc"));
        let xsc = XscData { step, potential, temperature, box_length };
        write_xsc(&path, &xsc).unwrap();
        let back = read_xsc(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, xsc);
    }

    /// The exchange delta is symmetric under relabelling the replicas —
    /// both factors negate, so the product is invariant, and the accept
    /// decision cannot depend on which replica is called "a".
    #[test]
    fn exchange_delta_symmetric(
        t_a in 0.1f64..5.0,
        t_b in 0.1f64..5.0,
        e_a in -500.0f64..500.0,
        e_b in -500.0f64..500.0,
    ) {
        let ab = namd_sim::exchange_delta(t_a, e_a, t_b, e_b);
        let ba = namd_sim::exchange_delta(t_b, e_b, t_a, e_a);
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab.abs()));
    }
}
