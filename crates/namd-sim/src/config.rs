//! NAMD-flavoured configuration files.
//!
//! A segment is driven by a small key–value config file, deliberately
//! shaped like a NAMD input so the REM scripts read naturally:
//!
//! ```text
//! # replica 3, segment 7
//! coordinates   r3_s6.coor
//! velocities    r3_s6.vel
//! extendedSystem r3_s6.xsc
//! temperature   1.30
//! numsteps      10
//! timestep      0.005
//! cutoff        2.5
//! langevinDamping 1.0
//! outputname    r3_s7
//! seed          42
//! ```
//!
//! When no restart files are given, `numAtoms`/`density` initialize a
//! fresh lattice. `paceMilliseconds` optionally pads the segment's wall
//! time — the simulated-testbed knob that lets utilization experiments
//! present NAMD-scale task durations without burning host CPU (documented
//! in EXPERIMENTS.md).

use std::fmt;

/// Parsed segment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MdConfig {
    /// Input coordinates file (`None` = lattice init).
    pub coordinates: Option<String>,
    /// Input velocities file (`None` = thermalize at `temperature`).
    pub velocities: Option<String>,
    /// Input extended-system file (step counter etc.).
    pub extended_system: Option<String>,
    /// Atom count for lattice initialization.
    pub num_atoms: usize,
    /// Number density for lattice initialization.
    pub density: f64,
    /// Target (thermostat) temperature, reduced units.
    pub temperature: f64,
    /// Steps to integrate this segment.
    pub numsteps: u64,
    /// Integration timestep, reduced units.
    pub timestep: f64,
    /// LJ cutoff radius.
    pub cutoff: f64,
    /// Langevin friction γ; 0 disables the thermostat (NVE).
    pub langevin_damping: f64,
    /// Prefix for output files (`<outputname>.coor/.vel/.xsc`).
    pub outputname: String,
    /// RNG seed (thermostat noise, initial velocities).
    pub seed: u64,
    /// Pad segment wall time to at least this many milliseconds.
    pub pace_milliseconds: u64,
    /// Bond atoms into consecutive chains of this length (< 2 = atomic
    /// fluid, no bonds).
    pub bond_chain_length: usize,
    /// Harmonic bond spring constant.
    pub bond_k: f64,
    /// Harmonic bond equilibrium length.
    pub bond_r0: f64,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            coordinates: None,
            velocities: None,
            extended_system: None,
            num_atoms: 125,
            density: 0.3,
            temperature: 1.0,
            numsteps: 10,
            timestep: 0.005,
            cutoff: 2.5,
            langevin_damping: 1.0,
            outputname: "out".to_string(),
            seed: 12345,
            pace_milliseconds: 0,
            bond_chain_length: 0,
            bond_k: 50.0,
            bond_r0: 1.2,
        }
    }
}

/// Config parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl MdConfig {
    /// Parse a config file's text.
    pub fn parse(text: &str) -> Result<MdConfig, ConfigError> {
        let mut config = MdConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = match line.split_once(char::is_whitespace) {
                Some((k, v)) => (k, v.trim()),
                None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("expected 'key value', got '{line}'"),
                    })
                }
            };
            let bad = |what: &str| ConfigError {
                line: lineno,
                message: format!("{key}: {what} ('{value}')"),
            };
            match key {
                "coordinates" => config.coordinates = Some(value.to_string()),
                "velocities" => config.velocities = Some(value.to_string()),
                "extendedSystem" => config.extended_system = Some(value.to_string()),
                "numAtoms" => {
                    config.num_atoms = value.parse().map_err(|_| bad("expected an integer"))?
                }
                "density" => {
                    config.density = value.parse().map_err(|_| bad("expected a number"))?
                }
                "temperature" => {
                    config.temperature = value.parse().map_err(|_| bad("expected a number"))?
                }
                "numsteps" => {
                    config.numsteps = value.parse().map_err(|_| bad("expected an integer"))?
                }
                "timestep" => {
                    config.timestep = value.parse().map_err(|_| bad("expected a number"))?
                }
                "cutoff" => config.cutoff = value.parse().map_err(|_| bad("expected a number"))?,
                "langevinDamping" => {
                    config.langevin_damping = value.parse().map_err(|_| bad("expected a number"))?
                }
                "outputname" => config.outputname = value.to_string(),
                "seed" => config.seed = value.parse().map_err(|_| bad("expected an integer"))?,
                "paceMilliseconds" => {
                    config.pace_milliseconds =
                        value.parse().map_err(|_| bad("expected an integer"))?
                }
                "bondChainLength" => {
                    config.bond_chain_length =
                        value.parse().map_err(|_| bad("expected an integer"))?
                }
                "bondK" => config.bond_k = value.parse().map_err(|_| bad("expected a number"))?,
                "bondR0" => config.bond_r0 = value.parse().map_err(|_| bad("expected a number"))?,
                // NAMD compatibility: accept-and-ignore structural keys so
                // real-looking inputs parse.
                "structure" | "parameters" | "paraTypeCharmm" | "exclude" | "outputEnergies" => {}
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key '{other}'"),
                    })
                }
            }
        }
        config
            .validate()
            .map_err(|message| ConfigError { line: 0, message })?;
        Ok(config)
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_atoms == 0 {
            return Err("numAtoms must be positive".to_string());
        }
        if self.density <= 0.0 {
            return Err("density must be positive".to_string());
        }
        if self.temperature < 0.0 {
            return Err("temperature must be non-negative".to_string());
        }
        if self.timestep <= 0.0 {
            return Err("timestep must be positive".to_string());
        }
        if self.cutoff <= 0.0 {
            return Err("cutoff must be positive".to_string());
        }
        if self.langevin_damping < 0.0 {
            return Err("langevinDamping must be non-negative".to_string());
        }
        if self.bond_chain_length >= 2 && (self.bond_k <= 0.0 || self.bond_r0 <= 0.0) {
            return Err("bondK and bondR0 must be positive for bonded systems".to_string());
        }
        if self.outputname.is_empty() {
            return Err("outputname must be non-empty".to_string());
        }
        Ok(())
    }

    /// Render back to config-file text (used by workflow drivers that
    /// generate per-segment configs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(c) = &self.coordinates {
            out.push_str(&format!("coordinates {c}\n"));
        }
        if let Some(v) = &self.velocities {
            out.push_str(&format!("velocities {v}\n"));
        }
        if let Some(x) = &self.extended_system {
            out.push_str(&format!("extendedSystem {x}\n"));
        }
        out.push_str(&format!("numAtoms {}\n", self.num_atoms));
        out.push_str(&format!("density {}\n", self.density));
        out.push_str(&format!("temperature {}\n", self.temperature));
        out.push_str(&format!("numsteps {}\n", self.numsteps));
        out.push_str(&format!("timestep {}\n", self.timestep));
        out.push_str(&format!("cutoff {}\n", self.cutoff));
        out.push_str(&format!("langevinDamping {}\n", self.langevin_damping));
        out.push_str(&format!("outputname {}\n", self.outputname));
        out.push_str(&format!("seed {}\n", self.seed));
        if self.pace_milliseconds > 0 {
            out.push_str(&format!("paceMilliseconds {}\n", self.pace_milliseconds));
        }
        if self.bond_chain_length >= 2 {
            out.push_str(&format!("bondChainLength {}\n", self.bond_chain_length));
            out.push_str(&format!("bondK {}\n", self.bond_k));
            out.push_str(&format!("bondR0 {}\n", self.bond_r0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = "\
# replica 3
coordinates   r3.coor
velocities    r3.vel
extendedSystem r3.xsc
temperature   1.30
numsteps      10
timestep      0.005
cutoff        2.5
langevinDamping 1.0
outputname    r3_next
seed          42
";
        let c = MdConfig::parse(text).unwrap();
        assert_eq!(c.coordinates.as_deref(), Some("r3.coor"));
        assert_eq!(c.temperature, 1.30);
        assert_eq!(c.numsteps, 10);
        assert_eq!(c.outputname, "r3_next");
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let c = MdConfig::parse("numsteps 5\n").unwrap();
        assert_eq!(c.numsteps, 5);
        assert_eq!(c.num_atoms, 125);
        assert!(c.coordinates.is_none());
    }

    #[test]
    fn round_trips_through_render() {
        let c = MdConfig {
            coordinates: Some("a.coor".to_string()),
            pace_milliseconds: 250,
            ..MdConfig::default()
        };
        let back = MdConfig::parse(&c.render()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_unknown_keys() {
        let e = MdConfig::parse("bogus 1\n").unwrap_err();
        assert!(e.message.contains("unknown key"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(MdConfig::parse("numsteps many\n").is_err());
        assert!(MdConfig::parse("temperature warm\n").is_err());
    }

    #[test]
    fn validates_physical_sanity() {
        assert!(MdConfig::parse("timestep 0\n").is_err());
        assert!(MdConfig::parse("density -1\n").is_err());
        assert!(MdConfig::parse("temperature -0.5\n").is_err());
    }

    #[test]
    fn accepts_namd_compat_keys() {
        let c = MdConfig::parse("structure nma.psf\nparameters par_all27.prm\n").unwrap();
        assert_eq!(c, MdConfig::default());
    }
}
