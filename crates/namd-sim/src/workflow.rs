//! The REM Swift workflow: script generation and input staging.
//!
//! The paper implements asynchronous replica exchange "in under 200 lines
//! of Swift script" (Section 6.2.2): each row of the dataflow is a
//! replica trajectory, each column an exchange epoch; a segment depends
//! only on its predecessor's restart files and its pair's exchange token,
//! so segments launch independently of the state of the workflow at
//! large. [`rem_script`] emits that script in swiftlite syntax,
//! parameterized by replica count, segment count, MPI shape, and
//! temperature ladder; [`stage_initial_replicas`] runs the short serial
//! equilibration that produces segment-0 restart files (the workflow's
//! pre-existing mapped inputs).

use crate::config::MdConfig;
use crate::md::{run_segment, MdError};
use std::fmt::Write as _;
use std::path::Path;

/// Parameters of a generated REM workflow.
#[derive(Debug, Clone)]
pub struct RemParams {
    /// Number of replicas (rows of the dataflow).
    pub replicas: u32,
    /// Dynamics segments per replica (exchanges happen between them).
    pub segments: u32,
    /// MPI nodes per NAMD segment (1 = single-process mode, Fig. 18a).
    pub nodes: u32,
    /// Ranks per node (Fig. 18b used all 8 cores per node).
    pub ppn: u32,
    /// Atoms per replica.
    pub atoms: u32,
    /// MD steps per segment ("10–100 simulated timesteps").
    pub steps: u32,
    /// Coldest temperature of the ladder.
    pub t_min: f64,
    /// Multiplicative spacing of the ladder.
    pub t_ratio: f64,
    /// Wall-time pacing per segment in milliseconds (0 = run at full
    /// compute speed); see EXPERIMENTS.md on virtual time.
    pub pace_ms: u64,
    /// Working directory for all dataflow files.
    pub dir: String,
}

impl Default for RemParams {
    fn default() -> Self {
        RemParams {
            replicas: 4,
            segments: 4,
            nodes: 1,
            ppn: 1,
            atoms: 48,
            steps: 10,
            t_min: 0.9,
            t_ratio: 1.12,
            pace_ms: 0,
            dir: "rem-work".to_string(),
        }
    }
}

impl RemParams {
    /// Temperature of replica `i` on the geometric ladder.
    pub fn temperature(&self, i: u32) -> f64 {
        self.t_min * self.t_ratio.powi(i as i32)
    }

    /// Flattened segment index of `(replica, segment)`.
    pub fn index(&self, replica: u32, segment: u32) -> u32 {
        replica * (self.segments + 1) + segment
    }

    /// Total NAMD invocations the workflow will make.
    pub fn namd_invocations(&self) -> u32 {
        self.replicas * self.segments
    }
}

/// Generate the REM workflow script.
///
/// Dataflow per replica `i`, epoch `j`:
/// 1. after segment `j`, replicas pair alternately ((0,1),(2,3),… on even
///    epochs; (1,2),(3,4),… on odd) and the pair's left member runs the
///    exchange app on the two segments' restart files;
/// 2. segment `j+1` of both members consumes the exchange token (plus its
///    own predecessor files), so it launches the moment its pair's
///    exchange completes — full asynchrony across replicas, exactly the
///    paper's Fig. 16 structure.
pub fn rem_script(p: &RemParams) -> String {
    let seg = p.segments + 1;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Replica-exchange workflow: {} replicas x {} segments",
        p.replicas, p.segments
    );
    let _ = writeln!(s, "type file;");
    // Two app flavours: with and without an exchange-token dependency.
    let _ = writeln!(
        s,
        r#"
app (file c, file v, file x) namd (string outprefix, file c_in, file v_in, file s_in,
                                   string temp, int steps, int pace) mpi(nodes={nodes}, ppn={ppn}) {{
    "@namd-lite" strcat("coordinates=", @c_in) strcat("velocities=", @v_in)
        strcat("extendedSystem=", @s_in) strcat("temperature=", temp)
        strcat("numsteps=", steps) strcat("paceMilliseconds=", pace)
        strcat("outputname=", outprefix)
}}

app (file c, file v, file x) namd_x (string outprefix, file c_in, file v_in, file s_in, file token,
                                     string temp, int steps, int pace) mpi(nodes={nodes}, ppn={ppn}) {{
    "@namd-lite" strcat("coordinates=", @c_in) strcat("velocities=", @v_in)
        strcat("extendedSystem=", @s_in) strcat("temperature=", temp)
        strcat("numsteps=", steps) strcat("paceMilliseconds=", pace)
        strcat("outputname=", outprefix)
}}

app (file verdict) exchange (file s_a, file s_b, string prefix_a, string t_a,
                             string prefix_b, string t_b, int seed) {{
    "@rem-exchange" prefix_a t_a prefix_b t_b seed stdout=@verdict
}}
"#,
        nodes = p.nodes,
        ppn = p.ppn,
    );
    let _ = writeln!(s, "int SEG = {seg};");
    let _ = writeln!(s, "int steps = {};", p.steps);
    let _ = writeln!(s, "int pace = {};", p.pace_ms);
    let _ = writeln!(
        s,
        "file c[] <simple_mapper; prefix=\"{}/seg_\", suffix=\".coor\">;",
        p.dir
    );
    let _ = writeln!(
        s,
        "file v[] <simple_mapper; prefix=\"{}/seg_\", suffix=\".vel\">;",
        p.dir
    );
    let _ = writeln!(
        s,
        "file sx[] <simple_mapper; prefix=\"{}/seg_\", suffix=\".xsc\">;",
        p.dir
    );
    let _ = writeln!(
        s,
        "file ex[] <simple_mapper; prefix=\"{}/ex_\", suffix=\".token\">;",
        p.dir
    );

    // Per-replica temperature ladder, rendered as a pre-filled lookup
    // array (swiftlite has no user scalar functions).
    let _ = writeln!(s, "string tempLookup[];");
    for i in 0..p.replicas {
        let _ = writeln!(s, "tempLookup[{i}] = \"{:.6}\";", p.temperature(i));
    }

    let last = p.replicas - 1;
    let _ = writeln!(
        s,
        r#"
foreach i in [0:{last}] {{
    foreach j in [0:SEG - 2] {{
        int k = i * SEG + j;
        int kn = k + 1;
        int phase = j %% 2;
        int pair;
        if ((i + phase) %% 2 == 0) {{
            pair = i;
        }} else {{
            pair = i - 1;
        }}
        string prefix = strcat("{dir}/seg_", kn);
        string my_prefix = strcat("{dir}/seg_", k);
        if (pair == i && i + 1 <= {last}) {{
            int pk = (i + 1) * SEG + j;
            ex[k] = exchange(sx[k], sx[pk], my_prefix, tempLookup[i],
                             strcat("{dir}/seg_", pk), tempLookup[i + 1], k + 1);
        }}
        if (pair >= 0 && pair + 1 <= {last}) {{
            (c[kn], v[kn], sx[kn]) = namd_x(prefix, c[k], v[k], sx[k], ex[pair * SEG + j],
                                            tempLookup[i], steps, pace);
        }} else {{
            (c[kn], v[kn], sx[kn]) = namd(prefix, c[k], v[k], sx[k], tempLookup[i], steps, pace);
        }}
    }}
}}
"#,
        last = last,
        dir = p.dir,
    );
    s
}

/// Stage segment-0 restart files for every replica: a short serial
/// equilibration at the replica's temperature. Returns the staged file
/// prefixes.
pub fn stage_initial_replicas(p: &RemParams) -> Result<Vec<String>, MdError> {
    std::fs::create_dir_all(&p.dir).map_err(|e| MdError::Io(crate::io::IoError::Io(e)))?;
    let mut prefixes = Vec::new();
    for i in 0..p.replicas {
        let k = p.index(i, 0);
        let prefix = format!("{}/seg_{k}", p.dir);
        let config = MdConfig {
            num_atoms: p.atoms as usize,
            temperature: p.temperature(i),
            numsteps: 5,
            outputname: prefix.clone(),
            seed: 1000 + i as u64,
            ..MdConfig::default()
        };
        run_segment(&config, None)?;
        debug_assert!(Path::new(&format!("{prefix}.coor")).exists());
        prefixes.push(prefix);
    }
    Ok(prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_ladder_is_geometric() {
        let p = RemParams::default();
        assert!((p.temperature(0) - p.t_min).abs() < 1e-12);
        let r = p.temperature(3) / p.temperature(2);
        assert!((r - p.t_ratio).abs() < 1e-12);
    }

    #[test]
    fn script_fills_the_temperature_lookup() {
        let p = RemParams::default();
        let script = rem_script(&p);
        assert!(script.contains("tempLookup[i]"));
        assert!(script.contains("tempLookup[i + 1]"));
        assert!(script.contains("tempLookup[0] = \"0.900000\";"));
        assert_eq!(
            script.matches("tempLookup[").count(),
            // declaration + per-replica fills + 4 uses in the loop
            // (exchange ×2, namd_x ×1, namd ×1)
            1 + p.replicas as usize + 4
        );
    }

    #[test]
    fn script_parses_as_swiftlite() {
        // The generator and the language must stay in sync; parsing here
        // catches drift without running anything.
        let p = RemParams {
            replicas: 3,
            segments: 2,
            ..RemParams::default()
        };
        let script = rem_script(&p);
        // namd-sim cannot depend on swiftlite (it would be circular
        // through cluster-sim), so this only checks structural markers;
        // the full parse/run happens in the workspace integration tests.
        for marker in [
            "app (file c, file v, file x) namd ",
            "app (file c, file v, file x) namd_x ",
            "app (file verdict) exchange ",
            "foreach i in [0:2]",
            "foreach j in [0:SEG - 2]",
            "%% 2",
        ] {
            assert!(script.contains(marker), "missing {marker}:\n{script}");
        }
    }

    #[test]
    fn staging_creates_all_segment_zero_files() {
        let dir = std::env::temp_dir()
            .join(format!("rem-stage-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let p = RemParams {
            replicas: 2,
            segments: 1,
            atoms: 24,
            dir: dir.clone(),
            ..RemParams::default()
        };
        let prefixes = stage_initial_replicas(&p).unwrap();
        assert_eq!(prefixes.len(), 2);
        for prefix in &prefixes {
            for ext in ["coor", "vel", "xsc"] {
                assert!(Path::new(&format!("{prefix}.{ext}")).exists());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invocation_count() {
        let p = RemParams {
            replicas: 8,
            segments: 6,
            ..RemParams::default()
        };
        assert_eq!(p.namd_invocations(), 48);
        assert_eq!(p.index(2, 3), 2 * 7 + 3);
    }
}
