//! Restart-file I/O: `.coor`, `.vel`, and `.xsc` files.
//!
//! These are the dataflow artifacts of the REM workflow (paper Section
//! 6.2.2): each segment reads its predecessor's coordinates, velocities,
//! and extended-system file, and writes its own; the exchange step swaps
//! them between neighbouring replicas. Formats are plain text:
//!
//! * `.coor` / `.vel` — first line `N`, then `N` lines of `x y z`.
//! * `.xsc` — key–value lines: `step`, `potential`, `temperature`,
//!   `boxLength`.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Extended-system data carried between segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XscData {
    /// Completed timestep count.
    pub step: u64,
    /// Potential energy at the end of the segment.
    pub potential: f64,
    /// Kinetic temperature at the end of the segment.
    pub temperature: f64,
    /// Periodic box edge length.
    pub box_length: f64,
}

/// I/O or format error for restart files.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Content didn't parse.
    Format(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "restart i/o error: {e}"),
            IoError::Format(m) => write!(f, "restart format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write a flattened 3N vector as a `.coor`/`.vel` file.
pub fn write_vectors(path: &Path, data: &[f64]) -> Result<(), IoError> {
    if !data.len().is_multiple_of(3) {
        return Err(IoError::Format(format!(
            "vector length {} is not a multiple of 3",
            data.len()
        )));
    }
    let mut out = String::with_capacity(data.len() * 12);
    out.push_str(&format!("{}\n", data.len() / 3));
    for triple in data.chunks_exact(3) {
        out.push_str(&format!(
            "{:.17e} {:.17e} {:.17e}\n",
            triple[0], triple[1], triple[2]
        ));
    }
    let mut f = fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    Ok(())
}

/// Read a `.coor`/`.vel` file back into a flattened 3N vector.
pub fn read_vectors(path: &Path) -> Result<Vec<f64>, IoError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| IoError::Format("empty file".to_string()))?
        .trim()
        .parse()
        .map_err(|_| IoError::Format("bad atom count".to_string()))?;
    let mut data = Vec::with_capacity(3 * n);
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        for _ in 0..3 {
            let v: f64 = parts
                .next()
                .ok_or_else(|| IoError::Format(format!("line {}: fewer than 3 values", i + 2)))?
                .parse()
                .map_err(|_| IoError::Format(format!("line {}: bad number", i + 2)))?;
            data.push(v);
        }
        if parts.next().is_some() {
            return Err(IoError::Format(format!(
                "line {}: more than 3 values",
                i + 2
            )));
        }
    }
    if data.len() != 3 * n {
        return Err(IoError::Format(format!(
            "expected {n} atoms, found {}",
            data.len() / 3
        )));
    }
    Ok(data)
}

/// Write an `.xsc` file.
pub fn write_xsc(path: &Path, xsc: &XscData) -> Result<(), IoError> {
    let text = format!(
        "step {}\npotential {:.17e}\ntemperature {:.17e}\nboxLength {:.17e}\n",
        xsc.step, xsc.potential, xsc.temperature, xsc.box_length
    );
    fs::write(path, text)?;
    Ok(())
}

/// Read an `.xsc` file.
pub fn read_xsc(path: &Path) -> Result<XscData, IoError> {
    let text = fs::read_to_string(path)?;
    let mut step = None;
    let mut potential = None;
    let mut temperature = None;
    let mut box_length = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| IoError::Format(format!("bad xsc line '{line}'")))?;
        let value = value.trim();
        match key {
            "step" => {
                step = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::Format(format!("bad step '{value}'")))?,
                )
            }
            "potential" => {
                potential = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::Format(format!("bad potential '{value}'")))?,
                )
            }
            "temperature" => {
                temperature = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::Format(format!("bad temperature '{value}'")))?,
                )
            }
            "boxLength" => {
                box_length = Some(
                    value
                        .parse()
                        .map_err(|_| IoError::Format(format!("bad boxLength '{value}'")))?,
                )
            }
            other => return Err(IoError::Format(format!("unknown xsc key '{other}'"))),
        }
    }
    Ok(XscData {
        step: step.ok_or_else(|| IoError::Format("missing step".to_string()))?,
        potential: potential.ok_or_else(|| IoError::Format("missing potential".to_string()))?,
        temperature: temperature
            .ok_or_else(|| IoError::Format("missing temperature".to_string()))?,
        box_length: box_length.ok_or_else(|| IoError::Format("missing boxLength".to_string()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("namd-io-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn vectors_round_trip_exactly() {
        let path = tmp("a.coor");
        let data = vec![0.1, -2.5e-17, 3.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300];
        write_vectors(&path, &data).unwrap();
        let back = read_vectors(&path).unwrap();
        assert_eq!(back, data, "17-digit float formatting must be lossless");
    }

    #[test]
    fn vectors_reject_ragged_input() {
        let path = tmp("ragged.coor");
        assert!(matches!(
            write_vectors(&path, &[1.0, 2.0]),
            Err(IoError::Format(_))
        ));
        fs::write(&path, "2\n1 2 3\n4 5\n").unwrap();
        assert!(read_vectors(&path).is_err());
        fs::write(&path, "1\n1 2 3 4\n").unwrap();
        assert!(read_vectors(&path).is_err());
    }

    #[test]
    fn vectors_reject_count_mismatch() {
        let path = tmp("short.coor");
        fs::write(&path, "3\n1 2 3\n").unwrap();
        assert!(matches!(read_vectors(&path), Err(IoError::Format(m)) if m.contains("expected")));
    }

    #[test]
    fn xsc_round_trips() {
        let path = tmp("a.xsc");
        let xsc = XscData {
            step: 170,
            potential: -432.19,
            temperature: 1.27,
            box_length: 5.604,
        };
        write_xsc(&path, &xsc).unwrap();
        assert_eq!(read_xsc(&path).unwrap(), xsc);
    }

    #[test]
    fn xsc_rejects_missing_fields() {
        let path = tmp("bad.xsc");
        fs::write(&path, "step 1\npotential 2\n").unwrap();
        assert!(matches!(read_xsc(&path), Err(IoError::Format(m)) if m.contains("temperature")));
    }

    #[test]
    fn xsc_rejects_unknown_keys() {
        let path = tmp("bad2.xsc");
        fs::write(&path, "step 1\nwhat 2\n").unwrap();
        assert!(read_xsc(&path).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_vectors(Path::new("/no/such/file.coor")),
            Err(IoError::Io(_))
        ));
    }
}
