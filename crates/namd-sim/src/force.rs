//! Lennard-Jones forces under the minimum-image convention.
//!
//! Truncated-and-shifted 12-6 potential:
//! `u(r) = 4(r⁻¹² − r⁻⁶) − u_c` for `r < r_cut`, zero beyond. The shift
//! keeps the potential continuous at the cutoff, which keeps NVE energy
//! drift small enough to test conservation.
//!
//! [`compute_block`] evaluates forces for a contiguous block of *owned*
//! atoms against all atoms — the atom-decomposition kernel each MPI rank
//! runs after an allgather of positions.

/// Result of a force evaluation over a block of owned atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockForces {
    /// Flattened forces for the owned block, length `3 × block_len`.
    pub forces: Vec<f64>,
    /// This block's share of the potential energy (half of each pair
    /// involving an owned atom, so summing over blocks counts each pair
    /// exactly once).
    pub potential: f64,
}

/// Compute forces on atoms `[block_start, block_start + block_len)` from
/// all `positions` (flattened 3N) in a periodic box of edge `box_len`,
/// with cutoff `r_cut`.
pub fn compute_block(
    positions: &[f64],
    block_start: usize,
    block_len: usize,
    box_len: f64,
    r_cut: f64,
) -> BlockForces {
    let n = positions.len() / 3;
    assert!(block_start + block_len <= n, "block out of range");
    assert!(r_cut > 0.0, "cutoff must be positive");
    let r_cut2 = r_cut * r_cut;
    // Shift so u(r_cut) = 0.
    let inv6 = 1.0 / (r_cut2 * r_cut2 * r_cut2);
    let u_shift = 4.0 * (inv6 * inv6 - inv6);

    let mut forces = vec![0.0f64; 3 * block_len];
    let mut potential = 0.0f64;
    for bi in 0..block_len {
        let i = block_start + bi;
        let (xi, yi, zi) = (positions[3 * i], positions[3 * i + 1], positions[3 * i + 2]);
        let mut fx = 0.0;
        let mut fy = 0.0;
        let mut fz = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            let mut dx = xi - positions[3 * j];
            let mut dy = yi - positions[3 * j + 1];
            let mut dz = zi - positions[3 * j + 2];
            // Minimum image.
            dx -= box_len * (dx / box_len).round();
            dy -= box_len * (dy / box_len).round();
            dz -= box_len * (dz / box_len).round();
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 >= r_cut2 || r2 == 0.0 {
                continue;
            }
            let inv_r2 = 1.0 / r2;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            let inv_r12 = inv_r6 * inv_r6;
            // f(r)/r = 24 (2 r⁻¹² − r⁻⁶) / r².
            let f_over_r = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
            fx += f_over_r * dx;
            fy += f_over_r * dy;
            fz += f_over_r * dz;
            // Half the pair energy; the other half is charged to atom j's
            // owner.
            potential += 0.5 * (4.0 * (inv_r12 - inv_r6) - u_shift);
        }
        forces[3 * bi] = fx;
        forces[3 * bi + 1] = fy;
        forces[3 * bi + 2] = fz;
    }
    BlockForces { forces, potential }
}

/// Convenience: forces on *all* atoms plus total potential energy.
pub fn compute_all(positions: &[f64], box_len: f64, r_cut: f64) -> BlockForces {
    compute_block(positions, 0, positions.len() / 3, box_len, r_cut)
}

/// A harmonic bond between two atoms: `u(r) = ½ k (r − r₀)²`.
///
/// NAMD's force field is bonded + nonbonded; chains of harmonic bonds
/// give our LJ fluid the molecular connectivity that makes restart-file
/// trajectories structurally NAMD-like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First atom index.
    pub i: usize,
    /// Second atom index.
    pub j: usize,
    /// Spring constant k.
    pub k: f64,
    /// Equilibrium length r₀.
    pub r0: f64,
}

/// Add harmonic-bond forces to a block's force array (owned atoms
/// `[block_start, block_start + block_len)`) and return the block's share
/// of the bond potential (half per bonded atom owned).
pub fn add_bond_forces(
    bonds: &[Bond],
    positions: &[f64],
    block_start: usize,
    block_len: usize,
    box_len: f64,
    forces: &mut [f64],
) -> f64 {
    let owned = block_start..block_start + block_len;
    let mut potential = 0.0;
    for bond in bonds {
        let i_owned = owned.contains(&bond.i);
        let j_owned = owned.contains(&bond.j);
        if !i_owned && !j_owned {
            continue;
        }
        let mut dx = positions[3 * bond.i] - positions[3 * bond.j];
        let mut dy = positions[3 * bond.i + 1] - positions[3 * bond.j + 1];
        let mut dz = positions[3 * bond.i + 2] - positions[3 * bond.j + 2];
        dx -= box_len * (dx / box_len).round();
        dy -= box_len * (dy / box_len).round();
        dz -= box_len * (dz / box_len).round();
        let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
        let stretch = r - bond.r0;
        // f = −k (r − r₀) r̂ on atom i; opposite on j.
        let f_over_r = -bond.k * stretch / r;
        let u = 0.5 * bond.k * stretch * stretch;
        if i_owned {
            let bi = bond.i - block_start;
            forces[3 * bi] += f_over_r * dx;
            forces[3 * bi + 1] += f_over_r * dy;
            forces[3 * bi + 2] += f_over_r * dz;
            potential += 0.5 * u;
        }
        if j_owned {
            let bj = bond.j - block_start;
            forces[3 * bj] -= f_over_r * dx;
            forces[3 * bj + 1] -= f_over_r * dy;
            forces[3 * bj + 2] -= f_over_r * dz;
            potential += 0.5 * u;
        }
    }
    potential
}

/// Bond a system into consecutive chains of `chain_len` atoms
/// (`chain_len < 2` means no bonds).
pub fn chain_bonds(n_atoms: usize, chain_len: usize, k: f64, r0: f64) -> Vec<Bond> {
    if chain_len < 2 {
        return Vec::new();
    }
    (0..n_atoms)
        .filter(|i| i % chain_len != chain_len - 1 && i + 1 < n_atoms)
        .map(|i| Bond { i, j: i + 1, k, r0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two atoms at the LJ minimum distance 2^(1/6) feel zero force.
    #[test]
    fn force_vanishes_at_minimum() {
        let r_min = 2.0f64.powf(1.0 / 6.0);
        let positions = vec![0.0, 0.0, 0.0, r_min, 0.0, 0.0];
        let out = compute_all(&positions, 100.0, 10.0);
        for f in &out.forces {
            assert!(f.abs() < 1e-10, "force {f}");
        }
    }

    #[test]
    fn close_pair_repels_along_axis() {
        let positions = vec![0.0, 0.0, 0.0, 0.9, 0.0, 0.0];
        let out = compute_all(&positions, 100.0, 10.0);
        assert!(out.forces[0] < 0.0, "atom 0 pushed in −x");
        assert!(out.forces[3] > 0.0, "atom 1 pushed in +x");
        assert_eq!(out.forces[1], 0.0);
        assert_eq!(out.forces[2], 0.0);
    }

    #[test]
    fn newtons_third_law() {
        let positions = vec![0.1, 0.2, 0.3, 1.0, 1.4, 0.9];
        let out = compute_all(&positions, 50.0, 10.0);
        for d in 0..3 {
            assert!((out.forces[d] + out.forces[3 + d]).abs() < 1e-10);
        }
    }

    #[test]
    fn beyond_cutoff_is_exactly_zero() {
        let positions = vec![0.0, 0.0, 0.0, 3.0, 0.0, 0.0];
        let out = compute_all(&positions, 100.0, 2.5);
        assert!(out.forces.iter().all(|&f| f == 0.0));
        assert_eq!(out.potential, 0.0);
    }

    #[test]
    fn minimum_image_wraps_across_boundary() {
        // Atoms at x = 0.2 and x = L − 0.2 are 0.4 apart through the
        // boundary, not L − 0.4.
        let box_len = 10.0;
        let positions = vec![0.2, 0.0, 0.0, box_len - 0.2, 0.0, 0.0];
        let out = compute_all(&positions, box_len, 2.5);
        // Separation 0.4 ≪ r_min: strongly repulsive, pushing atom 0 in
        // +x (away through the boundary).
        assert!(out.forces[0] > 0.0, "got {}", out.forces[0]);
        assert!(out.potential > 0.0);
    }

    #[test]
    fn block_decomposition_matches_full_computation() {
        // 12 atoms, blocks of unequal sizes: concatenated block forces and
        // summed potentials must equal the all-atom result.
        let mut positions = Vec::new();
        let mut v = 0.37f64;
        for _ in 0..36 {
            v = (v * 7.13 + 0.517).fract();
            positions.push(v * 6.0);
        }
        let box_len = 6.0;
        let full = compute_all(&positions, box_len, 2.5);
        let mut forces = Vec::new();
        let mut potential = 0.0;
        for (start, len) in [(0usize, 5usize), (5, 4), (9, 3)] {
            let b = compute_block(&positions, start, len, box_len, 2.5);
            forces.extend(b.forces);
            potential += b.potential;
        }
        assert_eq!(forces.len(), full.forces.len());
        for (a, b) in forces.iter().zip(full.forces.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((potential - full.potential).abs() < 1e-9);
    }

    #[test]
    fn bond_at_equilibrium_exerts_no_force() {
        let bonds = [Bond {
            i: 0,
            j: 1,
            k: 50.0,
            r0: 1.5,
        }];
        let positions = vec![0.0, 0.0, 0.0, 1.5, 0.0, 0.0];
        let mut forces = vec![0.0; 6];
        let u = add_bond_forces(&bonds, &positions, 0, 2, 100.0, &mut forces);
        assert!(forces.iter().all(|f| f.abs() < 1e-12), "{forces:?}");
        assert!(u.abs() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_atoms_together() {
        let bonds = [Bond {
            i: 0,
            j: 1,
            k: 10.0,
            r0: 1.0,
        }];
        let positions = vec![0.0, 0.0, 0.0, 2.0, 0.0, 0.0]; // stretched by 1
        let mut forces = vec![0.0; 6];
        let u = add_bond_forces(&bonds, &positions, 0, 2, 100.0, &mut forces);
        assert!(forces[0] > 0.0, "atom 0 pulled +x: {forces:?}");
        assert!(forces[3] < 0.0, "atom 1 pulled −x");
        assert!((forces[0] + forces[3]).abs() < 1e-12, "Newton's third law");
        assert!((u - 5.0).abs() < 1e-12, "½·10·1² = 5, got {u}");
    }

    #[test]
    fn bond_forces_split_correctly_across_blocks() {
        let bonds = [Bond {
            i: 1,
            j: 2,
            k: 7.0,
            r0: 0.5,
        }];
        let positions = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.5, 0.0, 0.0];
        // Whole system in one block...
        let mut full = vec![0.0; 9];
        let u_full = add_bond_forces(&bonds, &positions, 0, 3, 100.0, &mut full);
        // ...versus two blocks split across the bond.
        let mut a = vec![0.0; 6];
        let u_a = add_bond_forces(&bonds, &positions, 0, 2, 100.0, &mut a);
        let mut b = vec![0.0; 3];
        let u_b = add_bond_forces(&bonds, &positions, 2, 1, 100.0, &mut b);
        let combined: Vec<f64> = a.into_iter().chain(b).collect();
        for (x, y) in combined.iter().zip(full.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!((u_a + u_b - u_full).abs() < 1e-12);
    }

    #[test]
    fn chain_bonds_respect_chain_boundaries() {
        // 7 atoms in chains of 3: chains {0,1,2}, {3,4,5}, {6}.
        let bonds = chain_bonds(7, 3, 1.0, 1.0);
        let pairs: Vec<(usize, usize)> = bonds.iter().map(|b| (b.i, b.j)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert!(chain_bonds(10, 1, 1.0, 1.0).is_empty());
        assert!(chain_bonds(10, 0, 1.0, 1.0).is_empty());
    }

    #[test]
    fn potential_shift_makes_cutoff_continuous() {
        // Just inside the cutoff, energy must be near zero.
        let positions = vec![0.0, 0.0, 0.0, 2.4999, 0.0, 0.0];
        let out = compute_all(&positions, 100.0, 2.5);
        assert!(out.potential.abs() < 1e-3, "u = {}", out.potential);
    }
}
