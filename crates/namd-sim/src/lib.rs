//! # namd-sim — a compact parallel molecular-dynamics application
//!
//! The JETS paper's driving application is replica-exchange molecular
//! dynamics (REM) with NAMD: 4-processor NAMD segments of a 44,992-atom
//! NMA system, ~10 timesteps (~100 s) per segment, exchanged and restarted
//! thousands of times. NAMD itself is ~30k lines of Charm++; what REM
//! actually requires of its engine is much smaller:
//!
//! * restartable dynamics at a controlled temperature,
//! * per-segment potential energies (for the Metropolis exchange test),
//! * NAMD-style restart artifacts (coordinates / velocities / extended
//!   system files) that an external exchange step can swap,
//! * and genuine MPI-parallel execution, so segments exercise the JETS
//!   MPI launch path.
//!
//! `namd-sim` provides exactly that: a Lennard-Jones fluid in reduced
//! units, velocity-Verlet integration with a Langevin thermostat, atom
//! decomposition over a `jets-mpi` communicator (allgather positions,
//! allreduce energies), NAMD-flavoured config/restart file I/O, and the
//! replica-exchange acceptance rule
//! `P = min(1, exp((1/T_i − 1/T_j)(E_i − E_j)))` with velocity rescaling
//! on accepted swaps.
//!
//! Substitution note (see DESIGN.md): the physics is an LJ fluid rather
//! than CHARMM force fields — REM's control flow, file traffic, and
//! statistics are preserved; chemistry is not the system under test.

#![warn(missing_docs)]

pub mod config;
pub mod force;
pub mod io;
pub mod md;
pub mod rem;
pub mod system;
pub mod workflow;

pub use config::MdConfig;
pub use md::{run_segment, SegmentResult};
pub use rem::{exchange_delta, metropolis_accept, ReplicaFiles};
pub use system::ParticleSystem;
pub use workflow::{rem_script, stage_initial_replicas, RemParams};
