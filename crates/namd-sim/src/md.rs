//! The dynamics engine: velocity Verlet + Langevin, optionally MPI-parallel.
//!
//! Parallelization is atom decomposition, the simplest scheme that makes
//! a segment a genuinely tightly-coupled MPI job: every step all ranks
//! allgather positions, compute forces for their own atom block, and
//! integrate their block; energies are allreduced at the end. The
//! thermostat's noise is a counter-based (hash) Gaussian keyed by
//! `(seed, global step, atom, dimension)`, so a trajectory is independent
//! of the rank decomposition and exactly restartable across segments.

use crate::config::MdConfig;
use crate::force::{add_bond_forces, chain_bonds, compute_block};
use crate::io::{read_vectors, read_xsc, write_vectors, write_xsc, IoError, XscData};
use crate::system::ParticleSystem;
use jets_mpi::{Communicator, MpiError, ReduceOp};
use std::path::Path;
use std::time::{Duration, Instant};

/// Error from running a segment.
#[derive(Debug)]
pub enum MdError {
    /// Restart-file problem.
    Io(IoError),
    /// Communication problem.
    Mpi(MpiError),
    /// Inconsistent configuration.
    Config(String),
}

impl std::fmt::Display for MdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdError::Io(e) => write!(f, "md i/o: {e}"),
            MdError::Mpi(e) => write!(f, "md mpi: {e}"),
            MdError::Config(m) => write!(f, "md config: {m}"),
        }
    }
}

impl std::error::Error for MdError {}

impl From<IoError> for MdError {
    fn from(e: IoError) -> Self {
        MdError::Io(e)
    }
}

impl From<MpiError> for MdError {
    fn from(e: MpiError) -> Self {
        MdError::Mpi(e)
    }
}

/// Outcome of one segment.
#[derive(Debug, Clone)]
pub struct SegmentResult {
    /// Final state (positions/velocities complete on every rank).
    pub system: ParticleSystem,
    /// Final potential energy.
    pub potential: f64,
    /// Final kinetic temperature.
    pub temperature: f64,
}

/// Run one MD segment described by `config`. Pass `Some(comm)` to run as
/// one rank of an MPI job (every rank must call with the same config);
/// pass `None` for serial execution. Rank 0 (or the serial caller) writes
/// the output restart files.
pub fn run_segment(
    config: &MdConfig,
    mut comm: Option<&mut Communicator>,
) -> Result<SegmentResult, MdError> {
    let started = Instant::now();
    config.validate().map_err(MdError::Config)?;
    let (rank, size) = match &comm {
        Some(c) => (c.rank() as usize, c.size() as usize),
        None => (0, 1),
    };

    // --- Load or create the system (deterministic, so every rank agrees).
    let mut system = load_system(config)?;
    let n = system.len();
    let box_len = system.box_len;
    let dt = config.timestep;
    let gamma = config.langevin_damping;
    let chunk = n.div_ceil(size);
    let my_start = (rank * chunk).min(n);
    let my_len = chunk.min(n.saturating_sub(my_start));
    let bonds = chain_bonds(n, config.bond_chain_length, config.bond_k, config.bond_r0);

    // --- Initial forces for my block.
    let mut block = compute_block(&system.positions, my_start, my_len, box_len, config.cutoff);
    block.potential += add_bond_forces(
        &bonds,
        &system.positions,
        my_start,
        my_len,
        box_len,
        &mut block.forces,
    );

    // Langevin coefficients.
    let c1 = (-gamma * dt).exp();
    let c2 = if gamma > 0.0 {
        ((1.0 - c1 * c1) * config.temperature).sqrt()
    } else {
        0.0
    };

    for _ in 0..config.numsteps {
        let global_step = system.step;
        // Half kick + drift for owned atoms.
        for bi in 0..my_len {
            let i = my_start + bi;
            for d in 0..3 {
                system.velocities[3 * i + d] += 0.5 * dt * block.forces[3 * bi + d];
                system.positions[3 * i + d] += dt * system.velocities[3 * i + d];
            }
        }
        // Share the updated positions.
        exchange_positions(&mut comm, &mut system.positions, my_start, my_len, chunk, n)?;
        // New forces, second half kick, thermostat.
        block = compute_block(&system.positions, my_start, my_len, box_len, config.cutoff);
        block.potential += add_bond_forces(
            &bonds,
            &system.positions,
            my_start,
            my_len,
            box_len,
            &mut block.forces,
        );
        for bi in 0..my_len {
            let i = my_start + bi;
            for d in 0..3 {
                let v = &mut system.velocities[3 * i + d];
                *v += 0.5 * dt * block.forces[3 * bi + d];
                if gamma > 0.0 {
                    let xi = counter_gaussian(config.seed, global_step, i as u64, d as u64);
                    *v = c1 * *v + c2 * xi;
                }
            }
        }
        system.step += 1;
    }

    // --- Final energies (owned contributions, then global reduction).
    let my_potential = block.potential;
    let my_kinetic: f64 = (0..my_len)
        .map(|bi| {
            let i = my_start + bi;
            0.5 * (0..3)
                .map(|d| system.velocities[3 * i + d].powi(2))
                .sum::<f64>()
        })
        .sum();
    let (potential, kinetic) = match &mut comm {
        Some(c) => {
            let sums = c.allreduce(&[my_potential, my_kinetic], ReduceOp::Sum)?;
            (sums[0], sums[1])
        }
        None => (my_potential, my_kinetic),
    };
    let temperature = if n > 0 {
        2.0 * kinetic / (3.0 * n as f64)
    } else {
        0.0
    };

    // --- Complete the velocity vector on every rank (positions already
    // complete after the last exchange; velocities only for owned atoms).
    exchange_velocities(
        &mut comm,
        &mut system.velocities,
        my_start,
        my_len,
        chunk,
        n,
    )?;
    system.wrap_positions();

    // --- Rank 0 writes the restart artifacts.
    if rank == 0 {
        let prefix = &config.outputname;
        write_vectors(Path::new(&format!("{prefix}.coor")), &system.positions)?;
        write_vectors(Path::new(&format!("{prefix}.vel")), &system.velocities)?;
        write_xsc(
            Path::new(&format!("{prefix}.xsc")),
            &XscData {
                step: system.step,
                potential,
                temperature,
                box_length: box_len,
            },
        )?;
    }

    // --- Pace the segment to its nominal duration (simulated-testbed
    // knob; see EXPERIMENTS.md).
    if config.pace_milliseconds > 0 {
        let target = Duration::from_millis(config.pace_milliseconds);
        let elapsed = started.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
    }

    Ok(SegmentResult {
        system,
        potential,
        temperature,
    })
}

/// Load restart files, or build a fresh lattice when none are given.
fn load_system(config: &MdConfig) -> Result<ParticleSystem, MdError> {
    match &config.coordinates {
        Some(coor_path) => {
            let positions = read_vectors(Path::new(coor_path))?;
            let n = positions.len() / 3;
            let xsc = match &config.extended_system {
                Some(p) => Some(read_xsc(Path::new(p))?),
                None => None,
            };
            let box_len = xsc
                .map(|x| x.box_length)
                .unwrap_or_else(|| (n as f64 / config.density).cbrt());
            let velocities = match &config.velocities {
                Some(p) => {
                    let v = read_vectors(Path::new(p))?;
                    if v.len() != positions.len() {
                        return Err(MdError::Config(format!(
                            "velocity count {} does not match coordinate count {}",
                            v.len() / 3,
                            n
                        )));
                    }
                    v
                }
                None => vec![0.0; positions.len()],
            };
            let mut system = ParticleSystem {
                positions,
                velocities,
                box_len,
                step: xsc.map(|x| x.step).unwrap_or(0),
            };
            if config.velocities.is_none() {
                system.thermalize(config.temperature, config.seed);
            }
            Ok(system)
        }
        None => Ok(ParticleSystem::lattice(
            config.num_atoms,
            config.density,
            config.temperature,
            config.seed,
        )),
    }
}

/// Allgather the owned block of a 3N vector so every rank holds the full
/// vector. Blocks are padded to `chunk` atoms so counts match.
fn exchange_positions(
    comm: &mut Option<&mut Communicator>,
    data: &mut [f64],
    my_start: usize,
    my_len: usize,
    chunk: usize,
    n: usize,
) -> Result<(), MpiError> {
    let Some(c) = comm.as_deref_mut() else {
        return Ok(());
    };
    let mut padded = vec![0.0f64; chunk * 3];
    padded[..my_len * 3].copy_from_slice(&data[my_start * 3..(my_start + my_len) * 3]);
    let gathered = c.allgather(&padded)?;
    let size = c.size() as usize;
    for r in 0..size {
        let start = (r * chunk).min(n);
        let len = chunk.min(n.saturating_sub(start));
        data[start * 3..(start + len) * 3]
            .copy_from_slice(&gathered[r * chunk * 3..r * chunk * 3 + len * 3]);
    }
    Ok(())
}

/// Same exchange for velocities (identical layout).
fn exchange_velocities(
    comm: &mut Option<&mut Communicator>,
    data: &mut [f64],
    my_start: usize,
    my_len: usize,
    chunk: usize,
    n: usize,
) -> Result<(), MpiError> {
    exchange_positions(comm, data, my_start, my_len, chunk, n)
}

/// Counter-based standard normal: hash the key, Box–Muller the result.
/// Decomposition-independent and restart-stable.
fn counter_gaussian(seed: u64, step: u64, atom: u64, dim: u64) -> f64 {
    let a = splitmix64(
        seed ^ step.wrapping_mul(0x9E3779B97F4A7C15)
            ^ atom.wrapping_mul(0xBF58476D1CE4E5B9)
            ^ dim.wrapping_mul(0x94D049BB133111EB),
    );
    let b = splitmix64(a);
    // Map to (0,1]: avoid ln(0).
    let u1 = ((a >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_mpi::{runner, NetModel};
    use std::fs;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("namd-md-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_config(out: &Path) -> MdConfig {
        MdConfig {
            num_atoms: 64,
            density: 0.6,
            temperature: 1.2,
            numsteps: 20,
            timestep: 0.004,
            cutoff: 2.5,
            langevin_damping: 1.0,
            outputname: out.to_string_lossy().into_owned(),
            seed: 99,
            ..MdConfig::default()
        }
    }

    #[test]
    fn nve_conserves_energy() {
        let dir = tmpdir("nve");
        let mut config = base_config(&dir.join("nve"));
        config.langevin_damping = 0.0; // pure NVE
        config.timestep = 0.002;
        config.numsteps = 5;
        let first = run_segment(&config, None).unwrap();
        let e0 = first.potential + first.system.kinetic_energy();
        // Continue 200 more steps from the restart.
        let mut config2 = config.clone();
        config2.coordinates = Some(format!("{}.coor", config.outputname));
        config2.velocities = Some(format!("{}.vel", config.outputname));
        config2.extended_system = Some(format!("{}.xsc", config.outputname));
        config2.numsteps = 200;
        config2.outputname = dir.join("nve2").to_string_lossy().into_owned();
        let second = run_segment(&config2, None).unwrap();
        let e1 = second.potential + second.system.kinetic_energy();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 0.02, "relative energy drift {drift}");
    }

    #[test]
    fn trajectories_are_deterministic() {
        let dir = tmpdir("det");
        let config_a = base_config(&dir.join("a"));
        let config_b = base_config(&dir.join("b"));
        let a = run_segment(&config_a, None).unwrap();
        let b = run_segment(&config_b, None).unwrap();
        assert_eq!(a.system.positions, b.system.positions);
        assert_eq!(a.system.velocities, b.system.velocities);
        assert_eq!(a.potential, b.potential);
    }

    #[test]
    fn thermostat_holds_target_temperature() {
        let dir = tmpdir("thermo");
        let mut config = base_config(&dir.join("t"));
        config.numsteps = 300;
        config.temperature = 1.5;
        let result = run_segment(&config, None).unwrap();
        assert!(
            (result.temperature - 1.5).abs() < 0.45,
            "temperature {} too far from target 1.5",
            result.temperature
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let dir = tmpdir("par");
        let serial_config = base_config(&dir.join("serial"));
        let serial = run_segment(&serial_config, None).unwrap();

        let par_dir = dir.clone();
        let results = runner::run_threads(4, NetModel::ideal(), move |comm| {
            let mut config = base_config(&par_dir.join(format!("par-r{}", comm.rank())));
            // All ranks must share one outputname for the rank-0 write;
            // give them the same prefix.
            config.outputname = par_dir.join("par").to_string_lossy().into_owned();
            let r = run_segment(&config, Some(comm)).unwrap();
            comm.barrier().unwrap();
            (r.potential, r.system.positions)
        })
        .unwrap();
        for (potential, positions) in &results {
            assert!(
                (potential - serial.potential).abs() < 1e-8,
                "parallel potential {potential} vs serial {}",
                serial.potential
            );
            assert_eq!(positions.len(), serial.system.positions.len());
            for (a, b) in positions.iter().zip(serial.system.positions.iter()) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn restart_continues_exactly() {
        let dir = tmpdir("restart");
        // 30 straight steps...
        let mut straight = base_config(&dir.join("straight"));
        straight.numsteps = 30;
        let full = run_segment(&straight, None).unwrap();
        // ...versus 15 + 15 through restart files.
        let mut first = base_config(&dir.join("part1"));
        first.numsteps = 15;
        run_segment(&first, None).unwrap();
        let mut second = base_config(&dir.join("part2"));
        second.numsteps = 15;
        second.coordinates = Some(format!("{}.coor", first.outputname));
        second.velocities = Some(format!("{}.vel", first.outputname));
        second.extended_system = Some(format!("{}.xsc", first.outputname));
        let resumed = run_segment(&second, None).unwrap();
        assert_eq!(resumed.system.step, full.system.step);
        for (a, b) in resumed
            .system
            .positions
            .iter()
            .zip(full.system.positions.iter())
        {
            assert!((a - b).abs() < 1e-12, "restart divergence: {a} vs {b}");
        }
    }

    #[test]
    fn outputs_are_written_and_consistent() {
        let dir = tmpdir("outputs");
        let config = base_config(&dir.join("w"));
        let result = run_segment(&config, None).unwrap();
        let coor = read_vectors(Path::new(&format!("{}.coor", config.outputname))).unwrap();
        let vel = read_vectors(Path::new(&format!("{}.vel", config.outputname))).unwrap();
        let xsc = read_xsc(Path::new(&format!("{}.xsc", config.outputname))).unwrap();
        assert_eq!(coor, result.system.positions);
        assert_eq!(vel, result.system.velocities);
        assert_eq!(xsc.step, result.system.step);
        assert!((xsc.potential - result.potential).abs() < 1e-12);
    }

    #[test]
    fn pacing_pads_wall_time() {
        let dir = tmpdir("pace");
        let mut config = base_config(&dir.join("p"));
        config.numsteps = 1;
        config.pace_milliseconds = 80;
        let t = Instant::now();
        run_segment(&config, None).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn bonded_system_runs_parallel_equal_serial() {
        let dir = tmpdir("bonded");
        let mut config = base_config(&dir.join("bonded-serial"));
        config.bond_chain_length = 4;
        config.numsteps = 10;
        let serial = run_segment(&config, None).unwrap();
        assert!(serial.potential.is_finite());

        let par_dir = dir.clone();
        let results = runner::run_threads(3, NetModel::ideal(), move |comm| {
            let mut config = base_config(&par_dir.join("bonded-par"));
            config.bond_chain_length = 4;
            config.numsteps = 10;
            config.outputname = par_dir.join("bonded-par").to_string_lossy().into_owned();
            let r = run_segment(&config, Some(comm)).unwrap();
            comm.barrier().unwrap();
            r.potential
        })
        .unwrap();
        for p in results {
            assert!(
                (p - serial.potential).abs() < 1e-8,
                "parallel {p} vs serial {}",
                serial.potential
            );
        }
    }

    #[test]
    fn bond_config_round_trips_and_validates() {
        let config = MdConfig {
            bond_chain_length: 5,
            bond_k: 30.0,
            bond_r0: 1.1,
            ..MdConfig::default()
        };
        let back = MdConfig::parse(&config.render()).unwrap();
        assert_eq!(back, config);
        assert!(MdConfig::parse("bondChainLength 3\nbondK -1\n").is_err());
    }

    #[test]
    fn counter_gaussian_is_reproducible_and_varied() {
        let a = counter_gaussian(1, 2, 3, 0);
        assert_eq!(a, counter_gaussian(1, 2, 3, 0));
        assert_ne!(a, counter_gaussian(1, 2, 3, 1));
        assert_ne!(a, counter_gaussian(1, 2, 4, 0));
        // Rough sanity: 1000 draws have near-zero mean, unit-ish variance.
        let draws: Vec<f64> = (0..1000)
            .map(|i| counter_gaussian(7, i, i * 31, i % 3))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.25, "var {var}");
    }
}
