//! Particle state: positions, velocities, and initialization.
//!
//! Reduced Lennard-Jones units throughout: σ = ε = m = k_B = 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// State of an N-particle system in a cubic periodic box.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleSystem {
    /// Flattened positions, length 3N.
    pub positions: Vec<f64>,
    /// Flattened velocities, length 3N.
    pub velocities: Vec<f64>,
    /// Periodic box edge length.
    pub box_len: f64,
    /// Completed timestep counter (carried across restarts).
    pub step: u64,
}

impl ParticleSystem {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len() / 3
    }

    /// True for an empty system.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Initialize `n` particles on a cubic lattice at number density
    /// `density`, with Maxwell–Boltzmann velocities at `temperature`
    /// (deterministic given `seed`).
    pub fn lattice(n: usize, density: f64, temperature: f64, seed: u64) -> ParticleSystem {
        assert!(n > 0, "need at least one particle");
        assert!(density > 0.0, "density must be positive");
        let box_len = (n as f64 / density).cbrt();
        let per_side = (n as f64).cbrt().ceil() as usize;
        let spacing = box_len / per_side as f64;
        let mut positions = Vec::with_capacity(3 * n);
        'fill: for ix in 0..per_side {
            for iy in 0..per_side {
                for iz in 0..per_side {
                    if positions.len() == 3 * n {
                        break 'fill;
                    }
                    positions.push((ix as f64 + 0.5) * spacing);
                    positions.push((iy as f64 + 0.5) * spacing);
                    positions.push((iz as f64 + 0.5) * spacing);
                }
            }
        }
        let mut system = ParticleSystem {
            positions,
            velocities: vec![0.0; 3 * n],
            box_len,
            step: 0,
        };
        system.thermalize(temperature, seed);
        system
    }

    /// Draw fresh Maxwell–Boltzmann velocities at `temperature`, remove
    /// net momentum, and rescale to the exact target temperature.
    pub fn thermalize(&mut self, temperature: f64, seed: u64) {
        assert!(temperature >= 0.0, "temperature must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = temperature.sqrt();
        for v in self.velocities.iter_mut() {
            *v = sigma * gaussian(&mut rng);
        }
        self.remove_net_momentum();
        if temperature > 0.0 {
            let current = self.temperature();
            if current > 0.0 {
                self.rescale_velocities((temperature / current).sqrt());
            }
        }
    }

    /// Subtract the center-of-mass velocity.
    pub fn remove_net_momentum(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let mut mean = [0.0f64; 3];
        for i in 0..n {
            for (d, m) in mean.iter_mut().enumerate() {
                *m += self.velocities[3 * i + d];
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        for i in 0..n {
            for (d, m) in mean.iter().enumerate() {
                self.velocities[3 * i + d] -= m;
            }
        }
    }

    /// Instantaneous kinetic temperature: `2 KE / (3N)` (k_B = 1, m = 1).
    pub fn temperature(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * n as f64)
    }

    /// Total kinetic energy `½ Σ v²`.
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.velocities.iter().map(|v| v * v).sum::<f64>()
    }

    /// Multiply every velocity by `factor` (REM exchange rescaling).
    pub fn rescale_velocities(&mut self, factor: f64) {
        for v in self.velocities.iter_mut() {
            *v *= factor;
        }
    }

    /// Wrap all positions back into the primary box.
    pub fn wrap_positions(&mut self) {
        let l = self.box_len;
        for x in self.positions.iter_mut() {
            *x -= l * (*x / l).floor();
        }
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_requested_count_and_box() {
        let s = ParticleSystem::lattice(100, 0.8, 1.0, 1);
        assert_eq!(s.len(), 100);
        let expect_box = (100.0f64 / 0.8).cbrt();
        assert!((s.box_len - expect_box).abs() < 1e-12);
        // All positions inside the box.
        assert!(s.positions.iter().all(|&x| x >= 0.0 && x <= s.box_len));
    }

    #[test]
    fn thermalize_hits_target_temperature_exactly() {
        let s = ParticleSystem::lattice(64, 0.5, 1.5, 7);
        assert!((s.temperature() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn net_momentum_is_zero_after_thermalize() {
        let s = ParticleSystem::lattice(50, 0.5, 2.0, 3);
        for d in 0..3 {
            let p: f64 = (0..s.len()).map(|i| s.velocities[3 * i + d]).sum();
            assert!(p.abs() < 1e-9, "net momentum component {d} = {p}");
        }
    }

    #[test]
    fn thermalize_is_deterministic_in_seed() {
        let a = ParticleSystem::lattice(30, 0.6, 1.0, 42);
        let b = ParticleSystem::lattice(30, 0.6, 1.0, 42);
        let c = ParticleSystem::lattice(30, 0.6, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a.velocities, c.velocities);
    }

    #[test]
    fn rescale_changes_temperature_quadratically() {
        let mut s = ParticleSystem::lattice(64, 0.5, 1.0, 9);
        s.rescale_velocities(2.0);
        assert!((s.temperature() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_positions_brings_everything_into_box() {
        let mut s = ParticleSystem::lattice(8, 0.5, 1.0, 1);
        s.positions[0] = -0.3;
        s.positions[1] = s.box_len + 0.7;
        s.wrap_positions();
        assert!(s.positions.iter().all(|&x| (0.0..s.box_len).contains(&x)));
        assert!((s.positions[0] - (s.box_len - 0.3)).abs() < 1e-9);
    }

    #[test]
    fn zero_temperature_gives_zero_velocities() {
        let s = ParticleSystem::lattice(10, 0.5, 0.0, 5);
        assert!(s.velocities.iter().all(|&v| v == 0.0));
        assert_eq!(s.temperature(), 0.0);
    }
}
