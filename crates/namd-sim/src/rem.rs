//! Replica exchange: the Metropolis test and the file-level swap.
//!
//! The replica exchange method (Sugita & Okamoto 1999; paper Section 3)
//! runs many trajectories at different temperatures, regularly stopping
//! them to attempt exchanges between temperature neighbours. The
//! acceptance rule for configurations `i`, `j` at temperatures `T_i`,
//! `T_j` with potential energies `E_i`, `E_j` (k_B = 1) is
//!
//! ```text
//! Δ = (1/T_i − 1/T_j) · (E_i − E_j)
//! P(accept) = min(1, e^Δ)
//! ```
//!
//! On acceptance the *configurations* swap between the temperature slots:
//! coordinates move across, and velocities are rescaled by
//! `sqrt(T_new / T_old)` so the kinetic energy matches the destination
//! temperature. In the JETS workflow this is performed by an external
//! exchange process operating on the restart files — exactly what
//! [`attempt_file_exchange`] does.

use crate::io::{read_vectors, read_xsc, write_vectors, write_xsc, IoError};
use rand::Rng;
use std::path::PathBuf;

/// The Metropolis exponent Δ for an exchange between `(t_i, e_i)` and
/// `(t_j, e_j)`.
pub fn exchange_delta(t_i: f64, e_i: f64, t_j: f64, e_j: f64) -> f64 {
    assert!(t_i > 0.0 && t_j > 0.0, "temperatures must be positive");
    (1.0 / t_i - 1.0 / t_j) * (e_i - e_j)
}

/// The Metropolis decision: always accept Δ ≥ 0, else with probability
/// e^Δ.
pub fn metropolis_accept(delta: f64, rng: &mut impl Rng) -> bool {
    delta >= 0.0 || rng.gen::<f64>() < delta.exp()
}

/// The restart-file triple of one replica segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaFiles {
    /// Coordinates file.
    pub coor: PathBuf,
    /// Velocities file.
    pub vel: PathBuf,
    /// Extended-system file.
    pub xsc: PathBuf,
}

impl ReplicaFiles {
    /// Files produced by a segment with `outputname = prefix`.
    pub fn from_prefix(prefix: &str) -> ReplicaFiles {
        ReplicaFiles {
            coor: PathBuf::from(format!("{prefix}.coor")),
            vel: PathBuf::from(format!("{prefix}.vel")),
            xsc: PathBuf::from(format!("{prefix}.xsc")),
        }
    }
}

/// Attempt an exchange between replica `a` (at temperature `t_a`) and
/// replica `b` (at `t_b`), operating on their restart files.
///
/// Returns whether the exchange was accepted. On acceptance the two file
/// triples' *contents* are swapped, with velocities rescaled to their new
/// temperature slots; on rejection the files are untouched.
pub fn attempt_file_exchange(
    a: &ReplicaFiles,
    b: &ReplicaFiles,
    t_a: f64,
    t_b: f64,
    rng: &mut impl Rng,
) -> Result<bool, IoError> {
    let xsc_a = read_xsc(&a.xsc)?;
    let xsc_b = read_xsc(&b.xsc)?;
    let delta = exchange_delta(t_a, xsc_a.potential, t_b, xsc_b.potential);
    if !metropolis_accept(delta, rng) {
        return Ok(false);
    }

    // Swap coordinates wholesale.
    let coor_a = read_vectors(&a.coor)?;
    let coor_b = read_vectors(&b.coor)?;
    write_vectors(&a.coor, &coor_b)?;
    write_vectors(&b.coor, &coor_a)?;

    // Swap velocities with temperature rescaling.
    let scale_into_a = (t_a / t_b).sqrt();
    let scale_into_b = (t_b / t_a).sqrt();
    let mut vel_a = read_vectors(&a.vel)?;
    let mut vel_b = read_vectors(&b.vel)?;
    for v in vel_b.iter_mut() {
        *v *= scale_into_a;
    }
    for v in vel_a.iter_mut() {
        *v *= scale_into_b;
    }
    write_vectors(&a.vel, &vel_b)?;
    write_vectors(&b.vel, &vel_a)?;

    // Swap extended-system data; step counters travel with the
    // configurations, temperatures stay with the slots, and the swapped
    // kinetic temperatures are rescaled like the velocities.
    let mut new_a = xsc_b;
    let mut new_b = xsc_a;
    new_a.temperature *= scale_into_a * scale_into_a;
    new_b.temperature *= scale_into_b * scale_into_b;
    write_xsc(&a.xsc, &new_a)?;
    write_xsc(&b.xsc, &new_b)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::XscData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fs;
    use std::path::Path;

    #[test]
    fn delta_signs_follow_the_physics() {
        // Hot replica holding a LOW-energy configuration and cold replica
        // holding HIGH energy: exchanging lets each configuration go where
        // it is more probable → Δ > 0, always accepted.
        let delta = exchange_delta(1.0, 50.0, 2.0, -10.0);
        assert!(delta > 0.0);
        // The reverse arrangement is penalized.
        let delta = exchange_delta(1.0, -10.0, 2.0, 50.0);
        assert!(delta < 0.0);
        // Equal temperatures: Δ = 0 regardless of energies.
        assert_eq!(exchange_delta(1.5, 3.0, 1.5, 99.0), 0.0);
    }

    #[test]
    fn metropolis_always_accepts_nonnegative_delta() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(metropolis_accept(0.0, &mut rng));
            assert!(metropolis_accept(5.0, &mut rng));
        }
    }

    #[test]
    fn metropolis_acceptance_rate_matches_exponent() {
        let mut rng = StdRng::seed_from_u64(1);
        let delta = -1.0f64;
        let trials = 20_000;
        let accepted = (0..trials)
            .filter(|_| metropolis_accept(delta, &mut rng))
            .count();
        let rate = accepted as f64 / trials as f64;
        let expect = delta.exp();
        assert!((rate - expect).abs() < 0.02, "rate {rate} vs e^Δ {expect}");
    }

    #[test]
    fn metropolis_rejects_very_negative_delta() {
        let mut rng = StdRng::seed_from_u64(2);
        let accepted = (0..1000)
            .filter(|_| metropolis_accept(-50.0, &mut rng))
            .count();
        assert_eq!(accepted, 0);
    }

    fn write_replica(dir: &Path, name: &str, potential: f64, temp: f64, tag: f64) -> ReplicaFiles {
        let files = ReplicaFiles::from_prefix(&dir.join(name).to_string_lossy());
        write_vectors(&files.coor, &[tag, 0.0, 0.0]).unwrap();
        write_vectors(&files.vel, &[tag, tag, tag]).unwrap();
        write_xsc(
            &files.xsc,
            &XscData {
                step: 10,
                potential,
                temperature: temp,
                box_length: 5.0,
            },
        )
        .unwrap();
        files
    }

    #[test]
    fn accepted_file_exchange_swaps_and_rescales() {
        let dir = std::env::temp_dir().join(format!("rem-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        // Guaranteed-accept arrangement: cold slot has high energy.
        let a = write_replica(&dir, "a", 100.0, 1.0, 1.0); // T_a = 1
        let b = write_replica(&dir, "b", -100.0, 2.0, 2.0); // T_b = 2
        let mut rng = StdRng::seed_from_u64(3);
        let accepted = attempt_file_exchange(&a, &b, 1.0, 2.0, &mut rng).unwrap();
        assert!(accepted);
        // Coordinates swapped: slot a now holds configuration "2.0".
        assert_eq!(read_vectors(&a.coor).unwrap()[0], 2.0);
        assert_eq!(read_vectors(&b.coor).unwrap()[0], 1.0);
        // Velocities swapped and rescaled: b's velocities (2.0) into slot
        // a scaled by sqrt(1/2).
        let va = read_vectors(&a.vel).unwrap();
        assert!((va[0] - 2.0 * (0.5f64).sqrt()).abs() < 1e-12);
        let vb = read_vectors(&b.vel).unwrap();
        assert!((vb[0] - 1.0 * (2.0f64).sqrt()).abs() < 1e-12);
        // Energies travelled with the configurations.
        assert_eq!(read_xsc(&a.xsc).unwrap().potential, -100.0);
        assert_eq!(read_xsc(&b.xsc).unwrap().potential, 100.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_exchange_leaves_files_untouched() {
        let dir = std::env::temp_dir().join(format!("rem-rej-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        // Guaranteed-reject arrangement (Δ very negative).
        let a = write_replica(&dir, "a", -1000.0, 1.0, 1.0);
        let b = write_replica(&dir, "b", 1000.0, 2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let accepted = attempt_file_exchange(&a, &b, 1.0, 2.0, &mut rng).unwrap();
        assert!(!accepted);
        assert_eq!(read_vectors(&a.coor).unwrap()[0], 1.0);
        assert_eq!(read_xsc(&b.xsc).unwrap().potential, 1000.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_prefix_builds_the_triple() {
        let f = ReplicaFiles::from_prefix("/tmp/r3_s7");
        assert_eq!(f.coor, PathBuf::from("/tmp/r3_s7.coor"));
        assert_eq!(f.vel, PathBuf::from("/tmp/r3_s7.vel"));
        assert_eq!(f.xsc, PathBuf::from("/tmp/r3_s7.xsc"));
    }
}
