//! Torture and crash-durability tests for the flight recorder.
//!
//! The crash test re-executes this test binary: `crash_child_write_loop`
//! is an ordinary (instantly-passing) test unless `JETS_RING_CRASH_PATH`
//! is set, in which case it opens a file-backed ring and pushes until
//! the parent test `kill -9`s it mid-write. The parent then maps the
//! file offline and proves the committed prefix is intact.

use jets_ring::{Ring, PAYLOAD_BYTES};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Many writers, many readers, a deliberately tiny window, sustained
/// wrap-around. Asserts the invariants every consumer relies on:
/// sequence numbers are unique across writers, each reader observes a
/// strictly increasing sequence, and read + lapped accounts for every
/// record ever pushed.
#[test]
fn torture_multi_writer_multi_reader_wraparound() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 50_000;
    const TOTAL: u64 = WRITERS as u64 * PER_WRITER;

    let ring = Ring::anon(1024); // minimum window: laps constantly
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..3 {
        let mut cur = ring.reader();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut last: Option<u64> = None;
            let mut seen = 0u64;
            let drain =
                |cur: &mut jets_ring::RingReader, last: &mut Option<u64>, seen: &mut u64| {
                    while let Some(rec) = cur.poll() {
                        if let Some(prev) = *last {
                            assert!(rec.seq > prev, "reader regressed: {} after {prev}", rec.seq);
                        }
                        // Payload integrity: writers stamp (writer_id, i).
                        let mut w = [0u8; 8];
                        w.copy_from_slice(&rec.payload()[..8]);
                        let writer = u64::from_le_bytes(w);
                        assert!(writer < WRITERS as u64, "garbage writer id {writer}");
                        *last = Some(rec.seq);
                        *seen += 1;
                    }
                };
            while !stop.load(Ordering::Acquire) {
                drain(&mut cur, &mut last, &mut seen);
                std::hint::spin_loop();
            }
            drain(&mut cur, &mut last, &mut seen);
            (seen, cur.lapped())
        }));
    }

    let mut writers = Vec::new();
    for w in 0..WRITERS as u64 {
        let ring = ring.clone();
        writers.push(std::thread::spawn(move || {
            let mut seqs = Vec::with_capacity(PER_WRITER as usize);
            for i in 0..PER_WRITER {
                let mut payload = [0u8; 16];
                payload[..8].copy_from_slice(&w.to_le_bytes());
                payload[8..].copy_from_slice(&i.to_le_bytes());
                seqs.push(ring.push(&payload));
            }
            seqs
        }));
    }

    let mut all_seqs = HashSet::with_capacity(TOTAL as usize);
    for h in writers {
        for seq in h.join().expect("writer thread") {
            assert!(all_seqs.insert(seq), "sequence {seq} claimed twice");
        }
    }
    assert_eq!(all_seqs.len() as u64, TOTAL);
    assert_eq!(ring.seq(), TOTAL, "claim cursor covers every push");

    stop.store(true, Ordering::Release);
    for h in readers {
        let (seen, lapped) = h.join().expect("reader thread");
        assert_eq!(
            seen + lapped,
            TOTAL,
            "reader accounting must cover every record (seen {seen} + lapped {lapped})"
        );
        assert!(seen > 0, "a polling reader saw nothing at all");
    }
}

/// A `jets top`-shaped poller: periodic snapshots while the writer
/// runs, each snapshot a bounded drain that never waits on anything.
#[test]
fn torture_periodic_poller_never_blocks() {
    let ring = Ring::anon(4096);
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let mut cur = ring.reader();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut polls = 0u64;
            let mut worst = Duration::ZERO;
            while !stop.load(Ordering::Acquire) {
                let t = Instant::now();
                let mut batch = 0;
                while let Some(_rec) = cur.poll() {
                    batch += 1;
                    if batch >= 10_000 {
                        break; // bounded drain, like a UI frame
                    }
                }
                worst = worst.max(t.elapsed());
                polls += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            (polls, worst)
        })
    };
    // Push flat-out for a fixed wall time (a release-mode push is tens
    // of nanoseconds, so a fixed count would end before the poller's
    // second frame).
    let until = Instant::now() + Duration::from_millis(200);
    let mut i = 0u64;
    while Instant::now() < until {
        ring.push(&i.to_le_bytes());
        i += 1;
    }
    stop.store(true, Ordering::Release);
    let (polls, worst) = poller.join().expect("poller thread");
    assert!(i > 100_000, "writer should have pushed plenty, got {i}");
    assert!(
        polls > 10,
        "poller should have run many frames, got {polls}"
    );
    // Generous bound: a 10k-record drain is microseconds of copying; a
    // second would mean the reader waited on the writer somewhere.
    assert!(worst < Duration::from_secs(1), "poll frame took {worst:?}");
}

#[test]
fn payload_cap_is_enforced_exactly() {
    let ring = Ring::anon(1024);
    ring.push(&[0u8; PAYLOAD_BYTES]); // exactly full: fine
    assert!(std::panic::catch_unwind(|| ring.push(&[0u8; PAYLOAD_BYTES + 1])).is_err());
}

/// Child half of the crash test; a no-op unless spawned by
/// `kill_nine_mid_write_replays_offline`. Writes `seq`-stamped records
/// as fast as possible until killed.
#[test]
fn crash_child_write_loop() {
    let Ok(path) = std::env::var("JETS_RING_CRASH_PATH") else {
        return; // normal test run: nothing to do
    };
    let ring = Ring::create(std::path::Path::new(&path), 4096).expect("child ring");
    let mut i = 0u64;
    loop {
        // Single pusher on a fresh file: claimed seq == i, so every
        // committed payload must equal its own sequence number.
        let seq = ring.push(&i.to_le_bytes());
        assert_eq!(seq, i);
        i += 1;
    }
}

#[cfg(unix)]
#[test]
fn kill_nine_mid_write_replays_offline() {
    let path = std::env::temp_dir().join(format!("jets-ring-crash-{}.ring", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["crash_child_write_loop", "--exact", "--nocapture"])
        .env("JETS_RING_CRASH_PATH", &path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn crash child");

    // Wait until the child has demonstrably written plenty, then kill
    // it with SIGKILL mid-stream — no destructor runs, no flush.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(ring) = Ring::open_read(&path) {
            if ring.seq() > 20_000 {
                break;
            }
        }
        assert!(Instant::now() < deadline, "child never got going");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill -9 child");
    child.wait().expect("reap child");

    // Offline replay of the corpse's mapping.
    let ring = Ring::open_read(&path).expect("map crashed file");
    let replay = ring.replay();
    let window = replay.head - replay.earliest;
    assert!(replay.head > 20_000, "claim cursor persisted past the kill");
    assert!(
        replay.torn <= 1,
        "single writer: at most the one in-flight record may be torn, got {}",
        replay.torn
    );
    assert_eq!(
        replay.records.len() as u64 + replay.torn,
        window,
        "every retained slot is either committed or the torn one"
    );
    let mut expected = replay.records.first().expect("non-empty").seq;
    for rec in &replay.records {
        let mut w = [0u8; 8];
        w.copy_from_slice(&rec.payload()[..8]);
        assert_eq!(u64::from_le_bytes(w), rec.seq, "payload survived intact");
        assert!(rec.seq >= expected, "replay out of order");
        expected = rec.seq;
    }
    assert!(ring.writer_pid() > 0);
    let _ = std::fs::remove_file(&path);
}
