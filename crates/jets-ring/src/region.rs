//! The shared word array under a ring: an anonymous heap allocation
//! (in-process sharing via `Arc`) or a `MAP_SHARED` file mapping (the
//! crash-durable flight-recorder mode).
//!
//! Every access goes through [`Region::word`], which hands out
//! `&AtomicU64` references into the raw memory. Nothing here is ever
//! touched as plain (non-atomic) data once a ring is live, so
//! concurrent writer/reader access is race-free by construction — the
//! torn-read *detection* lives in the stamp protocol one layer up
//! (`ring.rs`), not in the memory layer.

use std::fs::OpenOptions;
use std::io;
use std::path::Path;
use std::sync::atomic::AtomicU64;

/// What keeps the words alive (and how they are released).
enum Backing {
    /// Heap words; dropped normally.
    Anon(#[allow(dead_code)] Box<[AtomicU64]>),
    /// `mmap(MAP_SHARED)` of a file; unmapped on drop. The descriptor
    /// is closed as soon as the mapping exists (the mapping keeps the
    /// file's pages reachable on its own).
    #[cfg(unix)]
    File { len: usize },
}

/// A fixed-size array of shared `u64` words.
pub(crate) struct Region {
    ptr: *const AtomicU64,
    words: usize,
    /// Read-only mappings (offline replay) must never be stored to.
    readonly: bool,
    backing: Backing,
}

// SAFETY: the region is a plain array of `AtomicU64`; all access is
// through atomic operations on immutably borrowed cells, which are
// `Sync`. The raw pointer is only a lifetime-erased view of memory
// owned (Anon) or mapped (File) by this struct for its whole life.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// A zeroed in-process region of `words` words.
    pub(crate) fn anon(words: usize) -> Region {
        let boxed: Box<[AtomicU64]> = (0..words).map(|_| AtomicU64::new(0)).collect();
        Region {
            ptr: boxed.as_ptr(),
            words,
            readonly: false,
            backing: Backing::Anon(boxed),
        }
    }

    /// Map `path` shared with exactly `bytes` bytes, creating and
    /// extending the file if needed. `bytes` must be a multiple of 8.
    /// An existing *longer* file is rejected rather than silently
    /// truncated — a capacity mismatch is the caller's to diagnose.
    #[cfg(unix)]
    pub(crate) fn file(path: &Path, bytes: usize) -> io::Result<Region> {
        use std::os::fd::AsRawFd;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let have = file.metadata()?.len();
        if have > bytes as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: file is {have} bytes, ring wants {bytes}",
                    path.display()
                ),
            ));
        }
        if have < bytes as u64 {
            file.set_len(bytes as u64)?;
        }
        let ptr = crate::sys::map_shared(file.as_raw_fd(), bytes, true)?;
        Ok(Region {
            ptr: ptr as *const AtomicU64,
            words: bytes / 8,
            readonly: false,
            backing: Backing::File { len: bytes },
        })
    }

    /// Map an existing file read-only (offline replay). The whole file
    /// is mapped; the caller validates the header before trusting it.
    #[cfg(unix)]
    pub(crate) fn file_readonly(path: &Path) -> io::Result<Region> {
        use std::os::fd::AsRawFd;
        let file = OpenOptions::new().read(true).open(path)?;
        let bytes = file.metadata()?.len() as usize;
        if bytes < 8 || !bytes.is_multiple_of(8) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {bytes} bytes is not a ring file", path.display()),
            ));
        }
        let ptr = crate::sys::map_shared(file.as_raw_fd(), bytes, false)?;
        Ok(Region {
            ptr: ptr as *const AtomicU64,
            words: bytes / 8,
            readonly: true,
            backing: Backing::File { len: bytes },
        })
    }

    #[cfg(not(unix))]
    pub(crate) fn file(path: &Path, _bytes: usize) -> io::Result<Region> {
        let _ = OpenOptions::new(); // keep the import meaningful
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!(
                "{}: file-backed rings need mmap (unix only)",
                path.display()
            ),
        ))
    }

    #[cfg(not(unix))]
    pub(crate) fn file_readonly(path: &Path) -> io::Result<Region> {
        Self::file(path, 0)
    }

    /// The shared word at `idx`.
    #[inline]
    pub(crate) fn word(&self, idx: usize) -> &AtomicU64 {
        debug_assert!(idx < self.words);
        // SAFETY: `idx` is in bounds of the owned/mapped array, the
        // memory lives as long as `self`, and `AtomicU64` has no
        // validity requirements beyond alignment (heap allocations of
        // `AtomicU64` and page-aligned mappings are both 8-aligned).
        unsafe { &*self.ptr.add(idx) }
    }

    /// Number of words.
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// True when the mapping cannot be stored to.
    pub(crate) fn readonly(&self) -> bool {
        self.readonly
    }

    /// Flush a file-backed region to disk (no-op for anonymous ones).
    pub(crate) fn sync(&self) -> io::Result<()> {
        match &self.backing {
            Backing::Anon(_) => Ok(()),
            #[cfg(unix)]
            Backing::File { len } => crate::sys::sync(self.ptr as *mut u8, *len),
        }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::File { len } = &self.backing {
            crate::sys::unmap(self.ptr as *mut u8, *len);
        }
    }
}
