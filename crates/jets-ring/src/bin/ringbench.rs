//! Record-path microbenchmark: the old `Mutex<Vec>` event log versus
//! the jets-ring slot write, plus a reader-chasing-writer run.
//!
//! Std-only on purpose — criterion is not available in the offline
//! stub workspace, and the numbers this emits (committed as
//! `BENCH_pr8.json`) must be reproducible there:
//!
//! ```text
//! cargo run --release -p jets-ring --bin ringbench [OPS]
//! ```
//!
//! Emits one JSON object on stdout with per-op latency quantiles
//! (measured with `Instant`, one sample per operation) and
//! reader-chase throughput/lap accounting.

use jets_ring::Ring;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The payload shape `EventLog` actually writes: ~40 bytes of encoded
/// event, well inside one slot.
const PAYLOAD: &[u8] = &[0x5a; 40];

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Summary {
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: f64,
    ops_per_sec: f64,
}

fn summarize(samples: &mut [u64], wall_ns: u64) -> Summary {
    samples.sort_unstable();
    let total: u64 = samples.iter().sum();
    Summary {
        p50_ns: quantile(samples, 0.50),
        p99_ns: quantile(samples, 0.99),
        max_ns: *samples.last().unwrap_or(&0),
        mean_ns: total as f64 / samples.len().max(1) as f64,
        ops_per_sec: samples.len() as f64 / (wall_ns as f64 / 1e9),
    }
}

/// Per-op latency of the pre-PR8 path: lock a `Mutex`, push a record
/// into a growable `Vec` (allocation cost shows up in the tail as the
/// vec doubles).
fn bench_mutex_vec(ops: usize) -> Summary {
    let log: Mutex<Vec<[u8; 40]>> = Mutex::new(Vec::new());
    let mut rec = [0u8; 40];
    rec.copy_from_slice(PAYLOAD);
    let mut samples = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t = Instant::now();
        log.lock().unwrap().push(rec);
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let wall_ns = wall.elapsed().as_nanos() as u64;
    summarize(&mut samples, wall_ns)
}

/// Per-op latency of the ring slot write.
fn bench_ring(ops: usize) -> Summary {
    let ring = Ring::anon(1 << 16);
    let mut samples = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t = Instant::now();
        ring.push(PAYLOAD);
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let wall_ns = wall.elapsed().as_nanos() as u64;
    summarize(&mut samples, wall_ns)
}

/// The question `jets top` poses: does a reader polling flat-out slow
/// the writer down? Returns (writer summary, records read, lapped).
fn bench_reader_chase(ops: usize) -> (Summary, u64, u64) {
    let ring = Ring::anon(1 << 16);
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let mut cur = ring.reader();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Acquire) {
                while cur.poll().is_some() {
                    seen += 1;
                }
                std::hint::spin_loop();
            }
            while cur.poll().is_some() {
                seen += 1;
            }
            (seen, cur.lapped())
        })
    };
    let mut samples = Vec::with_capacity(ops);
    let wall = Instant::now();
    for _ in 0..ops {
        let t = Instant::now();
        ring.push(PAYLOAD);
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let wall_ns = wall.elapsed().as_nanos() as u64;
    stop.store(true, Ordering::Release);
    let (seen, lapped) = reader.join().expect("reader thread");
    (summarize(&mut samples, wall_ns), seen, lapped)
}

fn emit(name: &str, s: &Summary, extra: &str) {
    println!(
        "    \"{name}\": {{\"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}, \"ops_per_sec\": {:.0}{extra}}},",
        s.p50_ns, s.p99_ns, s.max_ns, s.mean_ns, s.ops_per_sec
    );
}

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    // Warm up the allocator and the ring pages off the clock.
    bench_mutex_vec(ops / 10);
    bench_ring(ops / 10);

    let mutex = bench_mutex_vec(ops);
    let ring = bench_ring(ops);
    let (chased, seen, lapped) = bench_reader_chase(ops);

    println!("{{");
    println!("  \"bench\": \"micro_events\",");
    println!("  \"ops\": {ops},");
    println!("  \"payload_bytes\": {},", PAYLOAD.len());
    println!("  \"results\": {{");
    emit("mutex_vec_record", &mutex, "");
    emit("ring_record", &ring, "");
    emit(
        "ring_record_with_reader",
        &chased,
        &format!(", \"reader_records\": {seen}, \"reader_lapped\": {lapped}"),
    );
    println!(
        "    \"speedup_p50\": {:.2}",
        mutex.p50_ns as f64 / ring.p50_ns.max(1) as f64
    );
    println!("  }}");
    println!("}}");
}
