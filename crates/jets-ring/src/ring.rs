//! The ring itself: fixed-capacity slots, one claim cursor, per-slot
//! commit stamps, overwrite-oldest semantics.
//!
//! ## Layout (all little-endian `u64` words)
//!
//! ```text
//! header: | MAGIC | VERSION | SLOT_BYTES | CAPACITY | HEAD | EPOCH_US | PID | ROLE |
//! slots:  | stamp | payload word 0..=14 |  × capacity          (128 B per slot)
//! ```
//!
//! `HEAD` is the claim cursor: the sequence number of the *next* record
//! to be written, monotone over the whole life of the ring (it never
//! wraps; slot index is `seq & (capacity-1)`). Each slot carries a
//! stamp encoding what the slot holds:
//!
//! ```text
//! 0                  never written
//! 2·seq + 1          record `seq` is being written (torn if seen at rest)
//! 2·seq + 2          record `seq` is committed
//! ```
//!
//! ## Memory ordering
//!
//! The write/read protocol is the seqlock recipe used by
//! `crossbeam-utils`' `SeqLock` (per Boehm, *Can seqlocks get along
//! with programming models?*), applied per slot:
//!
//! * **Writer**: claim a seq (`HEAD.fetch_add`), mark the slot's stamp
//!   *writing* with a `swap(Acquire)` (the Acquire pairs with the
//!   previous committer's Release on the same slot, ordering this
//!   overwrite after the previous record's publication), issue a
//!   `fence(Release)` so the *writing* mark is ordered before the
//!   payload stores, write the payload words (`Relaxed` — they are
//!   atomics, so concurrent readers race safely), then publish with
//!   `stamp.store(committed, Release)`.
//! * **Reader**: load the stamp with `Acquire` (pairs with the
//!   writer's committing Release, making the payload words it covers
//!   visible), copy the payload (`Relaxed` loads), then
//!   `fence(Acquire)` and re-load the stamp `Relaxed`: if it moved,
//!   the copy may interleave two records and is discarded. The fence
//!   orders the payload loads before the validating re-load, so a
//!   writer that raced the copy cannot have its stamp update hidden.
//!
//! `HEAD` itself is *not* the publication point — slot stamps are.
//! Readers use `HEAD` only to bound their scan, and a stale value
//! merely means a reader looks at slightly old state; hence the
//! claim `fetch_add` can be (and is) `Relaxed`, with the reasoning
//! annotated inline.
//!
//! ## Writers and readers
//!
//! The ring is single-writer *per record*: each `push` claims its own
//! sequence number, so multiple threads may share one [`Ring`] handle
//! (the dispatcher's event producers do). The pathological case — two
//! in-flight pushes a full `capacity` apart landing on the same slot —
//! would need `capacity` pushes to complete in the nanoseconds one
//! push is in flight; with the enforced minimum capacity of 1024 this
//! is unreachable in practice, and a reader only ever sees a stamp
//! mismatch (discarding the slot), never a phantom record.
//!
//! Readers never write shared state: a [`RingReader`] owns its cursor
//! and lap/torn counters, so any number of them chase the writer
//! without a lock, a CAS, or any cross-core store at all.

use crate::region::Region;
use std::io;
use std::path::Path;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

/// `"JETSRNG1"` little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"JETSRNG1");
/// Bump when the slot layout changes.
const VERSION: u64 = 1;

/// Header size, in words.
const HDR_WORDS: usize = 8;
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_SLOT_BYTES: usize = 2;
const W_CAPACITY: usize = 3;
const W_HEAD: usize = 4;
const W_EPOCH_US: usize = 5;
const W_PID: usize = 6;
const W_ROLE: usize = 7;

/// Words per slot (1 stamp + 15 payload words).
pub const SLOT_WORDS: usize = 16;
/// Bytes per slot.
pub const SLOT_BYTES: usize = SLOT_WORDS * 8;
/// Payload bytes per record; pushes larger than this are refused.
pub const PAYLOAD_BYTES: usize = SLOT_BYTES - 8;
const PAYLOAD_WORDS: usize = SLOT_WORDS - 1;

/// Smallest accepted capacity; see the module docs on same-slot races.
pub const MIN_CAPACITY: usize = 1024;

/// Which process wrote a flight-recorder file — the *lane* a merged
/// cross-process trace sorts its records into. Stamped into header
/// word 7 (previously reserved: legacy files read back as
/// [`WriterRole::Unknown`], so the version number does not change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriterRole {
    /// Legacy file (header word 7 zero) or an in-memory ring.
    Unknown,
    /// The central dispatcher.
    Dispatcher,
    /// A relay daemon fronting a block of workers.
    Relay,
    /// A worker agent (pilot job).
    Worker,
}

impl WriterRole {
    /// The on-disk code stamped into header word 7.
    pub fn code(self) -> u64 {
        match self {
            WriterRole::Unknown => 0,
            WriterRole::Dispatcher => 1,
            WriterRole::Relay => 2,
            WriterRole::Worker => 3,
        }
    }

    /// Decode a header word; unknown codes (a newer build's roles)
    /// degrade to [`WriterRole::Unknown`] instead of failing the open.
    pub fn from_code(code: u64) -> WriterRole {
        match code {
            1 => WriterRole::Dispatcher,
            2 => WriterRole::Relay,
            3 => WriterRole::Worker,
            _ => WriterRole::Unknown,
        }
    }

    /// Stable lowercase label (`jets trace` lane names, Perfetto pids).
    pub fn as_str(self) -> &'static str {
        match self {
            WriterRole::Unknown => "unknown",
            WriterRole::Dispatcher => "dispatcher",
            WriterRole::Relay => "relay",
            WriterRole::Worker => "worker",
        }
    }
}

#[inline]
fn stamp_writing(seq: u64) -> u64 {
    2 * seq + 1
}

#[inline]
fn stamp_committed(seq: u64) -> u64 {
    2 * seq + 2
}

/// The shared state under every handle cloned from one ring.
struct Shared {
    region: Region,
    /// Capacity in slots; always a power of two.
    cap: u64,
}

impl Shared {
    #[inline]
    fn slot_word(&self, seq: u64) -> usize {
        HDR_WORDS + ((seq & (self.cap - 1)) as usize) * SLOT_WORDS
    }
}

/// One fixed-size record copied out of the ring.
///
/// The copy is the price of a *validated* read: the payload bytes are
/// only trusted after the stamp re-check proves no writer touched the
/// slot mid-copy, so they must live on the reader's stack, not in the
/// shared memory. 120 bytes, no heap.
#[derive(Clone, Copy)]
pub struct Record {
    /// The record's sequence number (position in the journal).
    pub seq: u64,
    payload: [u8; PAYLOAD_BYTES],
}

impl Record {
    /// The fixed-size payload. Trailing bytes past the logical record
    /// are zero; the producer's codec knows the real length.
    pub fn payload(&self) -> &[u8; PAYLOAD_BYTES] {
        &self.payload
    }
}

/// Outcome of one validated slot read.
enum SlotRead {
    /// Committed and copied intact.
    Ok(Record),
    /// Claimed (or simply not reached) but not committed yet.
    Pending,
    /// Overwritten by a newer record before or during the copy.
    Gone,
}

/// A lock-free ring journal. Cloning shares the same memory; any clone
/// may push (each push claims its own slot) and any clone can mint
/// independent readers.
#[derive(Clone)]
pub struct Ring {
    shared: Arc<Shared>,
}

impl Ring {
    /// An in-process (heap-backed) ring of at least `capacity` slots,
    /// rounded up to a power of two.
    pub fn anon(capacity: usize) -> Ring {
        let cap = capacity.max(MIN_CAPACITY).next_power_of_two();
        let region = Region::anon(HDR_WORDS + cap * SLOT_WORDS);
        let ring = Ring {
            shared: Arc::new(Shared {
                region,
                cap: cap as u64,
            }),
        };
        ring.init_header(cap as u64);
        ring
    }

    /// Create (or re-open) a file-backed ring at `path` with at least
    /// `capacity` slots. Re-opening an existing recorder file keeps its
    /// contents and sequence cursor — a restarted daemon appends where
    /// the crashed one stopped. The capacity of an existing file must
    /// not exceed the requested one.
    pub fn create(path: &Path, capacity: usize) -> io::Result<Ring> {
        Ring::create_with_role(path, capacity, WriterRole::Unknown)
    }

    /// [`Ring::create`] with the writer's process role stamped into the
    /// header, so an offline merge ([`Ring::open_read`] across several
    /// files) can sort each file into its lane without guessing from
    /// file names. Passing [`WriterRole::Unknown`] leaves an existing
    /// file's role untouched.
    pub fn create_with_role(path: &Path, capacity: usize, role: WriterRole) -> io::Result<Ring> {
        let cap = capacity.max(MIN_CAPACITY).next_power_of_two();
        let bytes = (HDR_WORDS + cap * SLOT_WORDS) * 8;
        let region = Region::file(path, bytes)?;
        let shared = Shared {
            region,
            cap: cap as u64,
        };
        let magic = shared.region.word(W_MAGIC).load(Ordering::Acquire);
        if magic == 0 {
            let ring = Ring {
                shared: Arc::new(shared),
            };
            ring.init_header(cap as u64);
            ring.shared
                .region
                .word(W_ROLE)
                .store(role.code(), Ordering::Release);
            return Ok(ring);
        }
        let mut shared = shared;
        validate_header(&shared.region, path)?;
        // An existing (validated) file dictates the live capacity; it
        // can only be ≤ the mapped size (a longer file was rejected by
        // the region layer).
        shared.cap = shared.region.word(W_CAPACITY).load(Ordering::Acquire);
        shared
            .region
            .word(W_PID)
            .store(std::process::id() as u64, Ordering::Release);
        if role != WriterRole::Unknown {
            shared
                .region
                .word(W_ROLE)
                .store(role.code(), Ordering::Release);
        }
        Ok(Ring {
            shared: Arc::new(shared),
        })
    }

    /// Map an existing recorder file read-only for offline replay.
    pub fn open_read(path: &Path) -> io::Result<Ring> {
        let region = Region::file_readonly(path)?;
        validate_header(&region, path)?;
        let cap = region.word(W_CAPACITY).load(Ordering::Acquire);
        let need = HDR_WORDS + (cap as usize) * SLOT_WORDS;
        if region.words() < need {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: header claims {cap} slots but file has {} words",
                    path.display(),
                    region.words()
                ),
            ));
        }
        Ok(Ring {
            shared: Arc::new(Shared { region, cap }),
        })
    }

    fn init_header(&self, cap: u64) {
        let r = &self.shared.region;
        r.word(W_VERSION).store(VERSION, Ordering::Release);
        r.word(W_SLOT_BYTES)
            .store(SLOT_BYTES as u64, Ordering::Release);
        r.word(W_CAPACITY).store(cap, Ordering::Release);
        r.word(W_EPOCH_US).store(unix_micros(), Ordering::Release);
        r.word(W_PID)
            .store(std::process::id() as u64, Ordering::Release);
        // Magic last: a mapping with the magic set has a full header.
        r.word(W_MAGIC).store(MAGIC, Ordering::Release);
    }

    /// Append one record; returns its sequence number. Lock-free and
    /// allocation-free: one `fetch_add`, one stamp swap, sixteen word
    /// stores, one publishing store. Payloads longer than
    /// [`PAYLOAD_BYTES`] are refused with a panic (producer bug, not
    /// data-dependent).
    pub fn push(&self, payload: &[u8]) -> u64 {
        assert!(
            payload.len() <= PAYLOAD_BYTES,
            "ring payload of {} bytes exceeds the {} byte slot",
            payload.len(),
            PAYLOAD_BYTES
        );
        let s = &self.shared;
        debug_assert!(!s.region.readonly(), "push on a read-only (replay) ring");
        let head = s.region.word(W_HEAD);
        // jets-lint: allow(relaxed) HEAD only bounds reader scans; publication is the slot stamp's Release store below
        let seq = head.fetch_add(1, Ordering::Relaxed);
        let base = s.slot_word(seq);
        let stamp = s.region.word(base);
        // Mark the slot torn while we overwrite it. Acquire pairs with
        // the previous committer's Release on this same stamp.
        stamp.swap(stamp_writing(seq), Ordering::Acquire);
        // Order the *writing* mark before the payload stores.
        fence(Ordering::Release);
        let mut i = 0;
        while i < PAYLOAD_WORDS {
            let lo = i * 8;
            let mut w = [0u8; 8];
            if lo < payload.len() {
                let take = (payload.len() - lo).min(8);
                w[..take].copy_from_slice(&payload[lo..lo + take]);
            }
            let cell = s.region.word(base + 1 + i);
            // jets-lint: allow(relaxed) payload words are covered by the stamp's Release/Acquire pair; see module docs
            cell.store(u64::from_le_bytes(w), Ordering::Relaxed);
            i += 1;
        }
        // Publish: everything above happens-before a reader's Acquire
        // load that observes this committed stamp.
        stamp.store(stamp_committed(seq), Ordering::Release);
        seq
    }

    /// Total records ever pushed (the claim cursor). Monotone; survives
    /// re-opening a file-backed ring.
    pub fn seq(&self) -> u64 {
        self.shared.region.word(W_HEAD).load(Ordering::Acquire)
    }

    /// Capacity in slots (always a power of two).
    pub fn capacity(&self) -> u64 {
        self.shared.cap
    }

    /// Wall-clock microseconds (Unix epoch) when the ring was created —
    /// the anchor for interpreting record timestamps offline.
    pub fn epoch_unix_us(&self) -> u64 {
        self.shared.region.word(W_EPOCH_US).load(Ordering::Acquire)
    }

    /// Pid of the most recent writer process (diagnostics only).
    pub fn writer_pid(&self) -> u64 {
        self.shared.region.word(W_PID).load(Ordering::Acquire)
    }

    /// Role of the writer process — the file's lane in a merged
    /// cross-process trace. Legacy files report
    /// [`WriterRole::Unknown`].
    pub fn writer_role(&self) -> WriterRole {
        WriterRole::from_code(self.shared.region.word(W_ROLE).load(Ordering::Acquire))
    }

    /// The sequence number of the oldest record still retained.
    pub fn earliest(&self) -> u64 {
        let head = self.seq();
        head.saturating_sub(self.shared.cap)
    }

    /// A reader positioned at the oldest retained record.
    pub fn reader(&self) -> RingReader {
        self.reader_from(self.earliest())
    }

    /// A reader positioned at `seq` (clamped into the retained window
    /// on first poll). `reader_from(ring.seq())` tails only new records.
    pub fn reader_from(&self, seq: u64) -> RingReader {
        RingReader {
            shared: Arc::clone(&self.shared),
            next: seq,
            lapped: 0,
            torn: 0,
        }
    }

    /// Offline sweep of everything retained, tolerating torn slots (the
    /// crash case): committed records in sequence order, plus a count
    /// of slots lost to in-flight writes. Meant for quiescent rings
    /// (replay of a dead process's file); on a live ring a slot being
    /// written right now counts as torn.
    pub fn replay(&self) -> Replay {
        let head = self.seq();
        let lo = self.earliest();
        let mut records = Vec::with_capacity((head - lo) as usize);
        let mut torn = 0u64;
        for seq in lo..head {
            match self.read_slot(seq) {
                SlotRead::Ok(rec) => records.push(rec),
                SlotRead::Pending | SlotRead::Gone => torn += 1,
            }
        }
        Replay {
            records,
            torn,
            earliest: lo,
            head,
        }
    }

    /// Flush a file-backed ring to disk now (clean-shutdown nicety; a
    /// `MAP_SHARED` mapping survives `kill -9` without this).
    pub fn sync(&self) -> io::Result<()> {
        self.shared.region.sync()
    }

    fn read_slot(&self, seq: u64) -> SlotRead {
        read_slot(&self.shared, seq)
    }
}

fn validate_header(region: &Region, path: &Path) -> io::Result<()> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if region.words() < HDR_WORDS {
        return Err(bad(format!(
            "{}: too short for a ring header",
            path.display()
        )));
    }
    if region.word(W_MAGIC).load(Ordering::Acquire) != MAGIC {
        return Err(bad(format!(
            "{}: not a jets-ring file (bad magic)",
            path.display()
        )));
    }
    let version = region.word(W_VERSION).load(Ordering::Acquire);
    if version != VERSION {
        return Err(bad(format!(
            "{}: ring version {version}, this build reads {VERSION}",
            path.display()
        )));
    }
    let slot = region.word(W_SLOT_BYTES).load(Ordering::Acquire);
    if slot != SLOT_BYTES as u64 {
        return Err(bad(format!(
            "{}: {slot}-byte slots, this build uses {SLOT_BYTES}",
            path.display()
        )));
    }
    let cap = region.word(W_CAPACITY).load(Ordering::Acquire);
    if cap == 0 || !cap.is_power_of_two() {
        return Err(bad(format!(
            "{}: capacity {cap} is not a power of two",
            path.display()
        )));
    }
    Ok(())
}

fn read_slot(shared: &Shared, seq: u64) -> SlotRead {
    let base = shared.slot_word(seq);
    let stamp = shared.region.word(base);
    // Acquire pairs with the writer's committing Release: observing
    // `committed(seq)` makes that record's payload stores visible.
    let s1 = stamp.load(Ordering::Acquire);
    let committed = stamp_committed(seq);
    if s1 != committed {
        return if s1 < committed {
            SlotRead::Pending
        } else {
            SlotRead::Gone
        };
    }
    let mut payload = [0u8; PAYLOAD_BYTES];
    let mut i = 0;
    while i < PAYLOAD_WORDS {
        let cell = shared.region.word(base + 1 + i);
        let w = cell.load(Ordering::Relaxed);
        payload[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        i += 1;
    }
    // Validate: order the payload loads before the re-load, then check
    // no writer moved the stamp while we copied.
    fence(Ordering::Acquire);
    if stamp.load(Ordering::Relaxed) != s1 {
        return SlotRead::Gone;
    }
    SlotRead::Ok(Record { seq, payload })
}

/// Result of an offline [`Ring::replay`] sweep.
pub struct Replay {
    /// Committed records, in sequence order.
    pub records: Vec<Record>,
    /// Slots in the retained window lost to in-flight (torn) writes.
    pub torn: u64,
    /// Oldest sequence number the window could hold.
    pub earliest: u64,
    /// The claim cursor at sweep time (total records ever pushed).
    pub head: u64,
}

/// A lock-free cursor chasing the writer. Each reader owns its position
/// and counters — polling performs no store to shared memory, so any
/// number of readers run without slowing the writer or each other.
pub struct RingReader {
    shared: Arc<Shared>,
    next: u64,
    lapped: u64,
    torn: u64,
}

impl RingReader {
    /// Next committed record, or `None` when caught up (or when the
    /// next record in sequence is still being written — it will be
    /// committed nanoseconds later; poll again).
    ///
    /// A reader that falls more than `capacity` behind is *lapped*:
    /// the cursor jumps forward to the oldest retained record and
    /// [`RingReader::lapped`] grows by the number of records skipped.
    pub fn poll(&mut self) -> Option<Record> {
        loop {
            let head = self.shared.region.word(W_HEAD).load(Ordering::Acquire);
            let lo = head.saturating_sub(self.shared.cap);
            if self.next < lo {
                self.lapped += lo - self.next;
                self.next = lo;
            }
            if self.next >= head {
                return None;
            }
            match read_slot(&self.shared, self.next) {
                SlotRead::Ok(rec) => {
                    self.next += 1;
                    return Some(rec);
                }
                SlotRead::Pending => return None,
                SlotRead::Gone => {
                    // Overwritten between the head load and the copy:
                    // we were lapped mid-read. Count it and move on.
                    self.torn += 1;
                    self.lapped += 1;
                    self.next += 1;
                }
            }
        }
    }

    /// The sequence number the next successful poll will return.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Records this reader skipped because the writer overwrote them
    /// before they were read.
    pub fn lapped(&self) -> u64 {
        self.lapped
    }

    /// Of the lapped records, those lost mid-copy (stamp moved during
    /// the read) rather than before it.
    pub fn torn(&self) -> u64 {
        self.torn
    }
}

fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_read_round_trips() {
        let ring = Ring::anon(1024);
        assert_eq!(ring.push(b"alpha"), 0);
        assert_eq!(ring.push(b"beta"), 1);
        let mut r = ring.reader();
        let a = r.poll().expect("first record");
        assert_eq!(a.seq, 0);
        assert_eq!(&a.payload()[..5], b"alpha");
        assert_eq!(&a.payload()[5..8], &[0, 0, 0]);
        let b = r.poll().expect("second record");
        assert_eq!(b.seq, 1);
        assert_eq!(&b.payload()[..4], b"beta");
        assert!(r.poll().is_none());
        assert_eq!(r.lapped(), 0);
    }

    #[test]
    fn capacity_rounds_up_and_has_a_floor() {
        assert_eq!(Ring::anon(1).capacity(), MIN_CAPACITY as u64);
        assert_eq!(Ring::anon(1500).capacity(), 2048);
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_laps() {
        let ring = Ring::anon(1024);
        let cap = ring.capacity();
        let total = cap + 300;
        let mut r = ring.reader(); // positioned at 0, then left behind
        for i in 0..total {
            ring.push(&i.to_le_bytes());
        }
        assert_eq!(ring.seq(), total);
        assert_eq!(ring.earliest(), 300);
        let first = r.poll().expect("retained record");
        assert_eq!(first.seq, 300, "oldest retained after one lap");
        assert_eq!(r.lapped(), 300, "everything before it was overwritten");
        let mut seen = 1u64;
        let mut last = first.seq;
        while let Some(rec) = r.poll() {
            assert_eq!(rec.seq, last + 1, "strictly sequential");
            last = rec.seq;
            seen += 1;
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&rec.payload()[..8]);
            assert_eq!(u64::from_le_bytes(bytes), rec.seq, "payload matches seq");
        }
        assert_eq!(seen, cap, "a full window was readable");
        assert_eq!(seen + r.lapped(), total);
    }

    #[test]
    fn tail_reader_sees_only_new_records() {
        let ring = Ring::anon(1024);
        ring.push(b"old");
        let mut tail = ring.reader_from(ring.seq());
        assert!(tail.poll().is_none());
        ring.push(b"new");
        let rec = tail.poll().expect("new record");
        assert_eq!(&rec.payload()[..3], b"new");
        assert_eq!(rec.seq, 1);
    }

    #[test]
    fn replay_matches_reader_view() {
        let ring = Ring::anon(1024);
        for i in 0u64..50 {
            ring.push(&i.to_le_bytes());
        }
        let replay = ring.replay();
        assert_eq!(replay.records.len(), 50);
        assert_eq!(replay.torn, 0);
        assert_eq!(replay.head, 50);
        assert_eq!(replay.earliest, 0);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
        }
    }

    #[test]
    fn oversized_payload_panics() {
        let ring = Ring::anon(1024);
        let too_big = [0u8; PAYLOAD_BYTES + 1];
        assert!(std::panic::catch_unwind(|| ring.push(&too_big)).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn file_backed_ring_survives_reopen() {
        let path =
            std::env::temp_dir().join(format!("jets-ring-reopen-{}.ring", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let ring = Ring::create(&path, 1024).expect("create");
            for i in 0u64..10 {
                ring.push(&i.to_le_bytes());
            }
        } // dropped: unmapped, NOT flushed explicitly
        {
            let ring = Ring::create(&path, 1024).expect("reopen");
            assert_eq!(ring.seq(), 10, "claim cursor persisted");
            assert_eq!(ring.push(b"more"), 10, "appends continue the sequence");
        }
        let replay = Ring::open_read(&path).expect("open_read").replay();
        assert_eq!(replay.records.len(), 11);
        assert_eq!(replay.torn, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn writer_role_round_trips_and_survives_reopen() {
        let path = std::env::temp_dir().join(format!("jets-ring-role-{}.ring", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let ring = Ring::create_with_role(&path, 1024, WriterRole::Relay).expect("create");
            assert_eq!(ring.writer_role(), WriterRole::Relay);
            ring.push(b"laned");
        }
        {
            // A role-less reopen (the legacy entry point) keeps the lane.
            let ring = Ring::create(&path, 1024).expect("reopen");
            assert_eq!(ring.writer_role(), WriterRole::Relay);
        }
        let reader = Ring::open_read(&path).expect("open_read");
        assert_eq!(reader.writer_role(), WriterRole::Relay);
        assert_eq!(reader.writer_role().as_str(), "relay");
        let _ = std::fs::remove_file(&path);

        // Legacy files (word 7 zero) and future codes degrade cleanly.
        assert_eq!(WriterRole::from_code(0), WriterRole::Unknown);
        assert_eq!(WriterRole::from_code(99), WriterRole::Unknown);
        for role in [
            WriterRole::Unknown,
            WriterRole::Dispatcher,
            WriterRole::Relay,
            WriterRole::Worker,
        ] {
            assert_eq!(WriterRole::from_code(role.code()), role);
        }
    }

    #[cfg(unix)]
    #[test]
    fn open_read_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("jets-ring-bad-{}.ring", std::process::id()));
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let err = Ring::open_read(&path)
            .err()
            .expect("garbage must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn many_readers_never_stall_the_writer() {
        // The hammer shape the EventLog satellite asks for: readers
        // polling flat-out must not slow or block pushes. The writer
        // runs a fixed record count to completion while readers chase;
        // the assertion is completion plus exact accounting.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;
        let ring = Ring::anon(4096);
        let stop = StdArc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let mut r = ring.reader();
            let stop = StdArc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut last: Option<u64> = None;
                while !stop.load(Ordering::Acquire) {
                    while let Some(rec) = r.poll() {
                        if let Some(prev) = last {
                            assert!(rec.seq > prev, "reader went backwards");
                        }
                        last = Some(rec.seq);
                        seen += 1;
                    }
                }
                while let Some(rec) = r.poll() {
                    if let Some(prev) = last {
                        assert!(rec.seq > prev);
                    }
                    last = Some(rec.seq);
                    seen += 1;
                }
                (seen, r.lapped())
            }));
        }
        const TOTAL: u64 = 200_000;
        for i in 0..TOTAL {
            ring.push(&i.to_le_bytes());
        }
        stop.store(true, Ordering::Release);
        for h in readers {
            let (seen, lapped) = h.join().expect("reader thread");
            assert_eq!(
                seen + lapped,
                TOTAL,
                "every record either read or accounted as lapped"
            );
        }
        assert_eq!(ring.seq(), TOTAL);
    }
}
