//! # jets-ring — the JETS flight recorder
//!
//! A fixed-capacity, lock-free, optionally `mmap`-backed ring journal
//! for high-rate event streams. This is the storage engine under
//! `jets_core::EventLog`: every dispatcher/relay/worker state
//! transition becomes one 128-byte slot write — no `Mutex`, no heap
//! allocation, no growth — and every consumer (`jets top`, `jets
//! events --stats`, the Prometheus registry) is an independent cursor
//! that chases the writer without ever blocking it.
//!
//! Two backings, one protocol:
//!
//! * [`Ring::anon`] — heap-backed, in-process. The default for
//!   `EventLog::new()`.
//! * [`Ring::create`] — a `MAP_SHARED` file mapping
//!   (`--flight-recorder FILE`). The kernel owns the dirty pages, so
//!   the journal survives `kill -9` and [`Ring::open_read`] +
//!   [`Ring::replay`] reconstruct the final seconds offline
//!   (`jets flight dump FILE`).
//!
//! The ordering discipline (per-slot seqlock stamps, Release-publish /
//! Acquire-observe, validated copies) is documented where it lives, in
//! [`ring`]. Records are opaque 120-byte payloads here; the event
//! codec lives with `EventKind` in jets-core.
//!
//! Zero dependencies, `std` only — like jets-obs, jets-lint, and
//! jets-reactor, so the crate's tests and the `ringbench` measurement
//! binary run in the offline stub workspace.

mod region;
mod ring;
mod sys;

pub use ring::{
    Record, Replay, Ring, RingReader, WriterRole, MIN_CAPACITY, PAYLOAD_BYTES, SLOT_BYTES,
    SLOT_WORDS,
};
