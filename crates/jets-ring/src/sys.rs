//! Hand-declared `mmap` bindings for the file-backed ring.
//!
//! `std` already links the platform C library, so the three calls the
//! flight recorder needs are one `extern "C"` block away — no `libc`
//! crate, keeping this crate zero-dependency like jets-obs, jets-lint,
//! and jets-reactor (whose `sys.rs` set the precedent). Constants are
//! the shared Linux/BSD values except where noted.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
}

/// `PROT_READ`: pages may be read.
const PROT_READ: c_int = 1;
/// `PROT_WRITE`: pages may be written.
const PROT_WRITE: c_int = 2;
/// `MAP_SHARED`: writes land in the page cache and reach the file —
/// this is what makes the recorder survive `kill -9` (the kernel owns
/// the dirty pages, not the process).
const MAP_SHARED: c_int = 1;

/// `MS_SYNC` diverges between Linux and the BSD family.
#[cfg(target_os = "linux")]
const MS_SYNC: c_int = 4;
#[cfg(not(target_os = "linux"))]
const MS_SYNC: c_int = 0x0010;

/// Map `len` bytes of `fd` shared, read-write (`writable`) or read-only.
pub fn map_shared(fd: RawFd, len: usize, writable: bool) -> io::Result<*mut u8> {
    let prot = if writable {
        PROT_READ | PROT_WRITE
    } else {
        PROT_READ
    };
    let addr = unsafe { mmap(std::ptr::null_mut(), len, prot, MAP_SHARED, fd, 0) };
    if addr as isize == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(addr as *mut u8)
}

/// Unmap a region mapped by [`map_shared`]; teardown path, errors are
/// ignored (there is nothing left to do about one).
pub fn unmap(addr: *mut u8, len: usize) {
    unsafe {
        munmap(addr as *mut c_void, len);
    }
}

/// Synchronously flush a mapped region to its file. Not needed for
/// crash durability (`MAP_SHARED` dirty pages survive process death);
/// offered for clean-shutdown paths that want the bytes on disk *now*.
pub fn sync(addr: *mut u8, len: usize) -> io::Result<()> {
    if unsafe { msync(addr as *mut c_void, len, MS_SYNC) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}
