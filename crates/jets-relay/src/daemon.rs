//! The relay daemon: one upstream dispatcher connection fronting a
//! block of downstream workers.
//!
//! ## Thread anatomy
//!
//! * **reactor event loop** — every member connection is multiplexed
//!   onto one `jets-reactor` event loop: nonblocking reads drive the
//!   [`MemberConn`] state machine, writes drain bounded per-member
//!   outboxes. The worker-facing thread bill is O(1) in block size —
//!   the old design spent a reader thread plus a writer thread (and an
//!   unbounded channel) per member.
//! * **upstream pump** — owns the dispatcher connection: connects (with
//!   the PR 2 reconnect/backoff machinery), says `RelayHello`,
//!   re-registers every member, then drains the upstream frame queue.
//!   The queue doubles as the outage buffer: frames enqueued while the
//!   dispatcher is away are replayed into the next session. It is
//!   bounded ([`RelayConfig::upqueue_limit`]) with a drop-oldest
//!   overflow policy — see [`crate::upqueue`].
//! * **upstream reader** — one per session; routes `RelayRegistered`
//!   acks into the local↔global tables and unwraps routed
//!   `RelayAssign`/`RelayCancel` envelopes to the addressed member.
//! * **liveness ticker** — every `liveness_flush`, queues a `Flush`
//!   frame; the pump turns it into one `BatchedHeartbeat` covering all
//!   recently-heard members.
//!
//! ## Locking
//!
//! One mutex guards the member tables. Member heartbeats do **not**
//! take it — each member's last-heard clock is a relay-local
//! `AtomicU64`, mirroring the dispatcher's lock-free liveness path — so
//! a heartbeat storm from the block costs the relay N relaxed stores
//! and the dispatcher one frame per flush period.

use crate::metrics::RelayMetrics;
use crate::upqueue::UpQueue;
use jets_core::events::{EventKind, EventLog, SpanKind, WriterRole};
use jets_core::protocol::{
    decode_msg, encode_msg_buf, DispatcherMsg, MsgReader, MsgWriter, WorkerMsg, MAX_FRAME_BYTES,
};
use jets_core::spec::{JobId, TaskId, WorkerId};
use jets_obs::MetricsServer;
use jets_reactor::{CloseReason, ConnHandler, Flow, Outbox, Reactor, ReactorConfig, ReactorStats};
use jets_worker::ReconnectPolicy;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Stack size for relay service threads.
const CONN_STACK: usize = 192 * 1024;

/// Tuning knobs for one relay daemon.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Worker-facing listen address; use port 0 for an ephemeral port.
    pub listen_addr: String,
    /// The dispatcher to front for.
    pub dispatcher_addr: String,
    /// Relay name (diagnostics; travels in `RelayHello`).
    pub name: String,
    /// Location label reported upstream for the relay itself.
    pub location: String,
    /// Period of the batched liveness frame. Every flush, one
    /// `BatchedHeartbeat` vouches for all recently-heard members.
    pub liveness_flush: Duration,
    /// A member not heard from for longer than this drops out of the
    /// batched frames (the dispatcher's hang detection then applies to
    /// it exactly as to a silent direct worker).
    pub worker_stale_after: Duration,
    /// Reconnect-with-backoff policy for the upstream connection — the
    /// same machinery a worker agent uses toward the dispatcher. When
    /// attempts are exhausted the relay gives up and severs its block.
    pub reconnect: ReconnectPolicy,
    /// High-water mark, in frames, of the bounded upstream replay
    /// queue. At the mark the oldest frame is dropped to admit the
    /// newest, so a long partition under a busy block caps relay memory
    /// instead of growing it without bound.
    pub upqueue_limit: usize,
    /// Path of the mmap-backed flight-recorder file for the relay's own
    /// event log (drop events, member churn). When set, events survive
    /// `kill -9` and replay with `jets flight dump`. `None` keeps the
    /// ring in anonymous memory.
    pub flight_recorder: Option<std::path::PathBuf>,
}

impl RelayConfig {
    /// A relay for `dispatcher_addr` on an ephemeral local port.
    pub fn new(dispatcher_addr: impl Into<String>, name: impl Into<String>) -> Self {
        RelayConfig {
            listen_addr: "127.0.0.1:0".to_string(),
            dispatcher_addr: dispatcher_addr.into(),
            name: name.into(),
            location: "relay".to_string(),
            liveness_flush: Duration::from_millis(100),
            worker_stale_after: Duration::from_secs(1),
            reconnect: ReconnectPolicy::default(),
            upqueue_limit: 65_536,
            flight_recorder: None,
        }
    }

    /// Builder-style liveness flush period.
    pub fn with_liveness_flush(mut self, period: Duration) -> Self {
        self.liveness_flush = period;
        self
    }

    /// Builder-style upstream reconnect policy.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Builder-style replay-queue high-water mark.
    pub fn with_upqueue_limit(mut self, limit: usize) -> Self {
        self.upqueue_limit = limit;
        self
    }

    /// Builder-style flight-recorder path (the relay's lane in a merged
    /// `jets trace`).
    pub fn with_flight_recorder(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.flight_recorder = Some(path.into());
        self
    }
}

/// Counters a test or operator can read off a running relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayStats {
    /// Currently connected members.
    pub members: usize,
    /// `Cancel`s fanned out locally (same-relay gang teardown) without
    /// an upstream round-trip.
    pub local_cancels: u64,
    /// Batched liveness frames sent upstream.
    pub batched_frames: u64,
    /// Upstream sessions established (>1 means the relay survived a
    /// dispatcher reconnect).
    pub upstream_sessions: u64,
}

/// A worker's task result held for replay (at most one per member: a
/// worker reports one `Done` per assignment before requesting again).
/// The trailing `u64` is the job's trace id, carried so the replayed
/// frame still correlates with the submission's span tree.
type DoneFrame = (TaskId, i32, u64, Option<String>, u64);

/// One downstream worker, as the relay sees it.
struct Member {
    name: String,
    cores: u32,
    location: String,
    /// Dispatcher-assigned id under the *current* upstream session;
    /// `None` until the `RelayRegistered` ack lands.
    global: Option<WorkerId>,
    /// The member's bounded reactor outbox: frames queue here and the
    /// event loop drains them to the socket. Never blocks.
    out: Arc<Outbox>,
    /// Socket clone for severing ([`Relay::kill`]).
    sock: Option<TcpStream>,
    /// Milliseconds since the relay epoch at which the member was last
    /// heard (lock-free; the member's reader thread stores, the flush
    /// path loads).
    last_heard: Arc<AtomicU64>,
    /// The task/job the member is executing, for local gang fan-out.
    inflight: Option<(TaskId, JobId)>,
    /// True between the member's `Request` and its next `Assign`; used
    /// to re-issue the request after an upstream re-registration.
    wants_work: bool,
    /// A `Done` that could not be forwarded (produced while the
    /// dispatcher was away); replayed right after the next ack.
    pending_done: Option<DoneFrame>,
}

/// Member tables, guarded by one mutex.
#[derive(Default)]
struct State {
    /// Members by relay-local id.
    members: HashMap<u64, Member>,
    /// Reverse routing table: current-session global id → local id.
    by_global: HashMap<WorkerId, u64>,
    /// Reusable wire-encode buffer for frames sent under this lock.
    enc: Vec<u8>,
}

/// Frames queued for the upstream pump. The queue is bounded
/// (drop-oldest at [`RelayConfig::upqueue_limit`]) and survives session
/// loss — it *is* the reconnect replay buffer.
enum UpFrame {
    /// Register member `local` (new member, or replay after reconnect).
    Register(u64),
    /// Member `local` wants work.
    Request(u64),
    /// Member `local` finished a task.
    Done {
        /// The member.
        local: u64,
        /// Which task.
        task_id: TaskId,
        /// Its exit code.
        exit_code: i32,
        /// Wall time in milliseconds.
        wall_ms: u64,
        /// Captured output tail.
        output: Option<String>,
        /// Trace id minted at submission (0 = untraced).
        trace: u64,
    },
    /// Claim member `local`'s in-flight task upstream
    /// ([`WorkerMsg::RelayMemberState`]) so a restarted dispatcher
    /// re-adopts the gang during its reconciliation window instead of
    /// relaunching it.
    MemberState(u64),
    /// The worker with this *global* id is gone.
    Gone(WorkerId),
    /// Emit a batched liveness frame now.
    Flush,
}

struct Inner {
    config: RelayConfig,
    epoch: Instant,
    shutdown: AtomicBool,
    state: Mutex<State>,
    /// Bounded upstream frame queue — the replay buffer across
    /// dispatcher outages (see [`crate::upqueue`]).
    up_q: Arc<UpQueue<UpFrame>>,
    next_local: AtomicU64,
    /// Socket of the current upstream session, for severing.
    upstream: Mutex<Option<TcpStream>>,
    local_cancels: AtomicU64,
    batched_frames: AtomicU64,
    upstream_sessions: AtomicU64,
    /// Scrapeable mirror of the stats atomics (see [`RelayMetrics`]).
    metrics: Arc<RelayMetrics>,
    /// The `/metrics` responder, when one was started.
    metrics_server: Mutex<Option<MetricsServer>>,
    /// Operational events (queue overflow, …) — same log shape the
    /// dispatcher keeps, dumped by `jets events`.
    events: EventLog,
    /// This relay's dispatcher-assigned id under the current upstream
    /// session (0 until the first hello ack); stamps event records.
    relay_global: AtomicU64,
    /// `now_ms` of the last `UpQueueDropped` event (`u64::MAX` = never),
    /// rate-limiting overflow reporting to one event per second.
    last_drop_event_ms: AtomicU64,
}

fn now_ms(inner: &Inner) -> u64 {
    inner.epoch.elapsed().as_millis() as u64
}

/// Queue one frame for the upstream pump, surfacing queue depth and
/// drop-oldest evictions on the metric surface. Never blocks.
fn queue_up(inner: &Inner, frame: UpFrame) {
    if inner.up_q.push(frame) {
        inner.metrics.upqueue_dropped_total.inc();
        note_upqueue_drop(inner);
    }
    inner.metrics.upqueue_depth.set(inner.up_q.len() as i64);
}

/// Surface a drop-oldest eviction on the event log, at most once per
/// second: a sustained overflow must not flood the log it reports on.
/// The event carries the *cumulative* drop counter, so consecutive
/// events show the loss rate across the gap.
fn note_upqueue_drop(inner: &Inner) {
    const MIN_GAP_MS: u64 = 1_000;
    let now = now_ms(inner);
    let last = inner.last_drop_event_ms.load(Ordering::Relaxed);
    if last != u64::MAX && now.saturating_sub(last) < MIN_GAP_MS {
        return;
    }
    // One winner per gap: a losing racer just skips its event.
    if inner
        .last_drop_event_ms
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        inner.events.record(EventKind::UpQueueDropped {
            relay: inner.relay_global.load(Ordering::Acquire),
            dropped: inner.metrics.upqueue_dropped_total.get(),
        });
    }
}

/// Encode `msg` and queue it on a member's bounded outbox. Never
/// blocks, so it is safe under the state lock; `false` means the outbox
/// is closed or overflowed (the reactor is disconnecting the member,
/// and the close path unwinds its state).
fn send_member(m: &Member, enc: &mut Vec<u8>, msg: &DispatcherMsg) -> bool {
    encode_msg_buf(msg, enc).is_ok() && m.out.send(enc)
}

/// A running relay daemon.
///
/// Dropping the relay kills it abruptly (socket severance), the same
/// fault the chaos harness injects; call [`Relay::shutdown`] first for
/// an orderly stop.
pub struct Relay {
    inner: Arc<Inner>,
    addr: SocketAddr,
    /// Member-facing event loops. Declared last so the reactor drops
    /// (and flushes queued frames) after everything else is torn down.
    reactor: Reactor,
}

impl Relay {
    /// Bind the worker-facing listener and start all service threads.
    /// Returns immediately; the upstream connection is established (and
    /// re-established) in the background.
    pub fn start(config: RelayConfig) -> io::Result<Relay> {
        let listener = TcpListener::bind(&config.listen_addr)?;
        let addr = listener.local_addr()?;
        // One event loop multiplexes the whole block: a relay fronts a
        // machine-room's worth of workers, not a cluster's.
        let reactor = Reactor::start(ReactorConfig {
            event_loops: 1,
            max_frame: MAX_FRAME_BYTES,
            thread_name: "relay-loop".to_string(),
            thread_stack: CONN_STACK,
            ..ReactorConfig::default()
        })?;
        let up_q = Arc::new(UpQueue::new(config.upqueue_limit));
        let events = match &config.flight_recorder {
            Some(path) => EventLog::file_backed_with_role(
                path,
                jets_core::events::DEFAULT_EVENT_CAPACITY,
                WriterRole::Relay,
            )?,
            None => EventLog::new(),
        };
        let inner = Arc::new(Inner {
            config,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            state: Mutex::new(State::default()),
            up_q,
            next_local: AtomicU64::new(0),
            upstream: Mutex::new(None),
            local_cancels: AtomicU64::new(0),
            batched_frames: AtomicU64::new(0),
            upstream_sessions: AtomicU64::new(0),
            metrics: Arc::new(RelayMetrics::new()),
            metrics_server: Mutex::new(None),
            events,
            relay_global: AtomicU64::new(0),
            last_drop_event_ms: AtomicU64::new(u64::MAX),
        });
        let factory_inner = Arc::clone(&inner);
        reactor.listen(
            listener,
            Arc::new(move |stream: &TcpStream, _peer: SocketAddr| {
                if factory_inner.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                Some(Box::new(MemberConn {
                    inner: Arc::clone(&factory_inner),
                    outbox: None,
                    // Clone taken before the reactor owns the stream, so
                    // kill()/give_up() can sever the member later.
                    sock: stream.try_clone().ok(),
                    state: MemberConnState::Handshake,
                }) as Box<dyn ConnHandler>)
            }),
        )?;
        let tick_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name("relay-tick".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || liveness_ticker(tick_inner))?;
        let pump_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name("relay-pump".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || upstream_pump(pump_inner))?;
        Ok(Relay {
            inner,
            addr,
            reactor,
        })
    }

    /// Address workers should connect to (in place of a dispatcher's).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected members.
    pub fn member_count(&self) -> usize {
        self.inner.state.lock().members.len()
    }

    /// True while an upstream session is established.
    pub fn is_connected(&self) -> bool {
        self.inner.upstream.lock().is_some()
    }

    /// True once the relay has stopped — dispatcher-ordered shutdown,
    /// [`Relay::kill`]/[`Relay::shutdown`], or reconnect exhaustion.
    pub fn is_stopped(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> RelayStats {
        RelayStats {
            members: self.member_count(),
            local_cancels: self.inner.local_cancels.load(Ordering::Relaxed),
            batched_frames: self.inner.batched_frames.load(Ordering::Relaxed),
            upstream_sessions: self.inner.upstream_sessions.load(Ordering::Relaxed),
        }
    }

    /// This relay's live metric handles.
    pub fn metrics(&self) -> Arc<RelayMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// This relay's operational event log (shared handle). `jets events`
    /// renders the same record shape the dispatcher's log uses, so relay
    /// and dispatcher events can be merged offline.
    pub fn events(&self) -> EventLog {
        self.inner.events.clone()
    }

    /// Live counters from the member-facing reactor (connections,
    /// wakeups, outbox high-water, slow-consumer disconnects).
    pub fn reactor_stats(&self) -> Arc<ReactorStats> {
        self.reactor.stats()
    }

    /// Serve `GET /metrics` (Prometheus text) and `GET /healthz` on
    /// `addr`; returns the bound address (use port 0 for ephemeral).
    /// The responder stops when the relay is dropped.
    pub fn serve_metrics(&self, addr: &str) -> io::Result<SocketAddr> {
        let server = jets_obs::serve_metrics(addr, self.inner.metrics.registry())?;
        let local = server.addr();
        *self.inner.metrics_server.lock() = Some(server);
        Ok(local)
    }

    /// Sever the upstream connection *without* stopping the relay: the
    /// pump reconnects with backoff and re-registers the block. This is
    /// the dispatcher-outage fault-injection primitive (the relay-side
    /// analogue of `Worker::disconnect`).
    pub fn partition_upstream(&self) {
        if let Some(sock) = self.inner.upstream.lock().take() {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }

    /// Kill the relay abruptly: sever the upstream connection and every
    /// member socket, no goodbyes. This is the chaos harness's
    /// relay-death primitive — workers see EOF and fall back on their
    /// own reconnect policies; the dispatcher sees EOF and declares the
    /// whole block down.
    pub fn kill(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(sock) = self.inner.upstream.lock().take() {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let st = self.inner.state.lock();
        for m in st.members.values() {
            if let Some(sock) = &m.sock {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
    }

    /// Orderly stop: forward `Shutdown` to every member (so their
    /// agents exit cleanly), then sever upstream and stop accepting.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let mut st = self.inner.state.lock();
            let State { members, enc, .. } = &mut *st;
            for m in members.values() {
                send_member(m, enc, &DispatcherMsg::Shutdown);
            }
        }
        if let Some(sock) = self.inner.upstream.lock().take() {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.kill();
    }
}

fn liveness_ticker(inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        thread::sleep(inner.config.liveness_flush);
        queue_up(&inner, UpFrame::Flush);
    }
}

/// One member connection as a reactor state machine; speaks the
/// ordinary worker protocol — a worker cannot tell a relay from a
/// dispatcher. Replaces the old per-member reader + writer threads.
struct MemberConn {
    inner: Arc<Inner>,
    /// The reactor-managed write side, captured in `on_open`.
    outbox: Option<Arc<Outbox>>,
    /// Socket clone taken at accept time; moves into the member table
    /// at registration so [`Relay::kill`] can sever it.
    sock: Option<TcpStream>,
    state: MemberConnState,
}

enum MemberConnState {
    /// Waiting for the first frame, which must be `Register`.
    Handshake,
    /// Registered as member `local`.
    Registered {
        /// The member's relay-local id.
        local: u64,
        /// The member's last-heard clock, shared with the member table
        /// (lock-free; the event loop stores, the flush path loads).
        last_heard: Arc<AtomicU64>,
    },
}

impl ConnHandler for MemberConn {
    fn on_open(&mut self, outbox: &Arc<Outbox>) {
        self.outbox = Some(Arc::clone(outbox));
    }

    fn on_frame(&mut self, frame: &[u8]) -> Flow {
        // An unparseable frame is a protocol violation; sever. The
        // close path unwinds whatever state the member had.
        let Ok(msg) = decode_msg::<WorkerMsg>(frame) else {
            return Flow::Close;
        };
        if matches!(self.state, MemberConnState::Handshake) {
            self.on_handshake(msg)
        } else {
            self.on_member(msg)
        }
    }

    fn on_close(&mut self, _reason: CloseReason) {
        if let MemberConnState::Registered { local, .. } =
            std::mem::replace(&mut self.state, MemberConnState::Handshake)
        {
            member_down(&self.inner, local);
        }
        // A connection that never finished its handshake registered no
        // state; nothing to unwind.
    }
}

impl MemberConn {
    /// Handshake: the first message must be `Register` (relays do not
    /// chain). Anything else is a protocol violation with no member
    /// state yet to unwind — drop the connection.
    fn on_handshake(&mut self, msg: WorkerMsg) -> Flow {
        let (name, cores, location) = match msg {
            WorkerMsg::Register {
                name,
                cores,
                location,
            } => (name, cores, location),
            WorkerMsg::Request
            | WorkerMsg::Done { .. }
            | WorkerMsg::Heartbeat
            | WorkerMsg::Goodbye
            | WorkerMsg::SessionState { .. }
            | WorkerMsg::RelayHello { .. }
            | WorkerMsg::RelayRegister { .. }
            | WorkerMsg::RelayRequest { .. }
            | WorkerMsg::RelayDone { .. }
            | WorkerMsg::BatchedHeartbeat { .. }
            | WorkerMsg::RelayWorkerGone { .. }
            | WorkerMsg::RelayMemberState { .. } => return Flow::Close,
        };
        let Some(outbox) = &self.outbox else {
            return Flow::Close;
        };
        let local = self.inner.next_local.fetch_add(1, Ordering::Relaxed);
        let last_heard = Arc::new(AtomicU64::new(now_ms(&self.inner)));
        {
            let mut st = self.inner.state.lock();
            st.members.insert(
                local,
                Member {
                    name,
                    cores,
                    location,
                    global: None,
                    out: Arc::clone(outbox),
                    sock: self.sock.take(),
                    last_heard: Arc::clone(&last_heard),
                    inflight: None,
                    wants_work: false,
                    pending_done: None,
                },
            );
            self.inner.metrics.members.set(st.members.len() as i64);
        }
        // The worker's Registered ack is sent only once the dispatcher
        // acks the forwarded registration, so a member can never race
        // ahead of its own global id.
        queue_up(&self.inner, UpFrame::Register(local));
        self.state = MemberConnState::Registered { local, last_heard };
        Flow::Continue
    }

    /// One frame from a registered member.
    fn on_member(&self, msg: WorkerMsg) -> Flow {
        let MemberConnState::Registered { local, last_heard } = &self.state else {
            return Flow::Close;
        };
        let local = *local;
        match msg {
            WorkerMsg::Request => {
                // jets-lint: allow(relaxed) liveness timestamp only: the flush filter tolerates staleness; ordering is irrelevant
                last_heard.store(now_ms(&self.inner), Ordering::Relaxed);
                {
                    let mut st = self.inner.state.lock();
                    if let Some(m) = st.members.get_mut(&local) {
                        m.wants_work = true;
                    }
                }
                queue_up(&self.inner, UpFrame::Request(local));
                Flow::Continue
            }
            WorkerMsg::Done {
                task_id,
                exit_code,
                wall_ms,
                output,
                trace,
            } => {
                // jets-lint: allow(relaxed) liveness timestamp only: the flush filter tolerates staleness; ordering is irrelevant
                last_heard.store(now_ms(&self.inner), Ordering::Relaxed);
                {
                    let mut st = self.inner.state.lock();
                    if let Some(m) = st.members.get_mut(&local) {
                        m.inflight = None;
                    }
                }
                queue_up(
                    &self.inner,
                    UpFrame::Done {
                        local,
                        task_id,
                        exit_code,
                        wall_ms,
                        output,
                        trace,
                    },
                );
                Flow::Continue
            }
            // The relay-local liveness hot path: one relaxed store, no
            // lock, no upstream frame — the flush batches it.
            WorkerMsg::Heartbeat => {
                // jets-lint: allow(relaxed) liveness timestamp only: the flush filter tolerates staleness; ordering is irrelevant
                last_heard.store(now_ms(&self.inner), Ordering::Relaxed);
                Flow::Continue
            }
            WorkerMsg::Goodbye => Flow::Close,
            // A member re-registered carrying a task across its own
            // outage: adopt the claim into the table and forward it
            // upstream under the member's current global id. If the
            // registration ack is still in flight, the ack handler
            // forwards the claim instead (it sees the inflight entry).
            WorkerMsg::SessionState { running } => {
                // jets-lint: allow(relaxed) liveness timestamp only: the flush filter tolerates staleness; ordering is irrelevant
                last_heard.store(now_ms(&self.inner), Ordering::Relaxed);
                if let Some((task_id, job_id)) = running {
                    let acked = {
                        let mut st = self.inner.state.lock();
                        match st.members.get_mut(&local) {
                            Some(m) => {
                                m.inflight = Some((task_id, job_id));
                                m.global.is_some()
                            }
                            None => false,
                        }
                    };
                    if acked {
                        queue_up(&self.inner, UpFrame::MemberState(local));
                    }
                }
                Flow::Continue
            }
            // Relay-scoped frames (or a second Register) on a member
            // connection are protocol violations; sever.
            WorkerMsg::Register { .. }
            | WorkerMsg::RelayHello { .. }
            | WorkerMsg::RelayRegister { .. }
            | WorkerMsg::RelayRequest { .. }
            | WorkerMsg::RelayDone { .. }
            | WorkerMsg::BatchedHeartbeat { .. }
            | WorkerMsg::RelayWorkerGone { .. }
            | WorkerMsg::RelayMemberState { .. } => Flow::Close,
        }
    }
}

/// A member's connection dropped. Remove it, fan gang cancellation out
/// to same-job members locally (no dispatcher round-trip), and tell the
/// dispatcher the worker is gone.
fn member_down(inner: &Inner, local: u64) {
    let (gone_global, cancels) = {
        let mut st = inner.state.lock();
        let State {
            members,
            by_global,
            enc,
        } = &mut *st;
        let Some(m) = members.remove(&local) else {
            return;
        };
        if let Some(g) = m.global {
            by_global.remove(&g);
        }
        let mut cancels = 0u64;
        if let Some((_, job)) = m.inflight {
            // Local gang fan-out: a worker death inside this relay
            // reaches same-relay survivors immediately; the dispatcher's
            // own RelayCancel for them arrives later and is ignored as a
            // duplicate by the worker.
            for sib in members.values() {
                if let Some((sib_task, sib_job)) = sib.inflight {
                    if sib_job == job {
                        send_member(sib, enc, &DispatcherMsg::Cancel { task_id: sib_task });
                        cancels += 1;
                    }
                }
            }
        }
        inner.metrics.members.set(members.len() as i64);
        (m.global, cancels)
    };
    inner.local_cancels.fetch_add(cancels, Ordering::Relaxed);
    inner.metrics.local_cancels_total.add(cancels);
    if let Some(worker) = gone_global {
        queue_up(inner, UpFrame::Gone(worker));
    }
    // A member that died before its ack simply never existed upstream;
    // if the ack is in flight, the routed reply path reports it gone.
}

/// One xorshift64 step (deterministic backoff jitter, as in the worker
/// agent).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Sleep `dur` in slices, returning early on shutdown.
fn interruptible_sleep(inner: &Inner, mut dur: Duration) {
    while !dur.is_zero() {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let slice = dur.min(Duration::from_millis(20));
        thread::sleep(slice);
        dur -= slice;
    }
}

/// The upstream pump: connect (with backoff) → hello → re-register the
/// block → drain the frame queue until the session dies, then repeat.
fn upstream_pump(inner: Arc<Inner>) {
    let policy = inner.config.reconnect.clone();
    let mut failed_attempts: u32 = 0;
    let mut jitter_state = policy.seed.max(1);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match TcpStream::connect(&inner.config.dispatcher_addr) {
            Ok(s) => s,
            Err(_) => {
                failed_attempts += 1;
                if failed_attempts >= policy.max_attempts {
                    // Out of budget: the relay is dead. Sever the block
                    // so workers fall back on their own policies.
                    give_up(&inner);
                    return;
                }
                let shift = (failed_attempts - 1).min(16);
                let backoff = policy
                    .base_backoff
                    .saturating_mul(1u32 << shift)
                    .min(policy.max_backoff);
                let frac = (xorshift64(&mut jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
                let dur = backoff.mul_f64(1.0 - policy.jitter.clamp(0.0, 1.0) * frac);
                interruptible_sleep(&inner, dur);
                continue;
            }
        };
        failed_attempts = 0;
        stream.set_nodelay(true).ok();
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        *inner.upstream.lock() = stream.try_clone().ok();
        inner.upstream_sessions.fetch_add(1, Ordering::Relaxed);
        inner.metrics.upstream_sessions_total.inc();
        inner.metrics.upstream_connected.set(1);

        // Per-session reader: routes acks and envelopes until EOF.
        let session_dead = Arc::new(AtomicBool::new(false));
        {
            let reader_inner = Arc::clone(&inner);
            let dead = Arc::clone(&session_dead);
            let spawned = thread::Builder::new()
                .name("relay-upread".to_string())
                .stack_size(CONN_STACK)
                .spawn(move || {
                    let mut reader = MsgReader::new(BufReader::new(read_half));
                    while let Ok(Some(msg)) = reader.recv::<DispatcherMsg>() {
                        if !handle_upstream(&reader_inner, msg) {
                            break;
                        }
                    }
                    dead.store(true, Ordering::Release);
                });
            // No reader means no session: tear this attempt down and
            // let the outer loop reconnect with backoff.
            if spawned.is_err() {
                *inner.upstream.lock() = None;
                inner.metrics.upstream_connected.set(0);
                continue;
            }
        }

        let mut writer = MsgWriter::new(stream);
        let mut session_ok = writer
            .send(&WorkerMsg::RelayHello {
                name: inner.config.name.clone(),
                location: inner.config.location.clone(),
            })
            .is_ok();

        // Locals registered in *this* session (suppresses duplicates
        // when buffered Register frames drain after the bulk replay).
        let mut sent: HashSet<u64> = HashSet::new();
        if session_ok {
            // New session, new global ids: invalidate the old mapping
            // and re-register every member.
            let locals: Vec<u64> = {
                let mut st = inner.state.lock();
                st.by_global.clear();
                for m in st.members.values_mut() {
                    m.global = None;
                }
                let mut l: Vec<u64> = st.members.keys().copied().collect();
                l.sort_unstable();
                l
            };
            for local in locals {
                if !send_register(&inner, &mut writer, local, &mut sent) {
                    session_ok = false;
                    break;
                }
            }
        }

        while session_ok
            && !inner.shutdown.load(Ordering::Acquire)
            && !session_dead.load(Ordering::Acquire)
        {
            if let Some(frame) = inner.up_q.pop_timeout(Duration::from_millis(25)) {
                inner.metrics.upqueue_depth.set(inner.up_q.len() as i64);
                session_ok = forward(&inner, &mut writer, frame, &mut sent);
            }
        }

        // Session over (EOF, write error, partition, or shutdown).
        *inner.upstream.lock() = None;
        inner.metrics.upstream_connected.set(0);
        let _ = writer.get_ref().shutdown(Shutdown::Both);
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Loop: reconnect with backoff and replay.
    }
}

/// Upstream reconnects exhausted: sever every member so their agents'
/// own reconnect policies take over, and stop the relay.
fn give_up(inner: &Inner) {
    inner.shutdown.store(true, Ordering::Release);
    let st = inner.state.lock();
    for m in st.members.values() {
        if let Some(sock) = &m.sock {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }
}

/// Forward member `local`'s registration upstream, once per session.
/// The state lock is released before the (blocking) socket write.
fn send_register(
    inner: &Inner,
    writer: &mut MsgWriter<TcpStream>,
    local: u64,
    sent: &mut HashSet<u64>,
) -> bool {
    if sent.contains(&local) {
        return true;
    }
    let info = {
        let st = inner.state.lock();
        st.members
            .get(&local)
            .map(|m| (m.name.clone(), m.cores, m.location.clone()))
    };
    let Some((name, cores, location)) = info else {
        return true; // member already left; nothing to register
    };
    sent.insert(local);
    writer
        .send(&WorkerMsg::RelayRegister {
            local,
            name,
            cores,
            location,
        })
        .is_ok()
}

/// Translate one queued frame into wire traffic for the current
/// session. Returns false when the session's socket is dead.
fn forward(
    inner: &Inner,
    writer: &mut MsgWriter<TcpStream>,
    frame: UpFrame,
    sent: &mut HashSet<u64>,
) -> bool {
    match frame {
        UpFrame::Register(local) => send_register(inner, writer, local, sent),
        UpFrame::Request(local) => {
            let global = {
                let st = inner.state.lock();
                st.members.get(&local).and_then(|m| m.global)
            };
            match global {
                Some(worker) => writer.send(&WorkerMsg::RelayRequest { worker }).is_ok(),
                // Not yet (re-)acked this session: `wants_work` re-issues
                // the request as soon as the ack lands. Dropping here is
                // what makes buffered pre-outage requests idempotent.
                None => true,
            }
        }
        UpFrame::Done {
            local,
            task_id,
            exit_code,
            wall_ms,
            output,
            trace,
        } => {
            let global = {
                let st = inner.state.lock();
                st.members.get(&local).and_then(|m| m.global)
            };
            match global {
                Some(worker) => writer
                    .send(&WorkerMsg::RelayDone {
                        worker,
                        task_id,
                        exit_code,
                        wall_ms,
                        output,
                        trace,
                    })
                    .is_ok(),
                None => {
                    // Produced while the dispatcher was away: hold it and
                    // replay right after the member's re-registration ack
                    // (the dispatcher will drop it as stale, but the
                    // replay keeps the frame order intact).
                    let mut st = inner.state.lock();
                    if let Some(m) = st.members.get_mut(&local) {
                        m.pending_done = Some((task_id, exit_code, wall_ms, output, trace));
                    }
                    true
                }
            }
        }
        UpFrame::MemberState(local) => {
            let claim = {
                let st = inner.state.lock();
                st.members
                    .get(&local)
                    .and_then(|m| m.global.map(|g| (g, m.inflight)))
            };
            match claim {
                Some((worker, Some((task_id, job_id)))) => writer
                    .send(&WorkerMsg::RelayMemberState {
                        worker,
                        task_id,
                        job_id,
                    })
                    .is_ok(),
                // Finished (or left) before the frame drained: nothing
                // left to claim.
                _ => true,
            }
        }
        UpFrame::Gone(worker) => writer.send(&WorkerMsg::RelayWorkerGone { worker }).is_ok(),
        UpFrame::Flush => {
            let stale_ms = inner.config.worker_stale_after.as_millis() as u64;
            let now = now_ms(inner);
            let workers: Vec<u64> = {
                let st = inner.state.lock();
                st.members
                    .values()
                    .filter(|m| {
                        now.saturating_sub(m.last_heard.load(Ordering::Relaxed)) <= stale_ms
                    })
                    .filter_map(|m| m.global)
                    .collect()
            };
            if workers.is_empty() {
                return true;
            }
            inner.batched_frames.fetch_add(1, Ordering::Relaxed);
            inner.metrics.batched_heartbeats_total.inc();
            writer
                .send(&WorkerMsg::BatchedHeartbeat { workers })
                .is_ok()
        }
    }
}

/// Route one dispatcher message. Returns false to end the session
/// (orderly shutdown).
fn handle_upstream(inner: &Inner, msg: DispatcherMsg) -> bool {
    match msg {
        // The relay's own hello ack: remember the assigned id — it
        // stamps this relay's event records.
        DispatcherMsg::Registered { worker_id } => {
            inner.relay_global.store(worker_id, Ordering::Release);
            true
        }
        DispatcherMsg::RelayRegistered { local, worker_id } => {
            let mut st = inner.state.lock();
            let State {
                members,
                by_global,
                enc,
            } = &mut *st;
            if let Some(m) = members.get_mut(&local) {
                m.global = Some(worker_id);
                // The member's own Registered completes its handshake
                // (a re-registration's duplicate ack is ignored by the
                // agent's inbox loop).
                send_member(m, enc, &DispatcherMsg::Registered { worker_id });
                // A member still mid-task across the outage: claim its
                // gang (before any replayed Done) so a restarted
                // dispatcher re-adopts it instead of relaunching.
                if m.inflight.is_some() {
                    queue_up(inner, UpFrame::MemberState(local));
                }
                // Replay traffic held across the outage, in order.
                if let Some((task_id, exit_code, wall_ms, output, trace)) = m.pending_done.take() {
                    queue_up(
                        inner,
                        UpFrame::Done {
                            local,
                            task_id,
                            exit_code,
                            wall_ms,
                            output,
                            trace,
                        },
                    );
                }
                if m.wants_work {
                    queue_up(inner, UpFrame::Request(local));
                }
                by_global.insert(worker_id, local);
            } else {
                // The member left between registration and ack.
                queue_up(inner, UpFrame::Gone(worker_id));
            }
            true
        }
        DispatcherMsg::RelayAssign { worker, assignment } => {
            let mut st = inner.state.lock();
            let State {
                members,
                by_global,
                enc,
            } = &mut *st;
            let local = by_global.get(&worker).copied();
            match local.and_then(|l| members.get_mut(&l)) {
                Some(m) => {
                    m.inflight = Some((assignment.task_id, assignment.job_id));
                    m.wants_work = false;
                    // The forward span covers unwrap → member outbox; the
                    // pushes are lock-free ring writes, safe under the
                    // state lock. Actual socket drain time shows up as
                    // the gap to the worker's stage span.
                    let (trace, job, task) =
                        (assignment.trace, assignment.job_id, assignment.task_id);
                    inner.events.span_start(
                        trace,
                        SpanKind::RelayForward,
                        WriterRole::Relay,
                        job,
                        task,
                    );
                    send_member(m, enc, &DispatcherMsg::Assign(assignment));
                    inner.events.span_end(
                        trace,
                        SpanKind::RelayForward,
                        WriterRole::Relay,
                        job,
                        task,
                    );
                }
                None => {
                    // Assigned to a member that just died; tell the
                    // dispatcher so it tears the gang down promptly.
                    queue_up(inner, UpFrame::Gone(worker));
                }
            }
            true
        }
        DispatcherMsg::RelayCancel { worker, task_id } => {
            let mut st = inner.state.lock();
            let State {
                members,
                by_global,
                enc,
            } = &mut *st;
            let local = by_global.get(&worker).copied();
            if let Some(m) = local.and_then(|l| members.get_mut(&l)) {
                if m.inflight.map(|(t, _)| t) == Some(task_id) {
                    m.inflight = None;
                }
                send_member(m, enc, &DispatcherMsg::Cancel { task_id });
            }
            true
        }
        DispatcherMsg::Shutdown => {
            // Fan the shutdown out to the block and stop.
            inner.shutdown.store(true, Ordering::Release);
            let mut st = inner.state.lock();
            let State { members, enc, .. } = &mut *st;
            for m in members.values() {
                send_member(m, enc, &DispatcherMsg::Shutdown);
            }
            false
        }
        // Unrouted worker-directed frames on the relay connection are a
        // dispatcher bug; drop them rather than guessing a member.
        DispatcherMsg::Assign(_) | DispatcherMsg::Cancel { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::registry::WorkerState;
    use jets_core::spec::{CommandSpec, JobSpec};
    use jets_core::{Dispatcher, DispatcherConfig, JobStatus};
    use jets_worker::apps::standard_registry;
    use jets_worker::{Executor, TaskExecutor, Worker, WorkerConfig};

    const WAIT: Duration = Duration::from_secs(60);

    fn executor() -> Arc<dyn TaskExecutor> {
        Arc::new(Executor::new(standard_registry()))
    }

    fn spawn_worker(addr: &str, name: &str) -> Worker {
        let config = WorkerConfig {
            heartbeat: Some(Duration::from_millis(25)),
            ..WorkerConfig::new(addr, name)
        };
        Worker::spawn(config, executor())
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + WAIT;
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn config_defaults() {
        let c =
            RelayConfig::new("127.0.0.1:9999", "r0").with_liveness_flush(Duration::from_millis(40));
        assert_eq!(c.name, "r0");
        assert_eq!(c.liveness_flush, Duration::from_millis(40));
        assert_eq!(
            c.reconnect.max_attempts,
            ReconnectPolicy::default().max_attempts
        );
    }

    /// Workers behind one relay run a batch end to end while the
    /// dispatcher accepts exactly one connection.
    #[test]
    fn relay_fronts_workers_end_to_end() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let relay = Relay::start(RelayConfig::new(d.addr().to_string(), "relay-0")).unwrap();
        let addr = relay.addr().to_string();
        let workers: Vec<Worker> = (0..3)
            .map(|i| spawn_worker(&addr, &format!("blk-{i}")))
            .collect();
        wait_until("relayed workers to register", || d.alive_workers() == 3);
        assert_eq!(d.connections_accepted(), 1, "one socket fronts the block");
        assert_eq!(relay.member_count(), 3);
        assert!(relay.is_connected());
        let ids = d
            .submit_all((0..12).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        for w in workers {
            w.join();
        }
    }

    /// Severing the upstream connection re-registers the block under a
    /// fresh session and replays held traffic: jobs submitted after the
    /// outage still run, and workers never reconnect themselves.
    #[test]
    fn upstream_partition_reconnects_and_resumes() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let relay = Relay::start(
            RelayConfig::new(d.addr().to_string(), "relay-p")
                .with_liveness_flush(Duration::from_millis(25)),
        )
        .unwrap();
        let addr = relay.addr().to_string();
        let workers: Vec<Worker> = (0..2)
            .map(|i| spawn_worker(&addr, &format!("pp-{i}")))
            .collect();
        wait_until("initial registration", || d.alive_workers() == 2);
        let ids =
            d.submit_all((0..4).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }

        relay.partition_upstream();
        // The dispatcher sees the relay die and downs the whole block…
        wait_until("block declared down", || d.alive_workers() == 0);
        // …then the pump reconnects and re-registers both members.
        wait_until("block re-registered", || d.alive_workers() == 2);
        assert!(relay.stats().upstream_sessions >= 2);
        // The members never reconnected themselves — same sockets, new
        // session — and they still get work.
        assert_eq!(relay.member_count(), 2);
        let ids =
            d.submit_all((0..4).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        for w in workers {
            w.join();
        }
    }

    /// A sustained upstream outage overflows a tiny replay queue; the
    /// drops surface as rate-limited `UpQueueDropped` events alongside
    /// the counter, not one event per evicted frame.
    #[test]
    fn upqueue_overflow_is_surfaced_on_the_event_log() {
        // No dispatcher ever answers: the liveness ticker's Flush frames
        // pile into a one-slot queue and each new frame evicts the last.
        let relay = Relay::start(
            RelayConfig::new("127.0.0.1:1", "relay-drop")
                .with_liveness_flush(Duration::from_millis(5))
                .with_upqueue_limit(1),
        )
        .unwrap();
        wait_until("a drop event", || {
            relay
                .events()
                .snapshot()
                .iter()
                .any(|e| matches!(e.kind, EventKind::UpQueueDropped { .. }))
        });
        assert!(relay.metrics().upqueue_dropped_total.get() >= 1);
        let drop_events = relay
            .events()
            .snapshot()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UpQueueDropped { .. }))
            .count();
        assert!(
            drop_events <= 2,
            "rate limit breached: {drop_events} events"
        );
    }

    /// A member dying mid-gang cancels its same-relay gang peers
    /// locally, without waiting for the dispatcher round-trip.
    #[test]
    fn member_death_cancels_same_gang_locally() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let relay = Relay::start(RelayConfig::new(d.addr().to_string(), "relay-c")).unwrap();
        let addr = relay.addr().to_string();
        let w0 = spawn_worker(&addr, "cc-0");
        let w1 = spawn_worker(&addr, "cc-1");
        wait_until("registration", || d.alive_workers() == 2);
        let id = d.submit(JobSpec::mpi(
            2,
            CommandSpec::builtin("mpi-sleep", vec!["2000".into()]),
        ));
        wait_until("gang to start", || {
            d.workers()
                .iter()
                .filter(|w| matches!(w.state, WorkerState::Busy(_)))
                .count()
                == 2
        });
        w0.kill();
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Failed);
        wait_until("local cancel fan-out", || relay.stats().local_cancels >= 1);
        d.shutdown();
        w1.join();
        w0.join();
    }
}
