//! Bounded upstream replay queue.
//!
//! While the dispatcher is away, every frame a relay would have sent
//! upstream queues here so it can be replayed on reconnect. The old
//! implementation used an unbounded channel for this — a long partition
//! under a busy block grew process memory without limit. This queue is
//! capped: at the high-water mark the **oldest** frame is dropped to
//! admit the newest, on the theory that stale `Request`/`Flush` traffic
//! is superseded by later frames anyway, and the re-register pass on
//! reconnect rebuilds registration state regardless of what was shed.
//!
//! Drops are counted so `jets_relay_upqueue_dropped_total` can surface
//! a partition that actually overflowed the buffer.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A bounded MPSC queue with a drop-oldest overflow policy.
///
/// Producers [`push`](UpQueue::push) without ever blocking; the single
/// consumer parks in [`pop_timeout`](UpQueue::pop_timeout). The cap is
/// in *frames*, not bytes: upstream frames are small and uniform, so a
/// frame count is an honest memory bound.
pub struct UpQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cv: Condvar,
    limit: usize,
    dropped: AtomicU64,
}

impl<T> UpQueue<T> {
    /// Create a queue that holds at most `limit` frames (min 1).
    pub fn new(limit: usize) -> UpQueue<T> {
        UpQueue {
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            limit: limit.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueue `item`, evicting the oldest frame if the queue is at its
    /// high-water mark. Returns `true` if an eviction happened, so the
    /// caller can count it.
    pub fn push(&self, item: T) -> bool {
        let mut q = self.inner.lock();
        let mut evicted = false;
        if q.len() >= self.limit {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        q.push_back(item);
        drop(q);
        self.cv.notify_one();
        evicted
    }

    /// Dequeue the oldest frame, waiting up to `timeout` for one to
    /// arrive. `None` means the wait timed out with the queue empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock();
        if q.is_empty() {
            self.cv.wait_for(&mut q, timeout);
        }
        q.pop_front()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Total frames evicted by the drop-oldest policy since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn fifo_order_within_limit() {
        let q = UpQueue::new(8);
        for i in 0..5 {
            assert!(!q.push(i));
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(i));
        }
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest() {
        let q = UpQueue::new(3);
        assert!(!q.push(1));
        assert!(!q.push(2));
        assert!(!q.push(3));
        assert!(q.push(4)); // evicts 1
        assert!(q.push(5)); // evicts 2
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(4));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(5));
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: UpQueue<u32> = UpQueue::new(4);
        let start = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn push_wakes_a_parked_consumer() {
        let q = Arc::new(UpQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42u32);
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn limit_floor_is_one() {
        let q = UpQueue::new(0);
        assert!(!q.push(1));
        assert!(q.push(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
    }
}
