//! The relay daemon's live metric surface.
//!
//! Mirrors [`crate::RelayStats`] — the snapshot struct tests read — as
//! scrapeable `jets-obs` handles, plus the upstream-connected gauge an
//! operator actually pages on. Maintained inline at the same sites that
//! update the stats atomics, so the two surfaces cannot drift.

use jets_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Static metric handles for one relay daemon.
pub struct RelayMetrics {
    registry: Arc<Registry>,
    /// Currently connected members.
    pub members: Arc<Gauge>,
    /// 1 while an upstream dispatcher session is established, else 0.
    pub upstream_connected: Arc<Gauge>,
    /// Upstream sessions established (above 1 means the relay survived a
    /// dispatcher reconnect).
    pub upstream_sessions_total: Arc<Counter>,
    /// `Cancel`s fanned out locally, without an upstream round-trip.
    pub local_cancels_total: Arc<Counter>,
    /// Batched liveness frames sent upstream.
    pub batched_heartbeats_total: Arc<Counter>,
    /// Frames waiting in the bounded upstream replay queue.
    pub upqueue_depth: Arc<Gauge>,
    /// Frames evicted by the replay queue's drop-oldest overflow policy.
    pub upqueue_dropped_total: Arc<Counter>,
}

impl RelayMetrics {
    /// Register the relay metric set on a fresh registry.
    pub fn new() -> RelayMetrics {
        let r = Arc::new(Registry::new());
        jets_obs::register_build_info(
            &r,
            env!("CARGO_PKG_VERSION"),
            option_env!("JETS_GIT_HASH").unwrap_or("unknown"),
        );
        RelayMetrics {
            members: r.gauge("jets_relay_members", "Currently connected members"),
            upstream_connected: r.gauge(
                "jets_relay_upstream_connected",
                "1 while an upstream dispatcher session is established",
            ),
            upstream_sessions_total: r.counter(
                "jets_relay_upstream_sessions_total",
                "Upstream dispatcher sessions established",
            ),
            local_cancels_total: r.counter(
                "jets_relay_local_cancels_total",
                "Cancels fanned out locally without an upstream round-trip",
            ),
            batched_heartbeats_total: r.counter(
                "jets_relay_batched_heartbeats_total",
                "Batched liveness frames sent upstream",
            ),
            upqueue_depth: r.gauge(
                "jets_relay_upqueue_depth",
                "Frames waiting in the bounded upstream replay queue",
            ),
            upqueue_dropped_total: r.counter(
                "jets_relay_upqueue_dropped_total",
                "Frames evicted by the replay queue's drop-oldest policy",
            ),
            registry: r,
        }
    }

    /// The registry backing these handles (what `/metrics` renders).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Render the current values as Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for RelayMetrics {
    fn default() -> Self {
        RelayMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metric_names_render() {
        let m = RelayMetrics::new();
        m.members.set(3);
        m.upstream_sessions_total.inc();
        let text = m.render();
        for name in [
            "jets_relay_members",
            "jets_relay_upstream_connected",
            "jets_relay_upstream_sessions_total",
            "jets_relay_local_cancels_total",
            "jets_relay_batched_heartbeats_total",
            "jets_relay_upqueue_depth",
            "jets_relay_upqueue_dropped_total",
            "jets_build_info",
        ] {
            assert!(text.contains(name), "missing {name} in render");
        }
    }
}
