//! # jets-relay — a hierarchical relay tier for JETS
//!
//! The paper's dispatcher holds one TCP connection per pilot worker, so
//! registrations, heartbeats, and task-status traffic all serialize
//! through a single process — and the paper names hierarchical
//! distribution of the dispatcher as the path past that wall. This crate
//! is that tier: a relay daemon sits between a *block* of workers and
//! the dispatcher, turning O(workers) dispatcher connections into
//! O(relays).
//!
//! Downstream, a relay speaks the ordinary worker protocol: workers
//! connect to it exactly as they would to a dispatcher (same `Register`
//! handshake, same reconnect/backoff machinery). Upstream, the relay
//! holds one connection and:
//!
//! * **aggregates registrations** — each member is forwarded as a
//!   `RelayRegister` and mapped `local ↔ global` id once the dispatcher
//!   acks;
//! * **coalesces liveness** — member heartbeats land in a relay-local
//!   atomic; a periodic `BatchedHeartbeat` frame vouches for every
//!   recently-heard member in one line;
//! * **multiplexes task traffic** — `Request`/`Done` go up and
//!   `Assign`/`Cancel` come down in routed envelopes over the single
//!   connection, routed by relay-local tables;
//! * **fans out gang cancellation locally** — when a member dies
//!   mid-gang, same-relay members of the same job are canceled
//!   immediately, without waiting for the dispatcher round-trip;
//! * **buffers and replays across dispatcher reconnects** — upstream
//!   frames queue while the dispatcher is away; on reconnect the relay
//!   re-registers its block (new global ids) and replays held traffic,
//!   so workers never notice the outage.
//!
//! See `docs/relay.md` for the topology and the failure matrix.

#![warn(missing_docs)]

pub mod daemon;
pub mod metrics;
pub mod upqueue;

pub use daemon::{Relay, RelayConfig, RelayStats};
pub use metrics::RelayMetrics;
