//! Task execution: builtin in-process applications and real processes.

use jets_core::protocol::{TaskAssignment, TaskKind, EXIT_CANCELED};
use jets_core::spec::CommandSpec;
use jets_mpi::{Communicator, MpiError};
use jets_pmi::PmiClient;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Cooperative cancellation flag shared between a worker agent and the
/// task it is running. Cloning shares the flag: the agent trips it when
/// the dispatcher cancels the task (gang teardown, deadline), and the
/// executor polls it to kill child processes.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token. Irreversible.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Everything a builtin application sees when it runs.
pub struct TaskContext {
    /// Application arguments from the command spec.
    pub args: Vec<String>,
    /// Merged environment: command env plus (for MPI ranks) the rank's
    /// `PMI_*` variables.
    pub env: Vec<(String, String)>,
    /// The rank this invocation hosts (None for sequential tasks).
    pub rank: Option<u32>,
    /// Total ranks in the job (1 for sequential tasks).
    pub size: u32,
}

impl TaskContext {
    /// Look up a variable in the task environment.
    pub fn env(&self, key: &str) -> Option<String> {
        self.env
            .iter()
            .rev() // later entries (PMI vars) override command env
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Wire up an MPI communicator for this rank: PMI handshake, business
    /// card exchange, TCP mesh — the full MPICH-over-sockets path.
    ///
    /// Fails for sequential tasks (no `PMI_*` environment).
    pub fn mpi(&self) -> Result<MpiJob, MpiError> {
        let mut pmi =
            PmiClient::from_lookup(|k| self.env(k)).map_err(|e| MpiError::Pmi(e.to_string()))?;
        let comm = Communicator::via_pmi(&mut pmi)?;
        Ok(MpiJob { pmi, comm })
    }
}

/// A wired-up MPI rank: communicator plus its PMI connection.
pub struct MpiJob {
    pmi: PmiClient,
    /// The rank's communicator.
    pub comm: Communicator,
}

impl MpiJob {
    /// Orderly MPI + PMI teardown. Call at the end of the application.
    pub fn finalize(mut self) -> Result<(), MpiError> {
        self.comm.finalize()?;
        self.pmi
            .finalize()
            .map_err(|e| MpiError::Pmi(e.to_string()))
    }
}

/// A builtin application: takes a context, returns an exit code.
pub type AppFn = Arc<dyn Fn(&TaskContext) -> i32 + Send + Sync>;

/// Named in-process applications available to `Builtin` commands.
#[derive(Clone, Default)]
pub struct AppRegistry {
    apps: Arc<RwLock<HashMap<String, AppFn>>>,
}

impl AppRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) an application.
    pub fn register(
        &self,
        name: impl Into<String>,
        f: impl Fn(&TaskContext) -> i32 + Send + Sync + 'static,
    ) {
        self.apps.write().insert(name.into(), Arc::new(f));
    }

    /// Fetch an application by name.
    pub fn get(&self, name: &str) -> Option<AppFn> {
        self.apps.read().get(name).cloned()
    }

    /// Registered application names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.apps.read().keys().cloned().collect();
        v.sort();
        v
    }
}

/// Result of executing one assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutcome {
    /// Exit code (0 = success).
    pub exit_code: i32,
    /// Captured standard-output tail, if the executor captures output.
    pub output: Option<String>,
}

/// Upper bound on captured output shipped back to the dispatcher. The
/// paper's largest run produced 16 MB of stdout over 11 minutes without
/// congesting this channel; we keep the per-task tail small and let bulk
/// output go to files.
pub const OUTPUT_CAPTURE_LIMIT: usize = 4096;

/// Runs assignments; implemented by [`Executor`] and by test doubles.
pub trait TaskExecutor: Send + Sync {
    /// Execute the assignment to completion, returning its exit code.
    fn execute(&self, assignment: &TaskAssignment) -> i32;

    /// Execute and capture standard output where supported. The default
    /// forwards to [`TaskExecutor::execute`] with no capture.
    fn execute_captured(&self, assignment: &TaskAssignment) -> TaskOutcome {
        TaskOutcome {
            exit_code: self.execute(assignment),
            output: None,
        }
    }

    /// Execute under a cancellation token: an executor that supports it
    /// kills the task's child processes when the token trips and returns
    /// [`EXIT_CANCELED`]. The default ignores the token and forwards to
    /// [`TaskExecutor::execute_captured`] — the agent's grace-period
    /// abandonment still bounds such executors.
    fn execute_cancellable(
        &self,
        assignment: &TaskAssignment,
        cancel: &CancelToken,
    ) -> TaskOutcome {
        let _ = cancel;
        self.execute_captured(assignment)
    }
}

/// Keep the *tail* of output (the end usually carries the verdict).
fn truncate_output(mut s: String) -> Option<String> {
    if s.is_empty() {
        return None;
    }
    if s.len() > OUTPUT_CAPTURE_LIMIT {
        let cut = s.len() - OUTPUT_CAPTURE_LIMIT;
        // Cut on a char boundary.
        let boundary = (cut..s.len()).find(|&i| s.is_char_boundary(i)).unwrap_or(0);
        s = format!("[... truncated ...]{}", &s[boundary..]);
    }
    Some(s)
}

/// Exit code when a builtin application is not registered.
pub const EXIT_UNKNOWN_APP: i32 = 127;
/// Exit code when a process could not be spawned or awaited.
pub const EXIT_SPAWN_FAILED: i32 = 126;
/// Exit code when a rank thread panicked.
pub const EXIT_RANK_PANIC: i32 = 125;

/// The standard executor: builtins in-process, `Exec` as OS processes.
#[derive(Clone, Default)]
pub struct Executor {
    registry: AppRegistry,
}

impl Executor {
    /// An executor over the given registry.
    pub fn new(registry: AppRegistry) -> Self {
        Executor { registry }
    }

    /// The executor's registry (register more apps through this).
    pub fn registry(&self) -> &AppRegistry {
        &self.registry
    }

    fn run_one(
        &self,
        cmd: &CommandSpec,
        extra_env: Vec<(String, String)>,
        rank: Option<u32>,
        size: u32,
    ) -> i32 {
        match cmd {
            CommandSpec::Builtin { app, args, env } => {
                let Some(f) = self.registry.get(app) else {
                    return EXIT_UNKNOWN_APP;
                };
                let mut merged = env.clone();
                merged.extend(extra_env);
                let ctx = TaskContext {
                    args: args.clone(),
                    env: merged,
                    rank,
                    size,
                };
                f(&ctx)
            }
            CommandSpec::Exec { program, args, env } => {
                let mut command = Command::new(program);
                command.args(args);
                for (k, v) in env.iter().chain(extra_env.iter()) {
                    command.env(k, v);
                }
                match command.status() {
                    Ok(status) => status.code().unwrap_or(EXIT_SPAWN_FAILED),
                    Err(_) => EXIT_SPAWN_FAILED,
                }
            }
        }
    }

    /// Like `run_one` but captures stdout for `Exec` commands.
    fn run_one_captured(
        &self,
        cmd: &CommandSpec,
        extra_env: Vec<(String, String)>,
        rank: Option<u32>,
        size: u32,
    ) -> TaskOutcome {
        match cmd {
            CommandSpec::Exec { program, args, env } => {
                let mut command = Command::new(program);
                command.args(args);
                for (k, v) in env.iter().chain(extra_env.iter()) {
                    command.env(k, v);
                }
                match command.output() {
                    Ok(out) => TaskOutcome {
                        exit_code: out.status.code().unwrap_or(EXIT_SPAWN_FAILED),
                        output: truncate_output(String::from_utf8_lossy(&out.stdout).into_owned()),
                    },
                    Err(_) => TaskOutcome {
                        exit_code: EXIT_SPAWN_FAILED,
                        output: None,
                    },
                }
            }
            builtin => TaskOutcome {
                exit_code: self.run_one(builtin, extra_env, rank, size),
                output: None,
            },
        }
    }

    /// Like `run_one_captured` for `Exec` commands, but polls `cancel`
    /// while the child runs and kills it when the token trips. Builtins
    /// run to completion — in-process code cannot be safely killed; the
    /// agent abandons the task thread after its cancel grace instead.
    fn run_one_cancellable(
        &self,
        cmd: &CommandSpec,
        extra_env: Vec<(String, String)>,
        rank: Option<u32>,
        size: u32,
        cancel: &CancelToken,
    ) -> TaskOutcome {
        let CommandSpec::Exec { program, args, env } = cmd else {
            return self.run_one_captured(cmd, extra_env, rank, size);
        };
        let mut command = Command::new(program);
        command.args(args);
        for (k, v) in env.iter().chain(extra_env.iter()) {
            command.env(k, v);
        }
        command.stdout(Stdio::piped());
        let mut child = match command.spawn() {
            Ok(c) => c,
            Err(_) => {
                return TaskOutcome {
                    exit_code: EXIT_SPAWN_FAILED,
                    output: None,
                }
            }
        };
        // Drain stdout on a side thread so a chatty child never blocks on
        // a full pipe while this thread polls `try_wait`.
        let drain = child.stdout.take().map(|mut out| {
            thread::spawn(move || {
                use std::io::Read;
                let mut buf = String::new();
                let _ = out.read_to_string(&mut buf);
                buf
            })
        });
        let exit_code = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status.code().unwrap_or(EXIT_SPAWN_FAILED),
                Ok(None) => {
                    if cancel.is_canceled() {
                        let _ = child.kill();
                        let _ = child.wait();
                        break EXIT_CANCELED;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break EXIT_SPAWN_FAILED;
                }
            }
        };
        let output = drain.and_then(|h| h.join().ok()).and_then(truncate_output);
        TaskOutcome { exit_code, output }
    }

    /// Run an MPI proxy's local ranks, one thread each (like a Hydra
    /// proxy forking one process per local rank), concatenating their
    /// captured output tails in rank order. When `cancel` is supplied,
    /// each rank's `Exec` child is killable.
    #[allow(clippy::too_many_arguments)]
    fn proxy_captured(
        &self,
        cmd: &CommandSpec,
        ranks: &[u32],
        size: u32,
        pmi_addr: &str,
        pmi_jobid: &str,
        cancel: Option<&CancelToken>,
    ) -> TaskOutcome {
        let mut handles = Vec::with_capacity(ranks.len());
        for &rank in ranks {
            let this = self.clone();
            let cmd = cmd.clone();
            let pmi_env = vec![
                (jets_pmi::ENV_RANK.to_string(), rank.to_string()),
                (jets_pmi::ENV_SIZE.to_string(), size.to_string()),
                (jets_pmi::ENV_ADDR.to_string(), pmi_addr.to_string()),
                (jets_pmi::ENV_JOBID.to_string(), pmi_jobid.to_string()),
            ];
            let cancel = cancel.cloned();
            let h = thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(512 * 1024)
                .spawn(move || match &cancel {
                    Some(c) => this.run_one_cancellable(&cmd, pmi_env, Some(rank), size, c),
                    None => this.run_one_captured(&cmd, pmi_env, Some(rank), size),
                })
                .expect("spawn rank thread");
            handles.push(h);
        }
        let mut exit = 0;
        let mut combined = String::new();
        for h in handles {
            match h.join() {
                Ok(outcome) => {
                    if outcome.exit_code != 0 && exit == 0 {
                        exit = outcome.exit_code;
                    }
                    if let Some(o) = outcome.output {
                        combined.push_str(&o);
                    }
                }
                Err(_) if exit == 0 => exit = EXIT_RANK_PANIC,
                Err(_) => {}
            }
        }
        TaskOutcome {
            exit_code: exit,
            output: truncate_output(combined),
        }
    }
}

impl TaskExecutor for Executor {
    fn execute_captured(&self, assignment: &TaskAssignment) -> TaskOutcome {
        match &assignment.kind {
            TaskKind::Sequential { cmd } => self.run_one_captured(cmd, Vec::new(), None, 1),
            // MPI proxies route each rank's output through the proxy; we
            // concatenate the local ranks' tails in rank order.
            TaskKind::MpiProxy {
                cmd,
                ranks,
                size,
                pmi_addr,
                pmi_jobid,
            } => self.proxy_captured(cmd, ranks, *size, pmi_addr, pmi_jobid, None),
        }
    }

    fn execute_cancellable(
        &self,
        assignment: &TaskAssignment,
        cancel: &CancelToken,
    ) -> TaskOutcome {
        match &assignment.kind {
            TaskKind::Sequential { cmd } => {
                self.run_one_cancellable(cmd, Vec::new(), None, 1, cancel)
            }
            TaskKind::MpiProxy {
                cmd,
                ranks,
                size,
                pmi_addr,
                pmi_jobid,
            } => self.proxy_captured(cmd, ranks, *size, pmi_addr, pmi_jobid, Some(cancel)),
        }
    }

    fn execute(&self, assignment: &TaskAssignment) -> i32 {
        match &assignment.kind {
            TaskKind::Sequential { cmd } => self.run_one(cmd, Vec::new(), None, 1),
            TaskKind::MpiProxy {
                cmd,
                ranks,
                size,
                pmi_addr,
                pmi_jobid,
            } => {
                // One rank per thread, like a Hydra proxy forking one
                // process per local rank. Exec commands become real
                // per-rank OS processes via run_one.
                let mut handles = Vec::with_capacity(ranks.len());
                for &rank in ranks {
                    let this = self.clone();
                    let cmd = cmd.clone();
                    let pmi_env = vec![
                        (jets_pmi::ENV_RANK.to_string(), rank.to_string()),
                        (jets_pmi::ENV_SIZE.to_string(), size.to_string()),
                        (jets_pmi::ENV_ADDR.to_string(), pmi_addr.clone()),
                        (jets_pmi::ENV_JOBID.to_string(), pmi_jobid.clone()),
                    ];
                    let size = *size;
                    let h = thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(512 * 1024)
                        .spawn(move || this.run_one(&cmd, pmi_env, Some(rank), size))
                        .expect("spawn rank thread");
                    handles.push(h);
                }
                let mut exit = 0;
                for h in handles {
                    match h.join() {
                        Ok(code) if code != 0 && exit == 0 => exit = code,
                        Ok(_) => {}
                        Err(_) if exit == 0 => exit = EXIT_RANK_PANIC,
                        Err(_) => {}
                    }
                }
                exit
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::spec::CommandSpec;
    use jets_pmi::{PmiServer, PmiServerConfig};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn seq(cmd: CommandSpec) -> TaskAssignment {
        TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::Sequential { cmd },
            stage: Vec::new(),
            trace: 0,
        }
    }

    #[test]
    fn builtin_app_runs_with_args() {
        let exec = Executor::default();
        exec.registry().register("add", |ctx: &TaskContext| {
            let a: i32 = ctx.args[0].parse().unwrap();
            let b: i32 = ctx.args[1].parse().unwrap();
            a + b
        });
        let code = exec.execute(&seq(CommandSpec::builtin(
            "add",
            vec!["3".into(), "4".into()],
        )));
        assert_eq!(code, 7);
    }

    #[test]
    fn unknown_builtin_returns_127() {
        let exec = Executor::default();
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin("ghost", vec![]))),
            EXIT_UNKNOWN_APP
        );
    }

    #[test]
    fn exec_command_runs_real_process() {
        let exec = Executor::default();
        assert_eq!(exec.execute(&seq(CommandSpec::exec("true", vec![]))), 0);
        assert_eq!(exec.execute(&seq(CommandSpec::exec("false", vec![]))), 1);
    }

    #[test]
    fn exec_missing_program_returns_126() {
        let exec = Executor::default();
        assert_eq!(
            exec.execute(&seq(CommandSpec::exec("/no/such/prog", vec![]))),
            EXIT_SPAWN_FAILED
        );
    }

    #[test]
    fn env_lookup_prefers_pmi_overrides() {
        let ctx = TaskContext {
            args: vec![],
            env: vec![("K".into(), "cmd".into()), ("K".into(), "pmi".into())],
            rank: Some(0),
            size: 1,
        };
        assert_eq!(ctx.env("K").as_deref(), Some("pmi"));
        assert_eq!(ctx.env("missing"), None);
    }

    #[test]
    fn mpi_proxy_runs_all_local_ranks_with_pmi() {
        // A 1-node, 4-rank proxy: the executor must start 4 rank threads
        // that all complete the PMI + MPI wire-up and a barrier.
        let server = PmiServer::start(PmiServerConfig::new("exec-test", 4)).unwrap();
        let counted = Arc::new(AtomicU32::new(0));
        let exec = Executor::default();
        let c2 = Arc::clone(&counted);
        exec.registry()
            .register("mpi-count", move |ctx: &TaskContext| {
                let job = ctx.mpi().unwrap();
                let mut job = job;
                job.comm.barrier().unwrap();
                c2.fetch_add(1, Ordering::SeqCst);
                job.finalize().unwrap();
                0
            });
        let assignment = TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin("mpi-count", vec![]),
                ranks: vec![0, 1, 2, 3],
                size: 4,
                pmi_addr: server.addr().to_string(),
                pmi_jobid: "exec-test".into(),
            },
            stage: Vec::new(),
            trace: 0,
        };
        assert_eq!(exec.execute(&assignment), 0);
        assert_eq!(counted.load(Ordering::SeqCst), 4);
        assert_eq!(
            server.wait(std::time::Duration::from_secs(10)),
            jets_pmi::JobOutcome::Success
        );
    }

    #[test]
    fn proxy_exit_code_is_first_failure() {
        let server = PmiServer::start(PmiServerConfig::new("fail-test", 2)).unwrap();
        let exec = Executor::default();
        exec.registry().register("rank-fail", |ctx: &TaskContext| {
            // Both ranks connect to PMI so the server is not left hanging,
            // then rank 1 reports failure.
            let mut pmi = PmiClient::from_lookup(|k| ctx.env(k)).unwrap();
            pmi.finalize().unwrap();
            if ctx.rank == Some(1) {
                3
            } else {
                0
            }
        });
        let assignment = TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin("rank-fail", vec![]),
                ranks: vec![0, 1],
                size: 2,
                pmi_addr: server.addr().to_string(),
                pmi_jobid: "fail-test".into(),
            },
            stage: Vec::new(),
            trace: 0,
        };
        assert_eq!(exec.execute(&assignment), 3);
    }

    #[test]
    fn registry_lists_names() {
        let r = AppRegistry::new();
        r.register("b", |_: &TaskContext| 0);
        r.register("a", |_: &TaskContext| 0);
        assert_eq!(r.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
