//! The worker agent's live metric surface.
//!
//! One [`WorkerMetrics`] per *process*, shared by every agent spawned in
//! it (a simulated allocation runs hundreds of agents in one process;
//! scraping each would be absurd). All handles are `jets-obs` atomics,
//! so the task loop pays one relaxed `fetch_add` per event — nothing on
//! the request/execute/report path allocates or locks.
//!
//! The `jets-worker` binary serves this registry at `--metrics-addr`;
//! see `docs/observability.md` for the name reference.

use jets_obs::{Counter, Gauge, Histogram, Registry};
use std::fmt;
use std::sync::Arc;

/// Static metric handles shared by the worker agents of one process.
pub struct WorkerMetrics {
    registry: Arc<Registry>,
    /// Registered dispatcher sessions (re-registrations included, so a
    /// value above the agent count means reconnects happened).
    pub sessions_total: Arc<Counter>,
    /// Sessions that ended in connection loss (EOF, write failure).
    pub connections_lost_total: Arc<Counter>,
    /// Task results reported upstream (any exit code).
    pub tasks_executed_total: Arc<Counter>,
    /// Reported tasks whose exit code was nonzero.
    pub tasks_failed_total: Arc<Counter>,
    /// Tasks that ended through dispatcher-driven cancellation.
    pub tasks_canceled_total: Arc<Counter>,
    /// Assignments abandoned because node-local staging failed.
    pub staging_failed_total: Arc<Counter>,
    /// Tasks currently executing across this process's agents.
    pub tasks_inflight: Arc<Gauge>,
    /// Wall time of reported tasks.
    pub task_seconds: Arc<Histogram>,
}

impl WorkerMetrics {
    /// Register the worker metric set on a fresh registry.
    pub fn new() -> WorkerMetrics {
        let r = Arc::new(Registry::new());
        jets_obs::register_build_info(
            &r,
            env!("CARGO_PKG_VERSION"),
            option_env!("JETS_GIT_HASH").unwrap_or("unknown"),
        );
        WorkerMetrics {
            sessions_total: r.counter(
                "jets_worker_sessions_total",
                "Registered dispatcher sessions (re-registrations included)",
            ),
            connections_lost_total: r.counter(
                "jets_worker_connections_lost_total",
                "Sessions that ended in connection loss",
            ),
            tasks_executed_total: r.counter(
                "jets_worker_tasks_executed_total",
                "Task results reported upstream",
            ),
            tasks_failed_total: r.counter(
                "jets_worker_tasks_failed_total",
                "Reported tasks with a nonzero exit code",
            ),
            tasks_canceled_total: r.counter(
                "jets_worker_tasks_canceled_total",
                "Tasks ended by dispatcher-driven cancellation",
            ),
            staging_failed_total: r.counter(
                "jets_worker_staging_failed_total",
                "Assignments abandoned because node-local staging failed",
            ),
            tasks_inflight: r.gauge(
                "jets_worker_tasks_inflight",
                "Tasks currently executing in this process",
            ),
            task_seconds: r.histogram_micros(
                "jets_worker_task_seconds",
                "Wall time of reported tasks",
                &[],
            ),
            registry: r,
        }
    }

    /// The registry backing these handles (what `/metrics` renders).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Render the current values as Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for WorkerMetrics {
    fn default() -> Self {
        WorkerMetrics::new()
    }
}

// `WorkerConfig` derives `Debug` and carries an optional handle to this
// struct; the values are live atomics, so a point-in-time dump would be
// misleading anyway.
impl fmt::Debug for WorkerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerMetrics").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metric_names_render() {
        let m = WorkerMetrics::new();
        m.sessions_total.inc();
        m.tasks_inflight.set(2);
        m.task_seconds.record(5_000);
        let text = m.render();
        for name in [
            "jets_worker_sessions_total",
            "jets_worker_connections_lost_total",
            "jets_worker_tasks_executed_total",
            "jets_worker_tasks_failed_total",
            "jets_worker_tasks_canceled_total",
            "jets_worker_staging_failed_total",
            "jets_worker_tasks_inflight",
            "jets_worker_task_seconds",
            "jets_build_info",
        ] {
            assert!(text.contains(name), "missing {name} in render");
        }
    }
}
