//! Node-local storage staging — feature 2 of the JETS design (Section 5):
//! "JETS can cache libraries and tools (such as the MPICH2 proxy binary)
//! and even user data on node-local storage, which boosts startup
//! performance and thus utilization for ensembles of short jobs. In
//! practice, the files to be stored in this way are simply provided to
//! the JETS start-up script as a simple list."
//!
//! On the Blue Gene/P this was the ZeptoOS RAM filesystem; here each
//! worker owns a [`NodeLocalCache`] directory. Job specifications list
//! [`StageFile`]s; before the first task of a job runs on a node, the
//! worker copies each listed file into its cache (once — subsequent jobs
//! reuse the cached copy) and exports the cache directory to the task as
//! `JETS_LOCAL_DIR`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

pub use jets_core::spec::StageFile;

/// A worker's node-local file cache.
pub struct NodeLocalCache {
    dir: PathBuf,
    /// name → source it was staged from (for conflict detection).
    entries: Mutex<HashMap<String, String>>,
    /// Copies actually performed (cache misses).
    copies: Mutex<u64>,
}

impl NodeLocalCache {
    /// Create (or reuse) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<NodeLocalCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(NodeLocalCache {
            dir,
            entries: Mutex::new(HashMap::new()),
            copies: Mutex::new(0),
        })
    }

    /// The cache directory (exported to tasks as `JETS_LOCAL_DIR`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of copies performed so far (misses; hits are free).
    pub fn copies(&self) -> u64 {
        *self.copies.lock()
    }

    /// Ensure `file` is present locally; returns its local path.
    /// Copies at most once per name; staging a different source under an
    /// already-used name is an error (silent aliasing would corrupt
    /// unrelated jobs).
    pub fn stage(&self, file: &StageFile) -> io::Result<PathBuf> {
        let local = self.dir.join(&file.name);
        let mut entries = self.entries.lock();
        match entries.get(&file.name) {
            Some(existing) if existing == &file.source => Ok(local),
            Some(existing) => Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "cache name '{}' already staged from '{existing}', refusing '{}'",
                    file.name, file.source
                ),
            )),
            None => {
                std::fs::copy(&file.source, &local)?;
                entries.insert(file.name.clone(), file.source.clone());
                *self.copies.lock() += 1;
                Ok(local)
            }
        }
    }

    /// Stage a whole list (a job's staging manifest).
    pub fn stage_all(&self, files: &[StageFile]) -> io::Result<()> {
        for f in files {
            self.stage(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(tag: &str) -> (PathBuf, NodeLocalCache) {
        let base = std::env::temp_dir().join(format!("staging-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let cache = NodeLocalCache::new(base.join("local")).unwrap();
        (base, cache)
    }

    #[test]
    fn stage_copies_once_and_reuses() {
        let (base, cache) = setup("once");
        let src = base.join("tool.bin");
        std::fs::write(&src, b"binary").unwrap();
        let f = StageFile::new(src.to_string_lossy().into_owned());
        let p1 = cache.stage(&f).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), b"binary");
        assert_eq!(cache.copies(), 1);
        // Second stage of the same file: a hit, no copy.
        let p2 = cache.stage(&f).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(cache.copies(), 1);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn conflicting_names_are_rejected() {
        let (base, cache) = setup("conflict");
        let a = base.join("a.dat");
        let b = base.join("b.dat");
        std::fs::write(&a, b"a").unwrap();
        std::fs::write(&b, b"b").unwrap();
        cache
            .stage(&StageFile::named(a.to_string_lossy(), "shared"))
            .unwrap();
        let err = cache
            .stage(&StageFile::named(b.to_string_lossy(), "shared"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn missing_source_is_an_error() {
        let (base, cache) = setup("missing");
        let err = cache.stage(&StageFile::new("/no/such/file")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(cache.copies(), 0);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn stage_file_name_derivation() {
        assert_eq!(StageFile::new("/a/b/c.so").name, "c.so");
        assert_eq!(StageFile::named("/a/b.so", "lib.so").name, "lib.so");
    }

    #[test]
    fn stage_all_manifest() {
        let (base, cache) = setup("manifest");
        for n in ["x", "y", "z"] {
            std::fs::write(base.join(n), n).unwrap();
        }
        let manifest: Vec<StageFile> = ["x", "y", "z"]
            .iter()
            .map(|n| StageFile::new(base.join(n).to_string_lossy().into_owned()))
            .collect();
        cache.stage_all(&manifest).unwrap();
        assert_eq!(cache.copies(), 3);
        for n in ["x", "y", "z"] {
            assert!(cache.dir().join(n).exists());
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
