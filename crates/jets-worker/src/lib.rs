//! # jets-worker — the JETS pilot-job worker agent
//!
//! A worker is a persistent pilot job running on a compute node: started
//! once per node by the system scheduler (Cobalt, PBS, ssh), it registers
//! with the JETS dispatcher, then loops *request → execute → report* for
//! the lifetime of the allocation, executing many tasks (paper Section 5,
//! Fig. 4).
//!
//! Two execution paths:
//!
//! * [`executor::Executor`] runs `Builtin` commands as in-process
//!   functions from an [`executor::AppRegistry`] (simulated-allocation
//!   mode — tasks are real code, node boundaries are virtual) and `Exec`
//!   commands as real OS processes. MPI proxy assignments start one rank
//!   (thread or process) per hosted rank, each configured with the
//!   `PMI_*` environment from the proxy command, exactly as a Hydra proxy
//!   configures user executables.
//! * [`apps`] registers the standard application set used by the paper's
//!   benchmarks: no-ops, timed sleeps, and the barrier–sleep–barrier MPI
//!   synthetic task.
//!
//! [`agent::Worker`] owns the connection lifecycle and exposes a *kill
//! switch* ([`agent::Worker::kill`]) that severs the socket abruptly —
//! the fault-injection primitive behind the paper's faulty-allocation
//! experiment (Fig. 10).

#![warn(missing_docs)]

pub mod agent;
pub mod apps;
pub mod executor;
pub mod metrics;
pub mod staging;

pub use agent::{ReconnectPolicy, Worker, WorkerConfig, WorkerExit};
pub use executor::{AppRegistry, CancelToken, Executor, TaskContext, TaskExecutor};
pub use metrics::WorkerMetrics;
pub use staging::{NodeLocalCache, StageFile};
