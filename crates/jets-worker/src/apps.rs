//! Standard builtin applications used by the paper's benchmarks.
//!
//! * `noop` — exits immediately (the Fig. 6 sequential launch-rate task:
//!   "an external process that did no work").
//! * `sleep MS` — sleeps `MS` milliseconds (sequential timed task).
//! * `fail [CODE]` — exits nonzero (failure-path testing).
//! * `mpi-sleep MS` — the paper's synthetic MPI benchmark (Section
//!   6.1.2): "starts up, performs an MPI barrier on all processes, waits
//!   for a given time, performs a second MPI barrier, and exits."
//! * `mpi-sleep-write MS DIR` — the Swift-synthetic variant (Section
//!   6.2.1): barrier, sleep, write the MPI rank to a per-rank file,
//!   barrier, exit.

use crate::executor::{AppRegistry, TaskContext};
use std::io::Write;
use std::time::Duration;

/// Register the standard application set onto `registry`.
pub fn register_standard(registry: &AppRegistry) {
    registry.register("noop", |_ctx: &TaskContext| 0);

    registry.register("sleep", |ctx: &TaskContext| {
        let ms: u64 = match ctx.args.first().map(|a| a.parse()) {
            Some(Ok(ms)) => ms,
            _ => return 2,
        };
        std::thread::sleep(Duration::from_millis(ms));
        0
    });

    registry.register("fail", |ctx: &TaskContext| {
        ctx.args.first().and_then(|a| a.parse().ok()).unwrap_or(1)
    });

    registry.register("mpi-sleep", |ctx: &TaskContext| {
        let ms: u64 = match ctx.args.first().map(|a| a.parse()) {
            Some(Ok(ms)) => ms,
            _ => return 2,
        };
        let mut job = match ctx.mpi() {
            Ok(j) => j,
            Err(_) => return 3,
        };
        if job.comm.barrier().is_err() {
            return 4;
        }
        std::thread::sleep(Duration::from_millis(ms));
        if job.comm.barrier().is_err() {
            return 4;
        }
        if job.finalize().is_err() {
            return 5;
        }
        0
    });

    registry.register("mpi-sleep-write", |ctx: &TaskContext| {
        let (Some(ms), Some(dir)) = (ctx.args.first(), ctx.args.get(1)) else {
            return 2;
        };
        let Ok(ms) = ms.parse::<u64>() else { return 2 };
        let mut job = match ctx.mpi() {
            Ok(j) => j,
            Err(_) => return 3,
        };
        let rank = job.comm.rank();
        if job.comm.barrier().is_err() {
            return 4;
        }
        std::thread::sleep(Duration::from_millis(ms));
        let path = std::path::Path::new(dir).join(format!("rank-{rank}.out"));
        let wrote = std::fs::File::create(&path)
            .and_then(|mut f| writeln!(f, "{rank}"))
            .is_ok();
        if job.comm.barrier().is_err() {
            return 4;
        }
        if job.finalize().is_err() {
            return 5;
        }
        if wrote {
            0
        } else {
            6
        }
    });
}

/// A registry pre-loaded with the standard applications.
pub fn standard_registry() -> AppRegistry {
    let r = AppRegistry::new();
    register_standard(&r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, TaskExecutor};
    use jets_core::protocol::{TaskAssignment, TaskKind};
    use jets_core::spec::CommandSpec;
    use jets_pmi::{PmiServer, PmiServerConfig};
    use std::time::Instant;

    fn seq(cmd: CommandSpec) -> TaskAssignment {
        TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::Sequential { cmd },
            stage: Vec::new(),
            trace: 0,
        }
    }

    #[test]
    fn standard_set_is_registered() {
        let names = standard_registry().names();
        for expected in ["noop", "sleep", "fail", "mpi-sleep", "mpi-sleep-write"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn noop_succeeds_instantly() {
        let exec = Executor::new(standard_registry());
        assert_eq!(exec.execute(&seq(CommandSpec::builtin("noop", vec![]))), 0);
    }

    #[test]
    fn sleep_sleeps() {
        let exec = Executor::new(standard_registry());
        let t = Instant::now();
        let code = exec.execute(&seq(CommandSpec::builtin("sleep", vec!["30".into()])));
        assert_eq!(code, 0);
        assert!(t.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn sleep_rejects_bad_args() {
        let exec = Executor::new(standard_registry());
        assert_eq!(exec.execute(&seq(CommandSpec::builtin("sleep", vec![]))), 2);
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin("sleep", vec!["abc".into()]))),
            2
        );
    }

    #[test]
    fn fail_returns_requested_code() {
        let exec = Executor::new(standard_registry());
        assert_eq!(exec.execute(&seq(CommandSpec::builtin("fail", vec![]))), 1);
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin("fail", vec!["9".into()]))),
            9
        );
    }

    #[test]
    fn mpi_sleep_completes_barrier_sleep_barrier() {
        let server = PmiServer::start(PmiServerConfig::new("apps-test", 2)).unwrap();
        let exec = Executor::new(standard_registry());
        let assignment = TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin("mpi-sleep", vec!["20".into()]),
                ranks: vec![0, 1],
                size: 2,
                pmi_addr: server.addr().to_string(),
                pmi_jobid: "apps-test".into(),
            },
            stage: Vec::new(),
            trace: 0,
        };
        let t = Instant::now();
        assert_eq!(exec.execute(&assignment), 0);
        assert!(t.elapsed() >= Duration::from_millis(20));
        assert_eq!(
            server.wait(Duration::from_secs(10)),
            jets_pmi::JobOutcome::Success
        );
    }

    #[test]
    fn mpi_sleep_write_writes_rank_files() {
        let dir = std::env::temp_dir().join(format!("jets-apps-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = PmiServer::start(PmiServerConfig::new("apps-w", 2)).unwrap();
        let exec = Executor::new(standard_registry());
        let assignment = TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin(
                    "mpi-sleep-write",
                    vec!["5".into(), dir.to_string_lossy().into_owned()],
                ),
                ranks: vec![0, 1],
                size: 2,
                pmi_addr: server.addr().to_string(),
                pmi_jobid: "apps-w".into(),
            },
            stage: Vec::new(),
            trace: 0,
        };
        assert_eq!(exec.execute(&assignment), 0);
        for rank in 0..2 {
            let content = std::fs::read_to_string(dir.join(format!("rank-{rank}.out"))).unwrap();
            assert_eq!(content.trim(), rank.to_string());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
