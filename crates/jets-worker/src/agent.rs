//! The worker agent: connection lifecycle, task loop, kill switch,
//! reconnect with backoff, and dispatcher-driven task cancellation.

use crate::executor::{CancelToken, TaskExecutor, TaskOutcome};
use crate::metrics::WorkerMetrics;
use crate::staging::NodeLocalCache;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError};
use jets_core::protocol::{
    DispatcherMsg, MsgReader, MsgWriter, TaskAssignment, WorkerMsg, EXIT_CANCELED,
};
use jets_core::spec::CommandSpec;
use jets_core::{EventKind, EventLog, SpanKind, WriterRole};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How an agent retries a lost dispatcher connection.
///
/// A pilot job on a real allocation outlives transient network faults:
/// losing the dispatcher for a moment should cost one re-registration,
/// not the node. Backoff is exponential from `base_backoff`, capped at
/// `max_backoff`, with a deterministic seeded jitter shaving up to
/// `jitter` of each sleep so a partitioned allocation's agents do not
/// reconnect in lockstep.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Consecutive failed connection attempts tolerated before giving up.
    pub max_attempts: u32,
    /// First retry delay.
    pub base_backoff: Duration,
    /// Upper bound on one retry delay.
    pub max_backoff: Duration,
    /// Fraction of each delay randomly shaved off (0.0 disables jitter).
    pub jitter: f64,
    /// Seed for the jitter PRNG (deterministic per worker).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.25,
            seed: 1,
        }
    }
}

/// Configuration for one worker agent.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// `host:port` of the dispatcher.
    pub dispatcher_addr: String,
    /// Name reported at registration.
    pub name: String,
    /// Cores this node offers.
    pub cores: u32,
    /// Network location label.
    pub location: String,
    /// Heartbeat period; `None` disables heartbeats.
    pub heartbeat: Option<Duration>,
    /// Delay before the agent connects (models node boot time).
    pub connect_delay: Duration,
    /// Reconnect-with-backoff policy; `None` keeps the legacy
    /// connect-once behaviour (any connection loss ends the agent).
    pub reconnect: Option<ReconnectPolicy>,
    /// After a dispatcher `Cancel`, how long the agent waits for the task
    /// to acknowledge the token before abandoning its thread and
    /// reporting [`EXIT_CANCELED`].
    pub cancel_grace: Duration,
    /// Process-wide metric handles; `None` disables recording. Shared by
    /// every agent of a simulated allocation, so one scrape covers them
    /// all.
    pub metrics: Option<Arc<WorkerMetrics>>,
    /// File-backed flight-recorder ring for this agent's lifecycle
    /// events; `None` (the default) records nothing. Only the file mode
    /// exists on workers: a simulated allocation spawns hundreds of
    /// agents, and an anonymous ring per agent would be pure overhead
    /// nobody can replay after a crash anyway.
    pub flight_recorder: Option<std::path::PathBuf>,
}

impl WorkerConfig {
    /// A minimal configuration for a worker named `name`.
    pub fn new(dispatcher_addr: impl Into<String>, name: impl Into<String>) -> Self {
        WorkerConfig {
            dispatcher_addr: dispatcher_addr.into(),
            name: name.into(),
            cores: 1,
            location: "default".to_string(),
            heartbeat: None,
            connect_delay: Duration::ZERO,
            reconnect: None,
            cancel_grace: Duration::from_millis(200),
            metrics: None,
            flight_recorder: None,
        }
    }

    /// Builder-style reconnect policy.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }

    /// Builder-style metric handles (shared across a process's agents).
    pub fn with_metrics(mut self, metrics: Arc<WorkerMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Builder-style flight-recorder file: the agent's lifecycle events
    /// land in a crash-durable ring at `path`.
    pub fn with_flight_recorder(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.flight_recorder = Some(path.into());
        self
    }
}

/// Why the worker loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The dispatcher sent `Shutdown`.
    Shutdown,
    /// The kill switch fired (fault injection).
    Killed,
    /// The connection failed or could not be established.
    ConnectionLost,
}

/// Final report from a worker agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerExit {
    /// Tasks executed and reported.
    pub tasks_done: u64,
    /// Why the loop ended.
    pub reason: ExitReason,
}

/// A running worker agent (persistent pilot job).
pub struct Worker {
    kill_flag: Arc<AtomicBool>,
    sock: Arc<Mutex<Option<TcpStream>>>,
    handle: Option<JoinHandle<WorkerExit>>,
    name: String,
    events: Option<EventLog>,
}

impl Worker {
    /// Start a worker agent on its own thread. Connection happens inside
    /// the thread, so spawning a large simulated allocation is fast.
    pub fn spawn(config: WorkerConfig, executor: Arc<dyn TaskExecutor>) -> Worker {
        let kill_flag = Arc::new(AtomicBool::new(false));
        let sock = Arc::new(Mutex::new(None));
        let name = config.name.clone();
        // The flight recorder is opened here (not in the loop thread) so
        // a bad path surfaces before the agent silently runs unrecorded,
        // and so callers can read the same ring via `events()`. A failed
        // open degrades to no recording: the agent's job is running
        // tasks, not archiving its own diagnostics.
        let events =
            config
                .flight_recorder
                .as_ref()
                .and_then(|path| {
                    match EventLog::file_backed_with_role(
                        path,
                        jets_core::events::DEFAULT_EVENT_CAPACITY,
                        WriterRole::Worker,
                    ) {
                        Ok(log) => Some(log),
                        Err(err) => {
                            eprintln!(
                                "worker {name}: flight recorder {} unavailable: {err}",
                                path.display()
                            );
                            None
                        }
                    }
                });
        let loop_kill = Arc::clone(&kill_flag);
        let loop_sock = Arc::clone(&sock);
        let loop_events = events.clone();
        let handle = thread::Builder::new()
            .name(format!("worker-{name}"))
            .stack_size(256 * 1024)
            .spawn(move || worker_loop(config, executor, loop_kill, loop_sock, loop_events))
            .expect("spawn worker thread");
        Worker {
            kill_flag,
            sock,
            handle: Some(handle),
            name,
            events,
        }
    }

    /// The worker's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's flight-recorder log, when one was configured and its
    /// file opened. Handing out a clone is free — `EventLog` is a shared
    /// handle — and reading it never blocks the agent's writes.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Kill the worker abruptly: sever the dispatcher connection without a
    /// goodbye, abandoning any in-flight task. This is the fault-injection
    /// primitive of the paper's Fig. 10 experiment: the dispatcher sees
    /// EOF, marks the worker dead, and requeues its job.
    pub fn kill(&self) {
        self.kill_flag.store(true, Ordering::Release);
        if let Some(stream) = self.sock.lock().as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Sever the dispatcher connection *without* setting the kill flag:
    /// the agent sees EOF and — when configured with a
    /// [`ReconnectPolicy`] — registers again after backoff. This is the
    /// chaos harness's network-partition primitive; [`Worker::kill`]
    /// remains the permanent-death primitive.
    pub fn disconnect(&self) {
        if let Some(stream) = self.sock.lock().as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// True once the agent thread has exited.
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Wait for the agent to exit and collect its report.
    pub fn join(mut self) -> WorkerExit {
        self.handle
            .take()
            .expect("join called once")
            .join()
            .unwrap_or(WorkerExit {
                tasks_done: 0,
                reason: ExitReason::ConnectionLost,
            })
    }
}

/// Exit code reported when node-local staging fails before the task runs.
pub const EXIT_STAGING_FAILED: i32 = 13;

/// Lazily-created node-local cache (most workers never stage anything).
#[derive(Default)]
struct LazyCache {
    cache: Option<NodeLocalCache>,
}

impl LazyCache {
    fn get_or_init(&mut self, worker_name: &str) -> std::io::Result<&NodeLocalCache> {
        if self.cache.is_none() {
            let dir = std::env::temp_dir()
                .join(format!("jets-local-{worker_name}-{}", std::process::id()));
            self.cache = Some(NodeLocalCache::new(dir)?);
        }
        Ok(self.cache.as_ref().expect("just initialized"))
    }
}

/// Append an environment variable to the assignment's command.
fn push_env(assignment: &mut TaskAssignment, key: &str, value: &str) {
    let cmd = match &mut assignment.kind {
        jets_core::protocol::TaskKind::Sequential { cmd } => cmd,
        jets_core::protocol::TaskKind::MpiProxy { cmd, .. } => cmd,
    };
    let env = match cmd {
        CommandSpec::Exec { env, .. } | CommandSpec::Builtin { env, .. } => env,
    };
    env.push((key.to_string(), value.to_string()));
}

/// Report a task failure that happened before execution started.
fn report_failure(
    writer: &Arc<Mutex<MsgWriter<TcpStream>>>,
    task_id: u64,
    exit_code: i32,
    trace: u64,
) {
    let _ = writer.lock().send(&WorkerMsg::Done {
        task_id,
        exit_code,
        wall_ms: 0,
        output: None,
        trace,
    });
}

/// One xorshift64 step. The agent has no RNG dependency; this is plenty
/// for backoff jitter and fully deterministic per seed.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Decrements the in-flight gauge when the task wait loop exits, on
/// every path (report, session loss, kill, abandoned grace).
struct InflightGuard<'a>(&'a jets_obs::Gauge);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Records `WorkerDown` into the flight recorder when a registered
/// session ends, on every exit path — the ring replay then pairs one
/// down with every `WorkerUp`.
struct SessionEventGuard<'a> {
    events: Option<&'a EventLog>,
    worker: u64,
}

impl Drop for SessionEventGuard<'_> {
    fn drop(&mut self) {
        if let Some(log) = self.events {
            log.record(EventKind::WorkerDown {
                worker: self.worker,
            });
        }
    }
}

/// How one dispatcher session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEnd {
    /// Dispatcher said `Shutdown` — the agent is done.
    Shutdown,
    /// The kill switch fired — the agent is done.
    Killed,
    /// The connection dropped; a reconnect policy may start a new session.
    Lost,
}

/// A task whose session died under it: the execution thread keeps
/// running, and these handles let the *next* session claim the task,
/// honour a late `Cancel`, and report the outcome.
struct CarriedTask {
    task_id: u64,
    job_id: u64,
    /// Trace id from the assignment, so the replayed `Done` and the
    /// deferred exec span-end still correlate with the submission.
    trace: u64,
    rx: Receiver<TaskOutcome>,
    cancel: CancelToken,
    started: Instant,
    canceled: bool,
    cancel_deadline: Option<Instant>,
}

/// Task state that outlives one dispatcher session.
///
/// A dispatcher restart severs every connection but kills no worker
/// process: the pilot's task is still running and its results still
/// matter. The agent carries both across the gap — the in-flight task
/// (claimed via [`WorkerMsg::SessionState`] so a recovering dispatcher
/// re-adopts the gang instead of relaunching it) and any terminal
/// `Done` report that never reached the old wire (replayed verbatim
/// after the next registration, so the dispatcher hears every result
/// exactly once).
#[derive(Default)]
struct CarryState {
    /// Terminal reports whose send failed: replayed after re-register.
    stashed: Vec<WorkerMsg>,
    /// The in-flight task surviving the outage, if any.
    running: Option<CarriedTask>,
}

fn worker_loop(
    config: WorkerConfig,
    executor: Arc<dyn TaskExecutor>,
    kill: Arc<AtomicBool>,
    sock_slot: Arc<Mutex<Option<TcpStream>>>,
    events: Option<EventLog>,
) -> WorkerExit {
    if !config.connect_delay.is_zero() {
        thread::sleep(config.connect_delay);
        if kill.load(Ordering::Acquire) {
            return WorkerExit {
                tasks_done: 0,
                reason: ExitReason::Killed,
            };
        }
    }
    let mut tasks_done = 0u64;
    let mut local_cache = LazyCache::default();
    let mut carry = CarryState::default();
    let mut failed_attempts = 0u32;
    let mut jitter_state = config
        .reconnect
        .as_ref()
        .map(|p| p.seed)
        .unwrap_or(1)
        .max(1);
    loop {
        if kill.load(Ordering::Acquire) {
            return WorkerExit {
                tasks_done,
                reason: ExitReason::Killed,
            };
        }
        if let Ok(stream) = TcpStream::connect(&config.dispatcher_addr) {
            failed_attempts = 0;
            match run_session(
                stream,
                &config,
                &executor,
                &kill,
                &sock_slot,
                &mut local_cache,
                &mut tasks_done,
                &mut carry,
                events.as_ref(),
            ) {
                SessionEnd::Shutdown => {
                    return WorkerExit {
                        tasks_done,
                        reason: ExitReason::Shutdown,
                    }
                }
                SessionEnd::Killed => {
                    return WorkerExit {
                        tasks_done,
                        reason: ExitReason::Killed,
                    }
                }
                SessionEnd::Lost => {
                    if let Some(m) = &config.metrics {
                        m.connections_lost_total.inc();
                    }
                }
            }
        }
        // Connection failed or the session dropped: retry under the
        // reconnect policy, or end the agent the legacy way.
        let Some(policy) = &config.reconnect else {
            return WorkerExit {
                tasks_done,
                reason: ExitReason::ConnectionLost,
            };
        };
        failed_attempts += 1;
        if failed_attempts > policy.max_attempts {
            return WorkerExit {
                tasks_done,
                reason: ExitReason::ConnectionLost,
            };
        }
        // Exponential backoff, capped, with up to `jitter` shaved off so
        // a partitioned allocation does not reconnect in lockstep.
        let shift = (failed_attempts - 1).min(16);
        let backoff = policy
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(policy.max_backoff);
        let frac = (xorshift64(&mut jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
        let mut remaining = backoff.mul_f64(1.0 - policy.jitter.clamp(0.0, 1.0) * frac);
        // Sleep in slices so a kill during backoff is honoured promptly.
        while !remaining.is_zero() {
            if kill.load(Ordering::Acquire) {
                return WorkerExit {
                    tasks_done,
                    reason: ExitReason::Killed,
                };
            }
            let slice = remaining.min(Duration::from_millis(20));
            thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// Run one registered dispatcher session over an established stream:
/// register, heartbeat, request/execute/report until the connection ends.
#[allow(clippy::too_many_arguments)]
fn run_session(
    stream: TcpStream,
    config: &WorkerConfig,
    executor: &Arc<dyn TaskExecutor>,
    kill: &Arc<AtomicBool>,
    sock_slot: &Arc<Mutex<Option<TcpStream>>>,
    local_cache: &mut LazyCache,
    tasks_done: &mut u64,
    carry: &mut CarryState,
    events: Option<&EventLog>,
) -> SessionEnd {
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return SessionEnd::Lost;
    };
    if let Ok(clone) = stream.try_clone() {
        *sock_slot.lock() = Some(clone);
    }
    // All writes (task loop + heartbeats) go through this mutex so JSON
    // lines never interleave. The `MsgWriter` reuses one encode buffer
    // for every message this session will ever send.
    let writer = Arc::new(Mutex::new(MsgWriter::new(write_half)));

    // Reader thread: socket → inbox channel, `None` marking connection
    // loss. Decoupling the read from the task loop is what lets a
    // `Cancel` arrive *while* a task is running.
    let (inbox_tx, inbox) = unbounded::<Option<DispatcherMsg>>();
    {
        let mut reader = MsgReader::new(BufReader::new(stream));
        // A session without a reader cannot hear assignments: treat a
        // failed spawn like a lost connection and retry via the normal
        // reconnect policy.
        if thread::Builder::new()
            .name(format!("rx-{}", config.name))
            .stack_size(128 * 1024)
            .spawn(move || loop {
                match reader.recv::<DispatcherMsg>() {
                    Ok(Some(msg)) => {
                        if inbox_tx.send(Some(msg)).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = inbox_tx.send(None);
                        return;
                    }
                }
            })
            .is_err()
        {
            return SessionEnd::Lost;
        }
    }

    let lost_or_killed = || {
        if kill.load(Ordering::Acquire) {
            SessionEnd::Killed
        } else {
            SessionEnd::Lost
        }
    };

    if writer
        .lock()
        .send(&WorkerMsg::Register {
            name: config.name.clone(),
            cores: config.cores,
            location: config.location.clone(),
        })
        .is_err()
    {
        return lost_or_killed();
    }
    let worker_id = match inbox.recv() {
        Ok(Some(DispatcherMsg::Registered { worker_id })) => {
            if let Some(m) = &config.metrics {
                m.sessions_total.inc();
            }
            worker_id
        }
        // Anything but the Registered ack before the handshake
        // completes means a confused or dying dispatcher: resync by
        // tearing the session down and reconnecting.
        Ok(Some(
            DispatcherMsg::Assign(_)
            | DispatcherMsg::Cancel { .. }
            | DispatcherMsg::Shutdown
            | DispatcherMsg::RelayRegistered { .. }
            | DispatcherMsg::RelayAssign { .. }
            | DispatcherMsg::RelayCancel { .. },
        ))
        | Ok(None)
        | Err(_) => return lost_or_killed(),
    };
    if let Some(log) = events {
        log.record(EventKind::WorkerUp { worker: worker_id });
    }
    // Drop guard, not per-return records: the session exits from many
    // arms below, and the replayed ring should show one `WorkerDown`
    // for every `WorkerUp` on all of them.
    let _session_events = SessionEventGuard {
        events,
        worker: worker_id,
    };

    // Recovery handshake (dispatcher crash recovery): claim the task
    // carried from the previous session so a restarted dispatcher can
    // re-adopt its gang during the reconciliation window — an
    // established dispatcher answers an unknown claim with `Cancel` —
    // then replay terminal reports that never made it onto the old
    // wire, oldest first, keeping the rest stashed if this wire dies
    // too.
    if carry.running.is_some() || !carry.stashed.is_empty() {
        let claim = carry.running.as_ref().map(|t| (t.task_id, t.job_id));
        if writer
            .lock()
            .send(&WorkerMsg::SessionState { running: claim })
            .is_err()
        {
            return lost_or_killed();
        }
        while let Some(msg) = carry.stashed.first() {
            if writer.lock().send(msg).is_err() {
                return lost_or_killed();
            }
            carry.stashed.remove(0);
            *tasks_done += 1;
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    if let Some(period) = config.heartbeat {
        let hb_writer = Arc::clone(&writer);
        let hb_stop = Arc::clone(&stop);
        let hb_kill = Arc::clone(kill);
        // Without heartbeats the dispatcher would eventually declare
        // this worker hung; better to fail the session now and retry
        // than to register silently and be quarantined later.
        if thread::Builder::new()
            .name(format!("hb-{}", config.name))
            .stack_size(64 * 1024)
            .spawn(move || {
                while !hb_stop.load(Ordering::Acquire) && !hb_kill.load(Ordering::Acquire) {
                    thread::sleep(period);
                    if hb_writer.lock().send(&WorkerMsg::Heartbeat).is_err() {
                        return;
                    }
                }
            })
            .is_err()
        {
            return lost_or_killed();
        }
    }

    // Wait out the carried task (if any) before asking for new work;
    // only then fall into the ordinary request/execute/report loop.
    let end = match resume_carried_task(config, kill, &writer, &inbox, tasks_done, carry, events) {
        Some(end) => end,
        None => session_task_loop(
            config,
            executor,
            kill,
            local_cache,
            tasks_done,
            &writer,
            &inbox,
            carry,
            events,
            worker_id,
        ),
    };
    stop.store(true, Ordering::Release);
    if end == SessionEnd::Shutdown {
        let _ = writer.lock().send(&WorkerMsg::Goodbye);
    }
    end
}

/// The request → execute → report loop of one session.
#[allow(clippy::too_many_arguments)]
fn session_task_loop(
    config: &WorkerConfig,
    executor: &Arc<dyn TaskExecutor>,
    kill: &Arc<AtomicBool>,
    local_cache: &mut LazyCache,
    tasks_done: &mut u64,
    writer: &Arc<Mutex<MsgWriter<TcpStream>>>,
    inbox: &Receiver<Option<DispatcherMsg>>,
    carry: &mut CarryState,
    events: Option<&EventLog>,
    worker_id: u64,
) -> SessionEnd {
    let lost_or_killed = || {
        if kill.load(Ordering::Acquire) {
            SessionEnd::Killed
        } else {
            SessionEnd::Lost
        }
    };
    'session: loop {
        if kill.load(Ordering::Acquire) {
            break SessionEnd::Killed;
        }
        if writer.lock().send(&WorkerMsg::Request).is_err() {
            break lost_or_killed();
        }
        let mut assignment = loop {
            match inbox.recv() {
                Ok(Some(DispatcherMsg::Assign(a))) => break a,
                Ok(Some(DispatcherMsg::Shutdown)) => break 'session SessionEnd::Shutdown,
                // A cancel racing a task that already reported: ignore.
                Ok(Some(DispatcherMsg::Cancel { .. })) => continue,
                // Stray acks and relay-scoped envelopes (a worker never
                // receives routed frames — its relay unwraps them): ignore.
                Ok(Some(
                    DispatcherMsg::Registered { .. }
                    | DispatcherMsg::RelayRegistered { .. }
                    | DispatcherMsg::RelayAssign { .. }
                    | DispatcherMsg::RelayCancel { .. },
                )) => continue,
                Ok(None) | Err(_) => break 'session lost_or_killed(),
            }
        };

        // Node-local staging (paper Section 5, feature 2): copy the job's
        // listed files into this node's cache once, then expose the cache
        // directory to the task.
        if !assignment.stage.is_empty() {
            let (trace, job, task) = (assignment.trace, assignment.job_id, assignment.task_id);
            if let Some(log) = events {
                log.span_start(trace, SpanKind::Stage, WriterRole::Worker, job, task);
            }
            // The span closes on failure too — a stage span whose end
            // abuts a failed report is exactly what the trace should show.
            let staged = match local_cache.get_or_init(&config.name) {
                Ok(cache) => cache.stage_all(&assignment.stage).is_ok().then(|| {
                    push_env(
                        &mut assignment,
                        "JETS_LOCAL_DIR",
                        &cache.dir().to_string_lossy(),
                    );
                }),
                Err(_) => None,
            };
            if let Some(log) = events {
                log.span_end(trace, SpanKind::Stage, WriterRole::Worker, job, task);
            }
            if staged.is_none() {
                if let Some(m) = &config.metrics {
                    m.staging_failed_total.inc();
                }
                report_failure(writer, task, EXIT_STAGING_FAILED, trace);
                continue;
            }
        }

        // Execute on a dedicated thread so a kill or an expired cancel
        // grace can abandon the task (the thread finishes in the
        // background, its result discarded — just as a killed pilot's
        // task dies with the node).
        let (tx, rx) = bounded(1);
        let task_executor = Arc::clone(executor);
        let cancel = CancelToken::new();
        let task_cancel = cancel.clone();
        let task_id = assignment.task_id;
        let job_id = assignment.job_id;
        let trace = assignment.trace;
        let ranks = match &assignment.kind {
            jets_core::protocol::TaskKind::Sequential { .. } => 1,
            jets_core::protocol::TaskKind::MpiProxy { ranks, .. } => ranks.len() as u32,
        };
        let started = Instant::now();
        // A task that never got a thread reports the executor's spawn
        // failure code, exactly as if the process itself had failed to
        // start; the dispatcher's retry ladder takes it from there.
        if thread::Builder::new()
            .name("task".to_string())
            .stack_size(256 * 1024)
            .spawn(move || {
                let outcome = task_executor.execute_cancellable(&assignment, &task_cancel);
                let _ = tx.send(outcome);
            })
            .is_err()
        {
            report_failure(writer, task_id, crate::executor::EXIT_SPAWN_FAILED, trace);
            continue;
        }
        // Guard, not paired inc/dec calls: the wait loop below exits the
        // session from several arms, and the gauge must balance on all
        // of them.
        let _inflight = config.metrics.as_ref().map(|m| {
            m.tasks_inflight.inc();
            InflightGuard(&m.tasks_inflight)
        });
        if let Some(log) = events {
            log.record(EventKind::TaskStarted {
                task: task_id,
                job: job_id,
                worker: worker_id,
                ranks,
            });
            log.span_start(trace, SpanKind::Exec, WriterRole::Worker, job_id, task_id);
        }

        let mut canceled = false;
        let mut cancel_deadline: Option<Instant> = None;
        let mut conn_lost = false;
        let mut shutdown_after = false;
        let result: Option<TaskOutcome> = loop {
            // Drain dispatcher traffic first: a `Cancel` naming the
            // running task trips the token and starts the grace clock.
            while let Ok(msg) = inbox.try_recv() {
                match msg {
                    Some(DispatcherMsg::Cancel { task_id: t }) if t == task_id => {
                        if !canceled {
                            canceled = true;
                            cancel.cancel();
                            cancel_deadline = Some(Instant::now() + config.cancel_grace);
                        }
                    }
                    Some(DispatcherMsg::Cancel { .. }) => {} // stale
                    Some(DispatcherMsg::Shutdown) => shutdown_after = true,
                    // Stray acks / relay-scoped envelopes mid-task: a
                    // worker never acts on routed frames.
                    Some(
                        DispatcherMsg::Registered { .. }
                        | DispatcherMsg::Assign(_)
                        | DispatcherMsg::RelayRegistered { .. }
                        | DispatcherMsg::RelayAssign { .. }
                        | DispatcherMsg::RelayCancel { .. },
                    ) => {}
                    None => conn_lost = true,
                }
            }
            if conn_lost && !kill.load(Ordering::Acquire) {
                // The dispatcher vanished mid-task. Keep the task alive
                // and carry its handles into the next session: a
                // restarted dispatcher re-adopts the gang from our
                // `SessionState` claim, while a dispatcher that merely
                // dropped us answers with `Cancel`. A task already
                // canceled is discounted everywhere — abandon it.
                if !canceled {
                    carry.running = Some(CarriedTask {
                        task_id,
                        job_id,
                        trace,
                        rx,
                        cancel,
                        started,
                        canceled: false,
                        cancel_deadline: None,
                    });
                }
                break 'session SessionEnd::Lost;
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(outcome) => break Some(outcome),
                Err(RecvTimeoutError::Timeout) => {
                    if kill.load(Ordering::Acquire) {
                        break 'session SessionEnd::Killed;
                    }
                    if cancel_deadline.is_some_and(|d| Instant::now() >= d) {
                        break None; // grace expired: abandon the thread
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break None,
            }
        };
        let outcome = match result {
            // A canceled task always reports EXIT_CANCELED — the
            // dispatcher already discounted the task, so the report's
            // only job is recycling this worker via the stale-Done path.
            Some(o) if canceled => TaskOutcome {
                exit_code: EXIT_CANCELED,
                output: o.output,
            },
            Some(o) => o,
            None if canceled => TaskOutcome {
                exit_code: EXIT_CANCELED,
                output: None,
            },
            None => break SessionEnd::Killed,
        };
        let wall_ms = started.elapsed().as_millis() as u64;
        if let Some(log) = events {
            log.span_end(trace, SpanKind::Exec, WriterRole::Worker, job_id, task_id);
            log.record(EventKind::TaskEnded {
                task: task_id,
                job: job_id,
                worker: worker_id,
                ranks,
                exit_code: outcome.exit_code,
                trace,
            });
        }
        if let Some(m) = &config.metrics {
            m.tasks_executed_total.inc();
            if canceled {
                m.tasks_canceled_total.inc();
            } else if outcome.exit_code != 0 {
                m.tasks_failed_total.inc();
            }
            m.task_seconds.record(wall_ms.saturating_mul(1_000));
        }
        let done = WorkerMsg::Done {
            task_id,
            exit_code: outcome.exit_code,
            wall_ms,
            output: outcome.output,
            trace,
        };
        if writer.lock().send(&done).is_err() {
            // The report never reached the wire. Stash it for replay
            // after the next registration so the dispatcher still hears
            // the result exactly once (a canceled report carries no
            // information a recovering dispatcher wants).
            if !kill.load(Ordering::Acquire) && !canceled {
                carry.stashed.push(done);
            }
            break lost_or_killed();
        }
        *tasks_done += 1;
        if shutdown_after {
            break SessionEnd::Shutdown;
        }
    }
}

/// Wait out a task carried across a lost session. The `SessionState`
/// claim is already on the wire; this loop honours the dispatcher's
/// verdict (silence adopts the task, `Cancel` rejects the claim) and
/// reports the outcome exactly as the original session would have.
/// Returns `Some(end)` if the session ended here, `None` to continue
/// into the ordinary task loop.
fn resume_carried_task(
    config: &WorkerConfig,
    kill: &Arc<AtomicBool>,
    writer: &Arc<Mutex<MsgWriter<TcpStream>>>,
    inbox: &Receiver<Option<DispatcherMsg>>,
    tasks_done: &mut u64,
    carry: &mut CarryState,
    events: Option<&EventLog>,
) -> Option<SessionEnd> {
    let mut task = carry.running.take()?;
    let _inflight = config.metrics.as_ref().map(|m| {
        m.tasks_inflight.inc();
        InflightGuard(&m.tasks_inflight)
    });
    let mut shutdown_after = false;
    let result: Option<TaskOutcome> = loop {
        let mut conn_lost = false;
        while let Ok(msg) = inbox.try_recv() {
            match msg {
                Some(DispatcherMsg::Cancel { task_id }) if task_id == task.task_id => {
                    // The claim was rejected (or the job's deadline
                    // fired during the outage): trip the token and give
                    // the task the usual grace to stand down.
                    if !task.canceled {
                        task.canceled = true;
                        task.cancel.cancel();
                        task.cancel_deadline = Some(Instant::now() + config.cancel_grace);
                    }
                }
                Some(DispatcherMsg::Cancel { .. }) => {} // stale
                Some(DispatcherMsg::Shutdown) => shutdown_after = true,
                Some(
                    DispatcherMsg::Registered { .. }
                    | DispatcherMsg::Assign(_)
                    | DispatcherMsg::RelayRegistered { .. }
                    | DispatcherMsg::RelayAssign { .. }
                    | DispatcherMsg::RelayCancel { .. },
                ) => {}
                None => conn_lost = true,
            }
        }
        if conn_lost && !kill.load(Ordering::Acquire) {
            // Lost again before the task finished: keep carrying it
            // into the next session (unless it was canceled — that
            // task is already discounted everywhere).
            if !task.canceled {
                carry.running = Some(task);
            }
            return Some(SessionEnd::Lost);
        }
        match task.rx.recv_timeout(Duration::from_millis(20)) {
            Ok(outcome) => break Some(outcome),
            Err(RecvTimeoutError::Timeout) => {
                if kill.load(Ordering::Acquire) {
                    return Some(SessionEnd::Killed);
                }
                if task.cancel_deadline.is_some_and(|d| Instant::now() >= d) {
                    break None; // grace expired: abandon the thread
                }
            }
            Err(RecvTimeoutError::Disconnected) => break None,
        }
    };
    let outcome = match result {
        Some(o) if task.canceled => TaskOutcome {
            exit_code: EXIT_CANCELED,
            output: o.output,
        },
        Some(o) => o,
        None if task.canceled => TaskOutcome {
            exit_code: EXIT_CANCELED,
            output: None,
        },
        None => return Some(SessionEnd::Killed),
    };
    let wall_ms = task.started.elapsed().as_millis() as u64;
    if let Some(log) = events {
        // Close the exec span the original session opened; the gap the
        // outage caused is inside the span, which is the truth.
        log.span_end(
            task.trace,
            SpanKind::Exec,
            WriterRole::Worker,
            task.job_id,
            task.task_id,
        );
    }
    if let Some(m) = &config.metrics {
        m.tasks_executed_total.inc();
        if task.canceled {
            m.tasks_canceled_total.inc();
        } else if outcome.exit_code != 0 {
            m.tasks_failed_total.inc();
        }
        m.task_seconds.record(wall_ms.saturating_mul(1_000));
    }
    let done = WorkerMsg::Done {
        task_id: task.task_id,
        exit_code: outcome.exit_code,
        wall_ms,
        output: outcome.output,
        trace: task.trace,
    };
    if writer.lock().send(&done).is_err() {
        if kill.load(Ordering::Acquire) {
            return Some(SessionEnd::Killed);
        }
        if !task.canceled {
            carry.stashed.push(done);
        }
        return Some(SessionEnd::Lost);
    }
    *tasks_done += 1;
    if shutdown_after {
        return Some(SessionEnd::Shutdown);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::standard_registry;
    use crate::executor::Executor;
    use jets_core::spec::{CommandSpec, JobSpec};
    use jets_core::{Dispatcher, DispatcherConfig, JobStatus};

    const WAIT: Duration = Duration::from_secs(30);

    fn executor() -> Arc<dyn TaskExecutor> {
        Arc::new(Executor::new(standard_registry()))
    }

    fn spawn_workers(d: &Dispatcher, n: usize) -> Vec<Worker> {
        let exec = executor();
        (0..n)
            .map(|i| {
                Worker::spawn(
                    WorkerConfig::new(d.addr().to_string(), format!("w{i}")),
                    Arc::clone(&exec),
                )
            })
            .collect()
    }

    #[test]
    fn worker_runs_sequential_jobs_end_to_end() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let workers = spawn_workers(&d, 2);
        let ids = d
            .submit_all((0..10).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        let total: u64 = workers.into_iter().map(|w| w.join().tasks_done).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_runs_mpi_job_end_to_end() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let workers = spawn_workers(&d, 4);
        let id = d.submit(JobSpec::mpi(
            4,
            CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
        ));
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        for w in workers {
            assert_eq!(w.join().reason, ExitReason::Shutdown);
        }
    }

    #[test]
    fn mpi_job_with_ppn_runs_all_ranks() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let workers = spawn_workers(&d, 2);
        // 2 nodes × 3 ranks = 6-rank job.
        let id = d.submit(JobSpec::mpi_ppn(
            2,
            3,
            CommandSpec::builtin("mpi-sleep", vec!["5".into()]),
        ));
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        for w in workers {
            w.join();
        }
    }

    #[test]
    fn killed_worker_reports_killed_and_dispatcher_requeues() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let workers = spawn_workers(&d, 1);
        let id = d.submit(
            JobSpec::sequential(CommandSpec::builtin("sleep", vec!["500".into()])).with_retries(1),
        );
        // Let the task start, then kill the pilot mid-task.
        thread::sleep(Duration::from_millis(100));
        workers[0].kill();
        let exit = workers.into_iter().next().unwrap().join();
        assert_eq!(exit.reason, ExitReason::Killed);
        assert_eq!(exit.tasks_done, 0);
        // A replacement worker completes the requeued job.
        let replacement = spawn_workers(&d, 1);
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        for w in replacement {
            w.join();
        }
    }

    #[test]
    fn shutdown_reaches_idle_workers() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let workers = spawn_workers(&d, 3);
        // Give them time to park.
        thread::sleep(Duration::from_millis(100));
        d.shutdown();
        for w in workers {
            assert_eq!(w.join().reason, ExitReason::Shutdown);
        }
    }

    #[test]
    fn staged_files_reach_the_task_through_the_local_cache() {
        let dir = std::env::temp_dir().join(format!("agent-stage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let source = dir.join("params.dat");
        std::fs::write(&source, "force-field v2").unwrap();

        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let registry = standard_registry();
        registry.register("read-local", |ctx: &crate::executor::TaskContext| {
            let Some(local_dir) = ctx.env("JETS_LOCAL_DIR") else {
                return 40;
            };
            match std::fs::read_to_string(std::path::Path::new(&local_dir).join("params.dat")) {
                Ok(content) if content == "force-field v2" => 0,
                Ok(_) => 41,
                Err(_) => 42,
            }
        });
        let w = Worker::spawn(
            WorkerConfig::new(d.addr().to_string(), "stager"),
            Arc::new(Executor::new(registry)),
        );
        let spec =
            JobSpec::sequential(CommandSpec::builtin("read-local", vec![])).with_stage(vec![
                jets_core::spec::StageFile::new(source.to_string_lossy().into_owned()),
            ]);
        // Submit twice: the second run must hit the cache (same success).
        let a = d.submit(spec.clone());
        let b = d.submit(spec);
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(a).unwrap().status, JobStatus::Succeeded);
        assert_eq!(d.job_record(b).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        w.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staging_failure_fails_the_task_not_the_worker() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let w = Worker::spawn(
            WorkerConfig::new(d.addr().to_string(), "stager2"),
            executor(),
        );
        let bad = JobSpec::sequential(CommandSpec::builtin("noop", vec![]))
            .with_stage(vec![jets_core::spec::StageFile::new("/no/such/input")]);
        let id = d.submit(bad);
        // The worker survives and still runs ordinary work afterwards.
        let ok = d.submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
        assert!(d.wait_idle(WAIT));
        let failed = d.job_record(id).unwrap();
        assert_eq!(failed.status, JobStatus::Failed);
        assert_eq!(failed.exit_codes, vec![EXIT_STAGING_FAILED]);
        assert_eq!(d.job_record(ok).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        w.join();
    }

    #[test]
    fn carried_task_yields_to_dispatcher_verdict_after_disconnect() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let w = Worker::spawn(
            WorkerConfig::new(d.addr().to_string(), "carrier")
                .with_reconnect(ReconnectPolicy::default()),
            executor(),
        );
        let id = d.submit(
            JobSpec::sequential(CommandSpec::builtin("sleep", vec!["400".into()])).with_retries(1),
        );
        thread::sleep(Duration::from_millis(100));
        // Sever the link mid-task without killing the pilot. The agent
        // carries the running task into its next session and claims it
        // via `SessionState`; this dispatcher never died, already
        // requeued the job, and rejects the claim with `Cancel` — the
        // retry then runs to completion on the same (recycled) worker.
        w.disconnect();
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        assert_eq!(w.join().reason, ExitReason::Shutdown);
    }

    #[test]
    fn connect_failure_is_reported() {
        // Port 1 on localhost should refuse connections.
        let w = Worker::spawn(WorkerConfig::new("127.0.0.1:1", "lost"), executor());
        let exit = w.join();
        assert_eq!(exit.reason, ExitReason::ConnectionLost);
    }

    #[test]
    fn heartbeats_keep_worker_alive_under_hang_detection() {
        let config = DispatcherConfig {
            heartbeat_timeout: Some(Duration::from_millis(300)),
            ..DispatcherConfig::default()
        };
        let d = Dispatcher::start(config).unwrap();
        let exec = executor();
        let w = Worker::spawn(
            WorkerConfig {
                heartbeat: Some(Duration::from_millis(50)),
                ..WorkerConfig::new(d.addr().to_string(), "hb")
            },
            exec,
        );
        // A long-running task: heartbeats must prevent the monitor from
        // declaring the busy worker hung.
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin(
            "sleep",
            vec!["700".into()],
        )));
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        assert_eq!(w.join().reason, ExitReason::Shutdown);
    }
}
