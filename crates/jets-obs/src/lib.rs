//! # jets-obs — observability primitives for the JETS stack
//!
//! The paper's evaluation (utilization per Eq. 1, task-rate curves,
//! run-time distributions) is computed from dispatcher timing records;
//! this crate makes the same signals available *live*, while a run is in
//! flight, instead of only after an `EventLog` dump.
//!
//! Three layers, all `std`-only with zero external dependencies:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free recording
//!   primitives. A handle is an `Arc` to a fixed set of `AtomicU64`s, so
//!   hot-path recording is a single `fetch_add` (three for histograms)
//!   and can sit on the dispatcher's scheduling path without regressing
//!   the `micro_dispatch` burst numbers.
//! * [`Registry`] — names, help text, and labels; renders Prometheus
//!   text exposition format. Only locked on registration and render.
//! * [`serve_metrics`] — a one-thread HTTP responder for
//!   `GET /metrics` / `GET /healthz`, plus [`scrape`], the matching
//!   client used by `jets top` and the integration tests.
//!
//! The dispatcher, relay daemon, and worker agent each own a `Registry`
//! and expose it behind an optional `--metrics-addr` flag; the metric
//! name reference lives in `docs/observability.md`.

mod http;
mod metrics;

pub use http::{scrape, serve_metrics, MetricsServer};
pub use metrics::{
    register_build_info, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Unit,
};
