//! Lock-free metric primitives and the registry that renders them.
//!
//! Everything on the recording side is a single atomic RMW: counters and
//! gauges are one `fetch_add`/`fetch_sub`, histograms are three (bucket,
//! count, sum). No allocation, no locking, no branching beyond the bucket
//! index computation — a metric handle can sit on the dispatcher's
//! scheduling hot path without showing up in `micro_dispatch`.
//!
//! The registry itself is only touched on the *cold* paths: metric
//! registration at startup and text rendering when `/metrics` is scraped.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, ready workers, …). Signed so a
/// dec-past-zero bug shows up as `-1` in a scrape instead of 2^64-1.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Overwrite with an absolute level (monitor-tick sampling).
    pub fn set(&self, n: i64) {
        // jets-lint: allow(relaxed) sampled snapshot value: scrapes tolerate a stale level; nothing is published through this store
        self.v.store(n, Ordering::Relaxed);
    }

    /// Increment the level.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement the level.
    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Values below this record into exact unit-wide buckets.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per octave above [`LINEAR_MAX`] (4 bits of mantissa —
/// bucket bounds are within 1/16 ≈ 6% of the recorded value).
const SUB: usize = 16;
/// Octaves 4..=63 each contribute [`SUB`] buckets after the linear range.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * SUB;

/// Log-linear bucketed histogram over `u64` samples (by convention:
/// microseconds for latency metrics; the registry renders those as
/// seconds).
///
/// Layout is the classic HDR shape: exact buckets below [`LINEAR_MAX`],
/// then 16 linear sub-buckets per power-of-two octave, giving ≤ 6%
/// relative error on quantiles across the full `u64` range for a fixed
/// 7.6 KiB of `AtomicU64`s. Recording is wait-free; snapshots read the
/// buckets racily, which can momentarily undercount the tail but never
/// invents samples: `record` bumps `count` *before* the bucket and
/// publishes the bucket increment with `Release`, so a snapshot that
/// sums an increment is guaranteed a subsequent `count()` covers it
/// (`tests/hammer.rs` races this).
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Point-in-time quantile view of a [`Histogram`], in the histogram's
/// recorded unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (upper bound of the bucket holding the 50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, p99={})",
            s.count, s.p50, s.p99
        )
    }
}

/// Bucket index for a sample.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        LINEAR_MAX as usize + (msb - 4) * SUB + sub
    }
}

/// Inclusive upper bound of a bucket, used as the quantile estimate.
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = 4 + rel / SUB;
        let sub = (rel % SUB) as u64;
        let width = 1u64 << (octave - 4);
        // lower + (width - 1); for the top bucket this is exactly
        // `u64::MAX`, so the additions below cannot overflow.
        (1u64 << octave) + sub * width + (width - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample. Three `fetch_add`s, nothing else. `count`
    /// and `sum` land first; the bucket increment's `Release` orders
    /// them before it, so a reader that observes the bucket (snapshot
    /// sums are `Acquire`) also observes the totals that cover it.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Quantile estimates from the current bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            // Acquire pairs with `record`'s Release: every sample this
            // sum sees is already covered by `count`/`sum`.
            let c = b.load(Ordering::Acquire);
            counts[i] = c;
            total += c;
        }
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(NUM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// How a histogram's samples should be rendered in the exposition text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Samples are raw counts; render as-is.
    Raw,
    /// Samples are microseconds; render as fractional seconds (so the
    /// metric name can follow the Prometheus `_seconds` convention).
    Micros,
}

enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Unit),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    kind: Kind,
}

/// Named collection of metrics, rendered in Prometheus text exposition
/// format. Registration and rendering lock a `Mutex`; the returned
/// handles never do.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn push(&self, e: Entry) {
        let mut g = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        g.push(e);
    }

    /// Register a counter and return its recording handle.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind: Kind::Counter(c.clone()),
        });
        c
    }

    /// Register a gauge and return its recording handle.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(Entry {
            name,
            help,
            labels: Vec::new(),
            kind: Kind::Gauge(g.clone()),
        });
        g
    }

    /// Register a gauge with a fixed label set (e.g. the
    /// `jets_build_info` identity gauge) and return its recording
    /// handle. Labels are rendered on every sample of this series.
    pub fn gauge_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            kind: Kind::Gauge(g.clone()),
        });
        g
    }

    /// Register a histogram of microsecond samples, exposed as a
    /// Prometheus summary in seconds with p50/p95/p99 quantiles. The
    /// label pair distinguishes series sharing one metric name (e.g.
    /// `phase="queue"`).
    pub fn histogram_micros(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            kind: Kind::Histogram(h.clone(), Unit::Micros),
        });
        h
    }

    /// Register a histogram of raw (unit-less) samples.
    pub fn histogram_raw(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            kind: Kind::Histogram(h.clone(), Unit::Raw),
        });
        h
    }

    /// Render every registered metric as Prometheus text exposition
    /// format (version 0.0.4). Entries sharing a metric name (labelled
    /// series) emit one `# HELP`/`# TYPE` header for the group.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::with_capacity(entries.len() * 96);
        let mut last_name = "";
        for e in entries.iter() {
            if e.name != last_name {
                let ty = match e.kind {
                    Kind::Counter(_) => "counter",
                    Kind::Gauge(_) => "gauge",
                    Kind::Histogram(..) => "summary",
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, ty);
                last_name = e.name;
            }
            match &e.kind {
                Kind::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label_str(&e.labels, None), c.get());
                }
                Kind::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label_str(&e.labels, None), g.get());
                }
                Kind::Histogram(h, unit) => {
                    let s = h.snapshot();
                    for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            e.name,
                            label_str(&e.labels, Some(q)),
                            fmt_sample(v, *unit)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        e.name,
                        label_str(&e.labels, None),
                        fmt_sample(s.sum, *unit)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        e.name,
                        label_str(&e.labels, None),
                        s.count
                    );
                }
            }
        }
        out
    }
}

/// Register the conventional `jets_build_info` identity gauge: constant
/// value 1 with the build's version and git hash as labels, so scrapes
/// across a cluster can spot mixed-version deployments at a glance.
/// Callers pass their own compile-time identity (typically
/// `env!("CARGO_PKG_VERSION")` and an `option_env!`-provided hash).
pub fn register_build_info(registry: &Registry, version: &str, git_hash: &str) {
    registry
        .gauge_labeled(
            "jets_build_info",
            "Build identity (constant 1; version and git hash in labels)",
            &[("version", version), ("git_hash", git_hash)],
        )
        .set(1);
}

fn fmt_sample(v: u64, unit: Unit) -> String {
    match unit {
        Unit::Raw => v.to_string(),
        Unit::Micros => format!("{:.6}", v as f64 / 1_000_000.0),
    }
}

fn label_str(labels: &[(&'static str, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::default();
        g.set(7);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 6);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            1_000_000,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < NUM_BUCKETS);
            assert!(bucket_upper(idx) >= v, "upper bound below sample at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_upper_error_is_bounded() {
        // Above the linear range the relative error of the bucket upper
        // bound is at most one sub-bucket width: 1/16.
        for v in [20u64, 100, 999, 12_345, 1 << 20, (1 << 40) + 12345] {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v);
            assert!(
                (up - v) as f64 <= v as f64 / 16.0 + 1.0,
                "error too large at {v}: {up}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        // p50 of uniform 1..=1000 lands near 500 (within bucket error).
        assert!((450..=560).contains(&s.p50), "p50 = {}", s.p50);
        assert!((900..=1024).contains(&s.p95), "p95 = {}", s.p95);
        assert!((950..=1024).contains(&s.p99), "p99 = {}", s.p99);
        assert!(s.p95 < s.p99, "p95 {} !< p99 {}", s.p95, s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn render_groups_labelled_series() {
        let r = Registry::new();
        let c = r.counter("jets_jobs_completed_total", "Jobs finished");
        let g = r.gauge("jets_workers_ready", "Idle registered workers");
        let h1 = r.histogram_micros(
            "jets_job_phase_seconds",
            "Phase latency",
            &[("phase", "queue")],
        );
        let h2 = r.histogram_micros(
            "jets_job_phase_seconds",
            "Phase latency",
            &[("phase", "run")],
        );
        c.add(3);
        g.set(16);
        h1.record(1_000);
        h2.record(2_000_000);
        let text = r.render();
        assert!(text.contains("# TYPE jets_jobs_completed_total counter"));
        assert!(text.contains("jets_jobs_completed_total 3"));
        assert!(text.contains("# TYPE jets_workers_ready gauge"));
        assert!(text.contains("jets_workers_ready 16"));
        // One TYPE header for the grouped histogram despite two series.
        assert_eq!(
            text.matches("# TYPE jets_job_phase_seconds summary")
                .count(),
            1
        );
        assert!(text.contains("jets_job_phase_seconds{phase=\"queue\",quantile=\"0.5\"}"));
        assert!(text.contains("jets_job_phase_seconds_count{phase=\"run\"} 1"));
        // Microsecond samples render as seconds.
        assert!(text.contains("jets_job_phase_seconds_sum{phase=\"queue\"} 0.001000"));
    }
}
