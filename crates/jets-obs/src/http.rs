//! Std-only HTTP/1.0 responder for `GET /metrics` and `GET /healthz`.
//!
//! One named thread accepts connections on a non-blocking listener and
//! answers each request inline — a scrape is a single short-lived
//! connection, so there is no per-connection thread and nothing shared
//! with the dispatcher beyond the lock-free metric handles. The registry
//! is rendered to a `String` *before* any socket write, so no lock is
//! ever held across network I/O.
//!
//! Between scrapes the accept loop parks on `poll(2)` (via
//! `jets_reactor::wait_readable`) rather than sleep-polling: an idle
//! responder wakes only for a connection or the periodic stop-flag
//! check, never on a busy-wait timer.

use crate::metrics::Registry;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Upper bound on one idle park: the loop re-checks the stop flag at
/// least this often even if no connection ever arrives.
const ACCEPT_IDLE: Duration = Duration::from_millis(50);
/// Per-request socket timeout: a scraper that stalls cannot wedge the
/// responder thread for longer than this.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle for a running metrics responder. Dropping it stops the thread.
pub struct MetricsServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the responder actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Stop the responder thread and wait for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and serve the registry over HTTP until the returned
/// handle is dropped. `GET /metrics` answers with Prometheus text
/// exposition format, `GET /healthz` with `ok`; anything else is 404.
pub fn serve_metrics(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = thread::Builder::new()
        .name("jets-obs-http".into())
        .spawn(move || accept_loop(listener, registry, stop2))?;
    Ok(MetricsServer {
        local,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: TcpListener, registry: Arc<Registry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((sock, _)) => handle_scrape(sock, &registry),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => park_for_accept(&listener),
            // Transient accept errors (EMFILE, reset during handshake):
            // back off and keep serving.
            Err(_) => thread::sleep(ACCEPT_IDLE),
        }
    }
}

/// Park until the listener is readable (a connection is pending) or the
/// idle bound passes, whichever comes first — no busy-wait.
#[cfg(unix)]
fn park_for_accept(listener: &TcpListener) {
    use std::os::fd::AsRawFd;
    if jets_reactor::wait_readable(listener.as_raw_fd(), ACCEPT_IDLE).is_err() {
        // poll(2) failing is unheard of on a valid fd; degrade to the
        // old sleep rather than spinning on the error.
        thread::sleep(ACCEPT_IDLE);
    }
}

#[cfg(not(unix))]
fn park_for_accept(_listener: &TcpListener) {
    thread::sleep(ACCEPT_IDLE);
}

/// Answer one scrape. All errors are swallowed: a broken scraper must
/// never take the responder (or anything it observes) down with it.
fn handle_scrape(sock: TcpStream, registry: &Registry) {
    let _ = sock.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = sock.set_write_timeout(Some(REQUEST_TIMEOUT));
    let mut reader = BufReader::new(sock);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut sock = reader.into_inner();
    if sock.write_all(header.as_bytes()).is_err() {
        return;
    }
    let _ = sock.write_all(body.as_bytes());
    let _ = sock.flush();
}

/// Fetch `path` from a metrics responder at `addr` and return the body.
/// This is the client half used by `jets top` and the scrape tests; it
/// speaks just enough HTTP to talk to [`serve_metrics`].
pub fn scrape(addr: &str, path: &str) -> std::io::Result<String> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    sock.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: jets\r\nConnection: close\r\n\r\n");
    sock.write_all(req.as_bytes())?;
    let mut reader = BufReader::new(sock);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if !status_line.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape {path}: {}", status_line.trim()),
        ));
    }
    // Skip the remaining headers, then read the body to EOF.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    let mut buf = Vec::new();
    std::io::Read::read_to_end(&mut reader, &mut buf)?;
    body.push_str(&String::from_utf8_lossy(&buf));
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_healthz_and_404() {
        let registry = Arc::new(Registry::new());
        let c = registry.counter("jets_test_total", "A test counter");
        c.add(9);
        let server = serve_metrics("127.0.0.1:0", registry).expect("bind");
        let addr = server.addr().to_string();

        let body = scrape(&addr, "/metrics").expect("scrape metrics");
        assert!(body.contains("# TYPE jets_test_total counter"));
        assert!(body.contains("jets_test_total 9"));

        let health = scrape(&addr, "/healthz").expect("scrape healthz");
        assert_eq!(health, "ok\n");

        let err = scrape(&addr, "/nope").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn shutdown_releases_the_port() {
        let registry = Arc::new(Registry::new());
        let mut server = serve_metrics("127.0.0.1:0", registry).expect("bind");
        let addr = server.addr();
        server.shutdown();
        // After shutdown the port is free to rebind.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown: {rebind:?}");
    }
}
