//! Multi-thread hammer tests for the metrics registry: counter
//! exactness, histogram total-count conservation, and scrape-while-write
//! consistency. These run in the offline shadow workspace too (jets-obs
//! has no dependencies), so they gate every environment.

use jets_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS: u64 = 50_000;

#[test]
fn counter_is_exact_under_contention() {
    let c = Arc::new(Counter::default());
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let c = c.clone();
        handles.push(thread::spawn(move || {
            for i in 0..OPS {
                if i % 2 == 0 {
                    c.inc();
                } else {
                    c.add(1);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), THREADS as u64 * OPS);
}

#[test]
fn gauge_inc_dec_balances() {
    let g = Arc::new(Gauge::default());
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let g = g.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..OPS {
                g.inc();
                g.dec();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_conserves_total_count_and_sum() {
    let h = Arc::new(Histogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = h.clone();
        handles.push(thread::spawn(move || {
            let mut local_sum = 0u64;
            for i in 0..OPS {
                // Deterministic spread across several octaves.
                let v = (i * 37 + t as u64 * 101) % 100_000;
                h.record(v);
                local_sum += v;
            }
            local_sum
        }));
    }
    let expected_sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(h.count(), THREADS as u64 * OPS, "samples lost or invented");
    assert_eq!(h.sum(), expected_sum, "sum drifted under contention");
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS as u64 * OPS, "bucket total != count");
    assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
}

#[test]
fn snapshot_while_recording_never_invents_samples() {
    let h = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let h = h.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                h.record(n % 4096);
                n += 1;
            }
            n
        })
    };
    // Concurrent snapshots must observe a bucket total no larger than
    // the (racy, monotone) count at any moment.
    for _ in 0..200 {
        let snap = h.snapshot();
        let ceiling = h.count();
        assert!(
            snap.count <= ceiling,
            "snapshot saw {} samples but only {} were recorded",
            snap.count,
            ceiling
        );
    }
    stop.store(true, Ordering::Release);
    let written = writer.join().unwrap();
    assert_eq!(h.count(), written);
}

#[test]
fn render_under_concurrent_recording_is_well_formed() {
    let r = Arc::new(Registry::new());
    let c = r.counter("jets_hammer_total", "hammered counter");
    let h = r.histogram_micros(
        "jets_hammer_seconds",
        "hammered histogram",
        &[("phase", "x")],
    );
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        let (c, h) = (c.clone(), h.clone());
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Acquire) {
                c.inc();
                h.record(n % 10_000);
                n += 1;
            }
        })
    };
    for _ in 0..100 {
        let text = r.render();
        assert!(text.contains("# TYPE jets_hammer_total counter"));
        assert!(text.contains("# TYPE jets_hammer_seconds summary"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in line: {line}"
            );
        }
    }
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
}
