//! Bounded per-connection write buffers.
//!
//! The outbox replaces the `unbounded` writer channel + dedicated
//! writer thread of the blocking design. Any thread may `send` a
//! pre-framed message; the owning event loop drains the buffer to the
//! socket when it is writable. The buffer is **bounded**: a peer that
//! stops reading fills its outbox and is disconnected (the
//! slow-consumer policy) instead of growing dispatcher memory without
//! limit. `send` never blocks, so it is safe to call while holding
//! scheduler locks.

use crate::lock;
use crate::reactor::{LoopShared, ReactorStats};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Why a connection was torn down, reported once to
/// [`crate::ConnHandler::on_close`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed the connection (EOF).
    PeerClosed,
    /// A socket read failed.
    ReadError,
    /// A socket write failed.
    WriteError,
    /// An incoming frame exceeded the configured maximum.
    Oversize,
    /// The outbox overflowed: the peer was not draining its writes.
    SlowConsumer,
    /// The handler asked for the close (returned [`crate::Flow::Close`]).
    Handler,
    /// [`Outbox::close`] was called; pending bytes were flushed first.
    Closed,
}

pub(crate) struct OutQ {
    pub(crate) buf: VecDeque<u8>,
    /// Set once; the loop tears the connection down with this reason
    /// (after draining `buf` for the graceful `Closed` case).
    pub(crate) closed: Option<CloseReason>,
}

/// Handle for queueing outbound frames on one reactor connection.
///
/// Cheap to clone via `Arc`; survives the connection (sends after
/// teardown return `false`).
pub struct Outbox {
    pub(crate) id: u64,
    pub(crate) limit: usize,
    pub(crate) q: Mutex<OutQ>,
    pub(crate) loop_: Arc<LoopShared>,
    pub(crate) stats: Arc<ReactorStats>,
}

impl Outbox {
    pub(crate) fn new(
        id: u64,
        limit: usize,
        loop_: Arc<LoopShared>,
        stats: Arc<ReactorStats>,
    ) -> Arc<Outbox> {
        Arc::new(Outbox {
            id,
            limit,
            q: Mutex::new(OutQ {
                buf: VecDeque::new(),
                closed: None,
            }),
            loop_,
            stats,
        })
    }

    /// Connection token this outbox feeds (diagnostic).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queue one already-framed message (newline included) for the
    /// event loop to write. Returns `false` if the connection is
    /// closed or the bounded buffer overflowed — in the latter case
    /// the connection is marked for slow-consumer disconnect. Never
    /// blocks.
    pub fn send(&self, frame: &[u8]) -> bool {
        let kick = {
            let mut q = lock(&self.q);
            if q.closed.is_some() {
                return false;
            }
            if q.buf.len() + frame.len() > self.limit {
                q.closed = Some(CloseReason::SlowConsumer);
                q.buf.clear();
                self.stats
                    .slow_consumer_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                drop(q);
                self.loop_.kick(self.id);
                return false;
            }
            let was_empty = q.buf.is_empty();
            q.buf.extend(frame.iter().copied());
            self.stats
                .outbox_hwm
                .fetch_max(q.buf.len() as u64, Ordering::Relaxed);
            was_empty
        };
        // Only the empty→nonempty edge needs a wakeup: while bytes are
        // queued the loop already holds write interest for this fd.
        if kick {
            self.loop_.kick(self.id);
        }
        true
    }

    /// Request a graceful close: pending bytes are flushed, then the
    /// connection is torn down with [`CloseReason::Closed`].
    pub fn close(&self) {
        {
            let mut q = lock(&self.q);
            if q.closed.is_some() {
                return;
            }
            q.closed = Some(CloseReason::Closed);
        }
        self.loop_.kick(self.id);
    }

    /// Whether the connection is already marked closed.
    pub fn is_closed(&self) -> bool {
        lock(&self.q).closed.is_some()
    }

    /// Bytes currently queued (diagnostic; racy by nature).
    pub fn queued(&self) -> usize {
        lock(&self.q).buf.len()
    }

    /// Mark closed without flushing — used by the loop on teardown so
    /// later `send`s fail fast.
    pub(crate) fn mark_closed(&self, reason: CloseReason) {
        let mut q = lock(&self.q);
        if q.closed.is_none() || q.closed == Some(CloseReason::Closed) {
            q.closed = Some(reason);
        }
        q.buf.clear();
    }
}
