//! The `Poller` trait and its platform backends.
//!
//! One poller per event-loop thread, owned by that thread alone — so
//! the backends need no internal locking. Registrations are
//! level-triggered: the loop re-arms write interest only while a
//! connection's outbox holds bytes, which is the entire backpressure
//! protocol.

use crate::sys;
use std::io;
use std::os::fd::RawFd;

/// Which readiness classes a registration wants delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Deliver readable events.
    pub read: bool,
    /// Deliver writable events.
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of every connection.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read and write interest — armed while an outbox holds bytes.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event, translated out of the platform record.
///
/// Error and hangup conditions surface as `readable = true`: the next
/// nonblocking `read` then reports the EOF or error precisely, which
/// keeps the loop's teardown logic in one place.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Descriptor is readable (or in an error/hangup state).
    pub readable: bool,
    /// Descriptor is writable.
    pub writable: bool,
}

/// A readiness queue: epoll on Linux, kqueue on the BSD family.
pub trait Poller: Send {
    /// Register `fd` under `token` with the given interest.
    fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Change the interest set of an already registered `fd`.
    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Deregister `fd` entirely.
    fn remove(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block until readiness or `timeout_ms` (−1 = forever); ready
    /// events are appended to `events` (cleared first).
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
}

/// Construct the platform's poller backend.
pub fn new_poller() -> io::Result<Box<dyn Poller>> {
    platform_poller()
}

#[cfg(not(unix))]
compile_error!("jets-reactor supports Unix platforms only (epoll/kqueue)");

#[cfg(target_os = "linux")]
fn platform_poller() -> io::Result<Box<dyn Poller>> {
    Ok(Box::new(linux::EpollPoller::new()?))
}

#[cfg(all(unix, not(target_os = "linux")))]
fn platform_poller() -> io::Result<Box<dyn Poller>> {
    Ok(Box::new(bsd::KqueuePoller::new()?))
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use crate::sys::platform as p;

    /// Level-triggered epoll instance.
    pub struct EpollPoller {
        epfd: RawFd,
        /// Scratch event buffer reused across `wait` calls.
        buf: Vec<p::EpollEvent>,
    }

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            let epfd = unsafe { p::epoll_create1(p::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![p::EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut bits = p::EPOLLRDHUP;
            if interest.read {
                bits |= p::EPOLLIN;
            }
            if interest.write {
                bits |= p::EPOLLOUT;
            }
            let mut ev = p::EpollEvent {
                events: bits,
                data: token,
            };
            if unsafe { p::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for EpollPoller {
        fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(p::EPOLL_CTL_ADD, fd, token, interest)
        }

        fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(p::EPOLL_CTL_MOD, fd, token, interest)
        }

        fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = p::EpollEvent { events: 0, data: 0 };
            if unsafe { p::epoll_ctl(self.epfd, p::EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                let err = io::Error::last_os_error();
                // Already gone (e.g. the fd was closed first): fine.
                if err.raw_os_error() != Some(2) && err.raw_os_error() != Some(9) {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let n = unsafe {
                p::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in &self.buf[..n as usize] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (p::EPOLLIN | p::EPOLLERR | p::EPOLLHUP | p::EPOLLRDHUP) != 0,
                    writable: bits & p::EPOLLOUT != 0,
                });
            }
            // A full buffer means more may be pending; grow so a burst
            // of 512+ connections does not take extra wait round-trips.
            if n as usize == self.buf.len() {
                self.buf
                    .resize(self.buf.len() * 2, p::EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod bsd {
    use super::*;
    use crate::sys::platform as p;
    use std::os::raw::c_void;
    use std::ptr;

    /// kqueue instance; read and write filters are registered together
    /// and toggled with `EV_ENABLE`/`EV_DISABLE` to mirror epoll's
    /// single-registration model.
    pub struct KqueuePoller {
        kq: RawFd,
        buf: Vec<p::KEvent>,
    }

    fn kev(fd: RawFd, filter: i16, flags: u16, token: u64) -> p::KEvent {
        p::KEvent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token as *mut c_void,
        }
    }

    impl KqueuePoller {
        pub fn new() -> io::Result<KqueuePoller> {
            let kq = unsafe { p::kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(KqueuePoller {
                kq,
                buf: vec![kev(0, 0, 0, 0); 256],
            })
        }

        fn apply(&mut self, changes: &[p::KEvent]) -> io::Result<()> {
            let rc = unsafe {
                p::kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as i32,
                    ptr::null_mut(),
                    0,
                    ptr::null(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for KqueuePoller {
        fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let read_flags = if interest.read {
                p::EV_ADD | p::EV_ENABLE
            } else {
                p::EV_ADD | p::EV_DISABLE
            };
            let write_flags = if interest.write {
                p::EV_ADD | p::EV_ENABLE
            } else {
                p::EV_ADD | p::EV_DISABLE
            };
            self.apply(&[
                kev(fd, p::EVFILT_READ, read_flags, token),
                kev(fd, p::EVFILT_WRITE, write_flags, token),
            ])
        }

        fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.add(fd, token, interest)
        }

        fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            // Either filter may already be gone; try them separately
            // and ignore "not found".
            for filter in [p::EVFILT_READ, p::EVFILT_WRITE] {
                if let Err(err) = self.apply(&[kev(fd, filter, p::EV_DELETE, 0)]) {
                    if err.raw_os_error() != Some(2) && err.raw_os_error() != Some(9) {
                        return Err(err);
                    }
                }
            }
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let ts;
            let ts_ptr = if timeout_ms < 0 {
                ptr::null()
            } else {
                ts = p::Timespec {
                    tv_sec: (timeout_ms / 1000) as isize,
                    tv_nsec: ((timeout_ms % 1000) * 1_000_000) as isize,
                };
                &ts as *const p::Timespec
            };
            let n = unsafe {
                p::kevent(
                    self.kq,
                    ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    ts_ptr,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in &self.buf[..n as usize] {
                let token = raw.udata as u64;
                let error = raw.flags & p::EV_ERROR != 0;
                events.push(Event {
                    token,
                    readable: raw.filter == p::EVFILT_READ || error,
                    writable: raw.filter == p::EVFILT_WRITE && !error,
                });
            }
            if n as usize == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, kev(0, 0, 0, 0));
            }
            Ok(())
        }
    }

    impl Drop for KqueuePoller {
        fn drop(&mut self) {
            sys::close_fd(self.kq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn read_event_fires_when_bytes_arrive() {
        let (mut client, server) = pair();
        let mut p = new_poller().unwrap();
        p.add(server.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no readiness before any bytes");
        client.write_all(b"hi").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            p.wait(&mut events, 100).unwrap();
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn write_interest_toggles_with_modify() {
        let (_client, server) = pair();
        let fd = server.as_raw_fd();
        let mut p = new_poller().unwrap();
        p.add(fd, 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, 0).unwrap();
        assert!(!events.iter().any(|e| e.writable));
        // Arm write interest: an idle socket is immediately writable.
        p.modify(fd, 3, Interest::READ_WRITE).unwrap();
        p.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        // Disarm again: writability stops being reported.
        p.modify(fd, 3, Interest::READ).unwrap();
        p.wait(&mut events, 0).unwrap();
        assert!(!events.iter().any(|e| e.writable));
        p.remove(fd).unwrap();
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        let (client, server) = pair();
        let mut p = new_poller().unwrap();
        p.add(server.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            p.wait(&mut events, 100).unwrap();
        }
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
    }
}
