//! jets-reactor: the event-driven connection core.
//!
//! Replaces the two-threads-per-connection pattern (blocking reader
//! thread + unbounded writer channel + writer thread) with a fixed
//! handful of event-loop threads — epoll on Linux, kqueue on the BSD
//! family — behind the [`Poller`] trait. Connections become state
//! machines: nonblocking reads reassemble newline-delimited frames
//! across wakeups, writes drain bounded per-connection [`Outbox`]es
//! with `WOULDBLOCK`-driven interest re-arming, and peers that stop
//! reading are disconnected instead of growing process memory.
//!
//! Like jets-obs and jets-lint, this crate has **zero dependencies**:
//! the syscalls are hand-declared FFI against the C library `std`
//! already links, so the reactor compiles and its tests run in the
//! offline shadow workspace.
//!
//! The blocking client paths (worker agent outbound, jets-pmi,
//! jets-mpi) intentionally stay on the existing code — the reactor
//! serves the fan-in sides (dispatcher, relay member-facing) where
//! connection counts scale with the cluster.

mod outbox;
mod poller;
mod reactor;
mod sys;

pub use outbox::{CloseReason, Outbox};
pub use poller::{new_poller, Event, Interest, Poller};
pub use reactor::{AcceptFn, ConnHandler, Flow, Reactor, ReactorConfig, ReactorStats};
pub use sys::{wait_for, wait_readable, POLLIN, POLLOUT};

use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, treating poisoning as benign: reactor state is a set
/// of plain byte buffers and counters that stay internally consistent
/// even if a holder panicked mid-update.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
