//! Hand-declared syscall bindings for the reactor.
//!
//! `std` already links the platform C library, so the readiness
//! syscalls the reactor needs are one `extern "C"` block away — no
//! `libc` crate, keeping this crate zero-dependency like jets-obs and
//! jets-lint. Only the handful of calls the poller backends use are
//! declared, with the constants for the supported platforms spelled
//! out next to them. Constants are the x86_64/aarch64 values; those
//! are the only Linux architectures this workspace targets.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
}

/// `struct pollfd`, identical on every supported platform.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// File descriptor to poll.
    pub fd: c_int,
    /// Requested events.
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

#[cfg(target_os = "linux")]
type NFds = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = std::os::raw::c_uint;

/// `POLLIN`: data available to read.
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: writable without blocking.
pub const POLLOUT: i16 = 0x004;

/// Close a raw descriptor, ignoring errors (used on teardown paths
/// where there is nothing left to do about one).
pub fn close_fd(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Nonblocking byte read on a raw descriptor (the waker pipe).
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> isize {
    unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) }
}

/// Nonblocking byte write on a raw descriptor (the waker pipe).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> isize {
    unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) }
}

/// Park the calling thread until `fd` is readable or `timeout` passes;
/// `Ok(true)` means readable. One `poll(2)` call — this is the
/// primitive the jets-obs accept loop parks on instead of sleeping.
pub fn wait_readable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    wait_for(fd, POLLIN, timeout)
}

/// Park until `fd` reports any of `events` (`POLLIN` / `POLLOUT`) or
/// the timeout passes. A signal interruption reports "not ready" —
/// callers loop anyway.
pub fn wait_for(fd: RawFd, events: i16, timeout: Duration) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events,
        revents: 0,
    };
    let ms = timeout.as_millis().min(c_int::MAX as u128) as c_int;
    let rc = unsafe { poll(&mut pfd, 1, ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(false);
        }
        return Err(err);
    }
    Ok(rc > 0)
}

/// Create the loop's self-pipe waker: `(read_end, write_end)`, both
/// nonblocking and close-on-exec.
pub fn make_wake_pipe() -> io::Result<(RawFd, RawFd)> {
    platform::wake_pipe()
}

#[cfg(target_os = "linux")]
pub mod platform {
    //! Linux: `epoll` plus `pipe2`.
    use super::*;

    /// One epoll readiness record. Packed on x86_64 only — the kernel
    /// ABI quirk every binding reproduces.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLLIN` | …).
        pub events: u32,
        /// Caller-chosen cookie; the reactor stores the connection token.
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    }

    /// `EPOLL_CLOEXEC`.
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    /// `epoll_ctl` ops.
    pub const EPOLL_CTL_ADD: c_int = 1;
    /// Remove a descriptor.
    pub const EPOLL_CTL_DEL: c_int = 2;
    /// Change a registration's interest set.
    pub const EPOLL_CTL_MOD: c_int = 3;
    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition (delivered regardless of interest).
    pub const EPOLLERR: u32 = 0x008;
    /// Hangup (delivered regardless of interest).
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer closed its write half.
    pub const EPOLLRDHUP: u32 = 0x2000;

    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    pub(crate) fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }
}

#[cfg(not(target_os = "linux"))]
pub mod platform {
    //! BSD-family (macOS and friends): `kqueue` plus `pipe`+`fcntl`.
    use super::*;

    /// One kevent record (64-bit BSD layout).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct KEvent {
        /// Identifier (the file descriptor for socket filters).
        pub ident: usize,
        /// Filter (`EVFILT_READ` / `EVFILT_WRITE`).
        pub filter: i16,
        /// Action and status flags.
        pub flags: u16,
        /// Filter-specific flags.
        pub fflags: u32,
        /// Filter data (bytes available, …).
        pub data: isize,
        /// Caller-chosen cookie; the reactor stores the connection token.
        pub udata: *mut c_void,
    }

    /// `struct timespec` for the kevent timeout.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Timespec {
        /// Seconds.
        pub tv_sec: isize,
        /// Nanoseconds.
        pub tv_nsec: isize,
    }

    extern "C" {
        pub fn kqueue() -> c_int;
        pub fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    }

    /// Readable filter.
    pub const EVFILT_READ: i16 = -1;
    /// Writable filter.
    pub const EVFILT_WRITE: i16 = -2;
    /// Add (and implicitly enable) a filter.
    pub const EV_ADD: u16 = 0x0001;
    /// Remove a filter.
    pub const EV_DELETE: u16 = 0x0002;
    /// Enable a previously added filter.
    pub const EV_ENABLE: u16 = 0x0004;
    /// Disable a filter without removing it.
    pub const EV_DISABLE: u16 = 0x0008;
    /// Returned: the filter itself reports an error in `data`.
    pub const EV_ERROR: u16 = 0x4000;

    const F_SETFD: c_int = 2;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const FD_CLOEXEC: c_int = 1;
    const O_NONBLOCK: c_int = 0x0004;

    pub(crate) fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for &fd in &fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0
                || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0
                || unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) } < 0
            {
                let err = io::Error::last_os_error();
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(err);
            }
        }
        Ok((fds[0], fds[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wait_readable_times_out_then_fires() {
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let fd = server.as_raw_fd();
        // Nothing pending: times out.
        assert!(!wait_readable(fd, Duration::from_millis(10)).unwrap());
        client.write_all(b"x").unwrap();
        // One byte pending: fires well before the timeout.
        assert!(wait_readable(fd, Duration::from_secs(5)).unwrap());
    }

    #[test]
    fn wake_pipe_round_trips_a_byte() {
        let (rx, tx) = make_wake_pipe().unwrap();
        let mut buf = [0u8; 8];
        // Empty: nonblocking read reports would-block (negative).
        assert!(read_fd(rx, &mut buf) < 0);
        assert_eq!(write_fd(tx, &[1]), 1);
        assert!(wait_readable(rx, Duration::from_secs(1)).unwrap());
        assert_eq!(read_fd(rx, &mut buf), 1);
        close_fd(rx);
        close_fd(tx);
    }
}
