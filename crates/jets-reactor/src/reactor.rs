//! Event loops, connection state machines, and the router.
//!
//! A [`Reactor`] owns a fixed handful of event-loop threads (the count
//! is configuration, not connection count). Each loop owns one
//! platform [`Poller`](crate::poller::Poller), a self-pipe waker, and
//! the connections assigned to it. Connections are nonblocking state
//! machines: reads reassemble newline-delimited frames across wakeups
//! and hand each complete frame to the connection's [`ConnHandler`];
//! writes drain the connection's bounded [`Outbox`], arming write
//! interest only while bytes remain (the `WOULDBLOCK` re-arm
//! protocol).
//!
//! Cross-thread interaction is funnelled through each loop's inbox: a
//! short mutex push plus one byte on the wake pipe. `Outbox::send`
//! therefore never blocks and is safe under scheduler locks. Handlers
//! run on the loop thread and must not block — jets-lint rule J7
//! enforces that textually.

use crate::outbox::{CloseReason, Outbox};
use crate::poller::{new_poller, Event, Interest, Poller};
use crate::{lock, sys};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Token reserved for each loop's wake pipe.
const WAKE_TOKEN: u64 = 0;

/// What a handler wants done with its connection after a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep the connection open.
    Continue,
    /// Tear the connection down ([`CloseReason::Handler`]).
    Close,
}

/// Per-connection protocol logic, driven by the owning event loop.
///
/// All three callbacks run on the loop thread. They must never block:
/// no channel `recv`, no sleeps, no blocking socket I/O — queue
/// outbound frames on an [`Outbox`] instead (rule J7).
pub trait ConnHandler: Send {
    /// Called once when the connection is registered with its loop.
    fn on_open(&mut self, outbox: &Arc<Outbox>);
    /// Called for every complete incoming frame (newline stripped).
    fn on_frame(&mut self, frame: &[u8]) -> Flow;
    /// Called exactly once when the connection is torn down.
    fn on_close(&mut self, reason: CloseReason);
}

/// Factory invoked for every accepted connection. Returning `None`
/// sheds the connection (it is dropped without registration). The
/// `&TcpStream` lets factories `try_clone` a raw handle (e.g. for
/// out-of-band kill switches) before the reactor takes ownership.
pub type AcceptFn = dyn Fn(&TcpStream, SocketAddr) -> Option<Box<dyn ConnHandler>> + Send + Sync;

/// Monotonic reactor counters, shared with observability bridges.
#[derive(Default)]
pub struct ReactorStats {
    pub(crate) connections_registered: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) wakeups: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) outbox_hwm: AtomicU64,
    pub(crate) slow_consumer_disconnects: AtomicU64,
}

impl ReactorStats {
    /// Connections ever registered on a loop.
    pub fn connections_registered(&self) -> u64 {
        self.connections_registered.load(Ordering::Relaxed)
    }

    /// Connections torn down.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.load(Ordering::Relaxed)
    }

    /// Currently open connections (registered − closed).
    pub fn connections_open(&self) -> u64 {
        self.connections_registered()
            .saturating_sub(self.connections_closed())
    }

    /// Event-loop wait returns.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Complete frames delivered to handlers.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Bytes read off sockets.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Bytes written to sockets.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// High-water mark of any single connection's outbox, in bytes.
    pub fn outbox_high_water(&self) -> u64 {
        self.outbox_hwm.load(Ordering::Relaxed)
    }

    /// Connections dropped because their bounded outbox overflowed.
    pub fn slow_consumer_disconnects(&self) -> u64 {
        self.slow_consumer_disconnects.load(Ordering::Relaxed)
    }
}

/// Reactor sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Event-loop threads. The whole point: this, not the connection
    /// count, is the process's thread bill for connection handling.
    pub event_loops: usize,
    /// Bounded per-connection outbox capacity in bytes; overflow
    /// disconnects the slow consumer.
    pub outbox_limit: usize,
    /// Maximum bytes buffered for a single incoming frame before the
    /// connection is dropped as oversize.
    pub max_frame: usize,
    /// Per-loop scratch read buffer size.
    pub read_chunk: usize,
    /// Event-loop thread name prefix.
    pub thread_name: String,
    /// Event-loop thread stack size.
    pub thread_stack: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            event_loops: 2,
            outbox_limit: 16 << 20,
            max_frame: 16 << 20,
            read_chunk: 64 << 10,
            thread_name: "jets-reactor".to_string(),
            thread_stack: 256 * 1024,
        }
    }
}

#[derive(Default)]
pub(crate) struct LoopInbox {
    new: Vec<Injected>,
    kicks: Vec<u64>,
}

/// The cross-thread face of one event loop: its waker write end and
/// the inbox other threads push work through.
pub(crate) struct LoopShared {
    wake_tx: OwnedFd,
    inbox: Mutex<LoopInbox>,
}

impl LoopShared {
    /// Ask the loop to revisit connection `id` (flush or teardown).
    pub(crate) fn kick(&self, id: u64) {
        lock(&self.inbox).kicks.push(id);
        self.wake();
    }

    fn inject(&self, inj: Injected) {
        lock(&self.inbox).new.push(inj);
        self.wake();
    }

    fn wake(&self) {
        // Nonblocking; a full pipe already guarantees a pending wakeup.
        let _ = sys::write_fd(self.wake_tx.as_raw_fd(), &[1]);
    }
}

enum Injected {
    Conn {
        id: u64,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
        outbox: Arc<Outbox>,
    },
    Listener {
        id: u64,
        listener: TcpListener,
        factory: Arc<AcceptFn>,
    },
}

struct Conn {
    stream: TcpStream,
    fd: RawFd,
    handler: Box<dyn ConnHandler>,
    outbox: Arc<Outbox>,
    /// Reassembly buffer for partial frames.
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already scanned for a newline.
    scanned: usize,
    /// Whether write interest is currently armed.
    want_write: bool,
}

enum Entry {
    Conn(Conn),
    Listener {
        listener: TcpListener,
        factory: Arc<AcceptFn>,
    },
}

/// Shared routing state: loop handles, id allocation, stats, policy.
pub(crate) struct Router {
    loops: Vec<Arc<LoopShared>>,
    next_loop: AtomicUsize,
    next_id: AtomicU64,
    pub(crate) stats: Arc<ReactorStats>,
    shutdown: AtomicBool,
    max_frame: usize,
    outbox_limit: usize,
    read_chunk: usize,
}

impl Router {
    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn pick_loop(&self) -> Arc<LoopShared> {
        let i = self.next_loop.fetch_add(1, Ordering::Relaxed) % self.loops.len();
        self.loops[i].clone()
    }

    fn register_stream(
        &self,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    ) -> io::Result<Arc<Outbox>> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "reactor is shut down",
            ));
        }
        let id = self.next_id();
        let shared = self.pick_loop();
        let outbox = Outbox::new(id, self.outbox_limit, shared.clone(), self.stats.clone());
        shared.inject(Injected::Conn {
            id,
            stream,
            handler,
            outbox: outbox.clone(),
        });
        Ok(outbox)
    }

    fn register_listener(&self, listener: TcpListener, factory: Arc<AcceptFn>) -> io::Result<()> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "reactor is shut down",
            ));
        }
        listener.set_nonblocking(true)?;
        let id = self.next_id();
        let shared = self.pick_loop();
        shared.inject(Injected::Listener {
            id,
            listener,
            factory,
        });
        Ok(())
    }
}

/// A running set of event loops multiplexing many connections onto a
/// fixed number of threads.
pub struct Reactor {
    router: Arc<Router>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Reactor {
    /// Start `config.event_loops` loop threads (at least one).
    pub fn start(config: ReactorConfig) -> io::Result<Reactor> {
        let n = config.event_loops.max(1);
        let stats = Arc::new(ReactorStats::default());
        let mut loops = Vec::with_capacity(n);
        let mut tails = Vec::with_capacity(n);
        for _ in 0..n {
            let (rx, tx) = sys::make_wake_pipe()?;
            let rx = unsafe { OwnedFd::from_raw_fd(rx) };
            let tx = unsafe { OwnedFd::from_raw_fd(tx) };
            let poller = new_poller()?;
            loops.push(Arc::new(LoopShared {
                wake_tx: tx,
                inbox: Mutex::new(LoopInbox::default()),
            }));
            tails.push((rx, poller));
        }
        let router = Arc::new(Router {
            loops,
            next_loop: AtomicUsize::new(0),
            // Token 0 is every loop's waker.
            next_id: AtomicU64::new(1),
            stats,
            shutdown: AtomicBool::new(false),
            max_frame: config.max_frame,
            outbox_limit: config.outbox_limit,
            read_chunk: config.read_chunk.max(1024),
        });
        let mut threads = Vec::with_capacity(n);
        for (i, (rx, poller)) in tails.into_iter().enumerate() {
            let r = router.clone();
            let spawned = thread::Builder::new()
                .name(format!("{}-{i}", config.thread_name))
                .stack_size(config.thread_stack)
                .spawn(move || run_loop(r, i, rx, poller));
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(err) => {
                    router.shutdown.store(true, Ordering::Release);
                    for l in &router.loops {
                        l.wake();
                    }
                    for handle in threads {
                        let _ = handle.join();
                    }
                    return Err(err);
                }
            }
        }
        Ok(Reactor {
            router,
            threads: Mutex::new(threads),
        })
    }

    /// Serve accepted connections from `listener` through `factory`.
    /// The listener is made nonblocking and owned by one event loop.
    pub fn listen(&self, listener: TcpListener, factory: Arc<AcceptFn>) -> io::Result<()> {
        self.router.register_listener(listener, factory)
    }

    /// Adopt an already-connected stream onto an event loop.
    pub fn add_stream(
        &self,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    ) -> io::Result<Arc<Outbox>> {
        self.router.register_stream(stream, handler)
    }

    /// Shared counters for observability bridges.
    pub fn stats(&self) -> Arc<ReactorStats> {
        self.router.stats.clone()
    }

    /// Number of event-loop threads.
    pub fn event_loops(&self) -> usize {
        self.router.loops.len()
    }

    /// Stop all loops and join their threads. Queued outbound bytes
    /// get one best-effort nonblocking flush; handlers do not receive
    /// `on_close` for connections torn down by shutdown.
    pub fn shutdown(&self) {
        self.router.shutdown.store(true, Ordering::Release);
        for l in &self.router.loops {
            l.wake();
        }
        let handles = std::mem::take(&mut *lock(&self.threads));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_loop(router: Arc<Router>, me: usize, wake_rx: OwnedFd, mut poller: Box<dyn Poller>) {
    let shared = router.loops[me].clone();
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut chunk = vec![0u8; router.read_chunk];
    // If the waker cannot be registered the loop degrades to timed
    // polling so shutdown and kicks still land.
    let waker_armed = poller
        .add(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
        .is_ok();
    let timeout_ms = if waker_armed { -1 } else { 20 };
    loop {
        if poller.wait(&mut events, timeout_ms).is_err() {
            break;
        }
        router.stats.wakeups.fetch_add(1, Ordering::Relaxed);
        for ev in events.iter().copied() {
            if ev.token == WAKE_TOKEN {
                let mut buf = [0u8; 64];
                while sys::read_fd(wake_rx.as_raw_fd(), &mut buf) > 0 {}
                continue;
            }
            if ev.readable {
                if matches!(entries.get(&ev.token), Some(Entry::Listener { .. })) {
                    accept_ready(&entries, &router, ev.token);
                } else if let Some(Entry::Conn(conn)) = entries.get_mut(&ev.token) {
                    if let Err(reason) = pump_frames(conn, &mut chunk, &router) {
                        teardown(&mut entries, poller.as_mut(), &router, ev.token, reason);
                    }
                }
            }
            if ev.writable && entries.contains_key(&ev.token) {
                flush_and_apply(&mut entries, poller.as_mut(), &router, ev.token);
            }
        }
        drain_inbox(&router, &shared, &mut entries, poller.as_mut());
        if router.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    // Shutdown path: flush what the kernel will take without waiting,
    // mark every outbox closed so senders fail fast, and drop the
    // entries without per-connection on_close callbacks.
    for (_, entry) in entries.drain() {
        if let Entry::Conn(conn) = entry {
            let mut q = lock(&conn.outbox.q);
            while !q.buf.is_empty() {
                let n = {
                    let (front, _) = q.buf.as_slices();
                    match (&conn.stream).write(front) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => n,
                    }
                };
                q.buf.drain(..n);
                router
                    .stats
                    .bytes_out
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            q.buf.clear();
            if q.closed.is_none() {
                q.closed = Some(CloseReason::Closed);
            }
        }
    }
    let mut inbox = lock(&shared.inbox);
    for inj in inbox.new.drain(..) {
        if let Injected::Conn { outbox, .. } = inj {
            outbox.mark_closed(CloseReason::Closed);
        }
    }
    inbox.kicks.clear();
}

/// Drain pending registrations and kicks pushed by other threads.
fn drain_inbox(
    router: &Arc<Router>,
    shared: &Arc<LoopShared>,
    entries: &mut HashMap<u64, Entry>,
    poller: &mut dyn Poller,
) {
    let (new, kicks) = {
        let mut inbox = lock(&shared.inbox);
        (
            std::mem::take(&mut inbox.new),
            std::mem::take(&mut inbox.kicks),
        )
    };
    for inj in new {
        match inj {
            Injected::Conn {
                id,
                stream,
                mut handler,
                outbox,
            } => {
                router
                    .stats
                    .connections_registered
                    .fetch_add(1, Ordering::Relaxed);
                let fd = stream.as_raw_fd();
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err()
                    || poller.add(fd, id, Interest::READ).is_err()
                {
                    outbox.mark_closed(CloseReason::ReadError);
                    router
                        .stats
                        .connections_closed
                        .fetch_add(1, Ordering::Relaxed);
                    handler.on_close(CloseReason::ReadError);
                    continue;
                }
                handler.on_open(&outbox);
                entries.insert(
                    id,
                    Entry::Conn(Conn {
                        stream,
                        fd,
                        handler,
                        outbox,
                        rbuf: Vec::new(),
                        scanned: 0,
                        want_write: false,
                    }),
                );
                // on_open may have queued frames already.
                flush_and_apply(entries, poller, router, id);
            }
            Injected::Listener {
                id,
                listener,
                factory,
            } => {
                if poller.add(listener.as_raw_fd(), id, Interest::READ).is_ok() {
                    entries.insert(id, Entry::Listener { listener, factory });
                    // Connections may have queued while registration
                    // was in flight.
                    accept_ready(entries, router, id);
                }
            }
        }
    }
    for id in kicks {
        flush_and_apply(entries, poller, router, id);
    }
}

/// Accept until the listener would block, registering each connection
/// with the router's next loop (round-robin).
fn accept_ready(entries: &HashMap<u64, Entry>, router: &Arc<Router>, id: u64) {
    let Some(Entry::Listener { listener, factory }) = entries.get(&id) else {
        return;
    };
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if let Some(handler) = factory(&stream, peer) {
                    // Shed silently if the reactor is shutting down.
                    let _ = router.register_stream(stream, handler);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            // Transient accept failures (EMFILE, ECONNABORTED): stop
            // this round; the listener stays registered.
            Err(_) => return,
        }
    }
}

/// Read until the socket would block, delivering every complete frame.
fn pump_frames(conn: &mut Conn, chunk: &mut [u8], router: &Arc<Router>) -> Result<(), CloseReason> {
    loop {
        let n = match (&conn.stream).read(chunk) {
            Ok(0) => return Err(CloseReason::PeerClosed),
            Ok(n) => n,
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(CloseReason::ReadError),
        };
        router.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        conn.rbuf.extend_from_slice(&chunk[..n]);
        let mut consumed = 0;
        while let Some(off) = conn.rbuf[conn.scanned..].iter().position(|&b| b == b'\n') {
            let nl = conn.scanned + off;
            router.stats.frames_in.fetch_add(1, Ordering::Relaxed);
            let flow = conn.handler.on_frame(&conn.rbuf[consumed..nl]);
            consumed = nl + 1;
            conn.scanned = consumed;
            if flow == Flow::Close {
                return Err(CloseReason::Handler);
            }
        }
        if consumed > 0 {
            conn.rbuf.drain(..consumed);
        }
        conn.scanned = conn.rbuf.len();
        if conn.rbuf.len() > router.max_frame {
            return Err(CloseReason::Oversize);
        }
    }
}

enum FlushResult {
    /// Outbox drained; write interest can be disarmed.
    Idle,
    /// Socket would block with bytes left; write interest must be armed.
    Arm,
    /// Connection must be torn down.
    Close(CloseReason),
}

/// Drain the outbox into the socket without blocking.
fn flush_outbox(conn: &mut Conn, router: &Arc<Router>) -> FlushResult {
    let mut q = lock(&conn.outbox.q);
    if let Some(reason) = q.closed {
        // Graceful close still flushes; every other reason is immediate.
        if reason != CloseReason::Closed {
            return FlushResult::Close(reason);
        }
    }
    while !q.buf.is_empty() {
        let n = {
            let (front, _) = q.buf.as_slices();
            match (&conn.stream).write(front) {
                Ok(0) => return FlushResult::Close(CloseReason::WriteError),
                Ok(n) => n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return FlushResult::Arm,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushResult::Close(CloseReason::WriteError),
            }
        };
        q.buf.drain(..n);
        router
            .stats
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
    }
    if q.closed == Some(CloseReason::Closed) {
        FlushResult::Close(CloseReason::Closed)
    } else {
        FlushResult::Idle
    }
}

/// Flush a connection's outbox, then re-arm interest or tear down.
fn flush_and_apply(
    entries: &mut HashMap<u64, Entry>,
    poller: &mut dyn Poller,
    router: &Arc<Router>,
    id: u64,
) {
    let result = match entries.get_mut(&id) {
        Some(Entry::Conn(conn)) => flush_outbox(conn, router),
        _ => return,
    };
    match result {
        FlushResult::Idle => {
            let rearm_failed = match entries.get_mut(&id) {
                Some(Entry::Conn(conn)) if conn.want_write => {
                    conn.want_write = false;
                    poller.modify(conn.fd, id, Interest::READ).is_err()
                }
                _ => false,
            };
            if rearm_failed {
                teardown(entries, poller, router, id, CloseReason::WriteError);
            }
        }
        FlushResult::Arm => {
            let arm_failed = match entries.get_mut(&id) {
                Some(Entry::Conn(conn)) if !conn.want_write => {
                    conn.want_write = true;
                    poller.modify(conn.fd, id, Interest::READ_WRITE).is_err()
                }
                _ => false,
            };
            if arm_failed {
                teardown(entries, poller, router, id, CloseReason::WriteError);
            }
        }
        FlushResult::Close(reason) => teardown(entries, poller, router, id, reason),
    }
}

/// Remove a connection, deregister its fd, and fire `on_close` once.
fn teardown(
    entries: &mut HashMap<u64, Entry>,
    poller: &mut dyn Poller,
    router: &Arc<Router>,
    id: u64,
    reason: CloseReason,
) {
    if let Some(Entry::Conn(mut conn)) = entries.remove(&id) {
        let _ = poller.remove(conn.fd);
        conn.outbox.mark_closed(reason);
        router
            .stats
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
        conn.handler.on_close(reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Shared recording surface the test handlers write into.
    #[derive(Default)]
    struct Probe {
        frames: Mutex<Vec<Vec<u8>>>,
        closes: Mutex<Vec<CloseReason>>,
        outboxes: Mutex<Vec<Arc<Outbox>>>,
    }

    impl Probe {
        fn frames(&self) -> Vec<Vec<u8>> {
            lock(&self.frames).clone()
        }
        fn closes(&self) -> Vec<CloseReason> {
            lock(&self.closes).clone()
        }
        fn outbox(&self) -> Option<Arc<Outbox>> {
            lock(&self.outboxes).first().cloned()
        }
    }

    struct ProbeConn {
        probe: Arc<Probe>,
        greeting: Vec<Vec<u8>>,
        close_after: Option<usize>,
        seen: usize,
    }

    impl ConnHandler for ProbeConn {
        fn on_open(&mut self, outbox: &Arc<Outbox>) {
            lock(&self.probe.outboxes).push(outbox.clone());
            for frame in &self.greeting {
                outbox.send(frame);
            }
        }

        fn on_frame(&mut self, frame: &[u8]) -> Flow {
            lock(&self.probe.frames).push(frame.to_vec());
            self.seen += 1;
            if self.close_after == Some(self.seen) {
                Flow::Close
            } else {
                Flow::Continue
            }
        }

        fn on_close(&mut self, reason: CloseReason) {
            lock(&self.probe.closes).push(reason);
        }
    }

    fn start_probe(
        config: ReactorConfig,
        greeting: Vec<Vec<u8>>,
        close_after: Option<usize>,
    ) -> (Reactor, Arc<Probe>, SocketAddr) {
        let reactor = Reactor::start(config).unwrap();
        let probe = Arc::new(Probe::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let p = probe.clone();
        reactor
            .listen(
                listener,
                Arc::new(move |_stream, _peer| {
                    Some(Box::new(ProbeConn {
                        probe: p.clone(),
                        greeting: greeting.clone(),
                        close_after,
                        seen: 0,
                    }) as Box<dyn ConnHandler>)
                }),
            )
            .unwrap();
        (reactor, probe, addr)
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn reassembles_partial_frames_across_wakeups() {
        let (reactor, probe, addr) = start_probe(ReactorConfig::default(), vec![], None);
        let mut client = TcpStream::connect(addr).unwrap();
        // Split two frames across three writes with pauses so each
        // lands in a separate readiness wakeup.
        client.write_all(b"hel").unwrap();
        thread::sleep(Duration::from_millis(30));
        client.write_all(b"lo\nwor").unwrap();
        thread::sleep(Duration::from_millis(30));
        client.write_all(b"ld\n").unwrap();
        wait_until("two frames", || probe.frames().len() == 2);
        assert_eq!(probe.frames(), vec![b"hello".to_vec(), b"world".to_vec()]);
        assert_eq!(reactor.stats().frames_in(), 2);
        assert!(probe.closes().is_empty());
    }

    #[test]
    fn write_backpressure_rearms_and_drains() {
        // One 4 MiB greeting: far beyond any loopback socket buffer,
        // so the first flush hits WOULDBLOCK and the drain must ride
        // writable wakeups.
        let mut frame = vec![b'x'; 4 << 20];
        frame.push(b'\n');
        let total = frame.len();
        let (reactor, probe, addr) = start_probe(ReactorConfig::default(), vec![frame], None);
        let mut client = TcpStream::connect(addr).unwrap();
        // Let the outbox fill and write interest arm before reading.
        wait_until("outbox queues bytes", || {
            probe.outbox().map(|o| o.queued() > 0).unwrap_or(false)
        });
        let mut got = Vec::with_capacity(total);
        let mut buf = vec![0u8; 64 << 10];
        while got.len() < total {
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0, "connection closed after {} bytes", got.len());
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got.len(), total);
        assert_eq!(got[total - 1], b'\n');
        assert!(got[..total - 1].iter().all(|&b| b == b'x'));
        wait_until("outbox drains", || {
            probe.outbox().map(|o| o.queued() == 0).unwrap_or(false)
        });
        assert!(reactor.stats().bytes_out() >= total as u64);
        assert!(reactor.stats().outbox_high_water() > 0);
    }

    #[test]
    fn slow_consumer_overflow_disconnects() {
        let config = ReactorConfig {
            outbox_limit: 16 << 10,
            ..ReactorConfig::default()
        };
        let (reactor, probe, addr) = start_probe(config, vec![], None);
        let client = TcpStream::connect(addr).unwrap();
        wait_until("registration", || probe.outbox().is_some());
        let outbox = probe.outbox().unwrap();
        // Never read on the client: the socket buffer fills, then the
        // bounded outbox overflows and send reports the disconnect.
        let mut frame = vec![b'y'; 1023];
        frame.push(b'\n');
        let mut overflowed = false;
        for _ in 0..1_000_000 {
            if !outbox.send(&frame) {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "bounded outbox never overflowed");
        wait_until("slow-consumer close", || {
            probe.closes() == vec![CloseReason::SlowConsumer]
        });
        assert_eq!(reactor.stats().slow_consumer_disconnects(), 1);
        assert!(!outbox.send(&frame), "send after disconnect must fail");
        drop(client);
    }

    #[test]
    fn peer_close_mid_frame_reports_peer_closed() {
        let (_reactor, probe, addr) = start_probe(ReactorConfig::default(), vec![], None);
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"incomplete frame without newline")
            .unwrap();
        drop(client);
        wait_until("peer close", || !probe.closes().is_empty());
        assert_eq!(probe.closes(), vec![CloseReason::PeerClosed]);
        // The partial frame must not have been delivered.
        assert!(probe.frames().is_empty());
    }

    #[test]
    fn handler_flow_close_tears_down() {
        let (_reactor, probe, addr) = start_probe(ReactorConfig::default(), vec![], Some(1));
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"bye\n").unwrap();
        wait_until("handler close", || !probe.closes().is_empty());
        assert_eq!(probe.closes(), vec![CloseReason::Handler]);
        let mut buf = [0u8; 16];
        // The reactor side closed: reads drain to EOF.
        loop {
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(err) => panic!("expected EOF, got {err}"),
            }
        }
    }

    #[test]
    fn oversize_frame_disconnects() {
        let config = ReactorConfig {
            max_frame: 1024,
            ..ReactorConfig::default()
        };
        let (_reactor, probe, addr) = start_probe(config, vec![], None);
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&vec![b'z'; 4096]).unwrap();
        wait_until("oversize close", || !probe.closes().is_empty());
        assert_eq!(probe.closes(), vec![CloseReason::Oversize]);
    }

    #[test]
    fn graceful_close_flushes_queued_bytes_first() {
        let (_reactor, probe, addr) = start_probe(ReactorConfig::default(), vec![], None);
        let mut client = TcpStream::connect(addr).unwrap();
        wait_until("registration", || probe.outbox().is_some());
        let outbox = probe.outbox().unwrap();
        assert!(outbox.send(b"farewell\n"));
        outbox.close();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"farewell\n");
        wait_until("graceful close", || !probe.closes().is_empty());
        assert_eq!(probe.closes(), vec![CloseReason::Closed]);
    }

    #[test]
    fn thread_count_tracks_loops_not_connections() {
        let config = ReactorConfig {
            event_loops: 2,
            ..ReactorConfig::default()
        };
        let (reactor, probe, addr) = start_probe(config, vec![], None);
        assert_eq!(reactor.event_loops(), 2);
        let mut clients = Vec::new();
        for _ in 0..64 {
            clients.push(TcpStream::connect(addr).unwrap());
        }
        wait_until("64 registrations", || {
            reactor.stats().connections_registered() == 64
        });
        // Every connection answers through the same two loops.
        for (i, client) in clients.iter_mut().enumerate() {
            client.write_all(format!("ping {i}\n").as_bytes()).unwrap();
        }
        wait_until("64 frames", || probe.frames().len() == 64);
        assert_eq!(reactor.stats().connections_open(), 64);
    }
}
