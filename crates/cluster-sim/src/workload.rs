//! Workload generators for the paper's benchmarks.
//!
//! All generators speak *virtual seconds* — the durations the paper
//! quotes — and scale them to real milliseconds through a [`TimeScale`],
//! so a 10-second BG/P task becomes (say) a 200 ms simulated task while
//! every control-plane cost stays real.

use jets_core::spec::{CommandSpec, JobSpec};
use rand::Rng;

/// Conversion between virtual workload time and real benchmark time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale {
    /// Real seconds per virtual second (e.g. 0.02 = 50× speed-up).
    pub factor: f64,
}

impl TimeScale {
    /// Identity scale: virtual time = real time.
    pub fn realtime() -> Self {
        TimeScale { factor: 1.0 }
    }

    /// `1/n` scale: n virtual seconds run in one real second.
    pub fn speedup(n: f64) -> Self {
        assert!(n > 0.0, "speed-up must be positive");
        TimeScale { factor: 1.0 / n }
    }

    /// Real milliseconds for `virtual_secs` of virtual time.
    pub fn real_ms(&self, virtual_secs: f64) -> u64 {
        (virtual_secs * self.factor * 1000.0).round().max(0.0) as u64
    }

    /// Real duration for `virtual_secs` of virtual time.
    pub fn real_duration(&self, virtual_secs: f64) -> std::time::Duration {
        std::time::Duration::from_millis(self.real_ms(virtual_secs))
    }

    /// Convert a real measurement back to virtual seconds.
    pub fn to_virtual_secs(&self, real: std::time::Duration) -> f64 {
        real.as_secs_f64() / self.factor
    }
}

/// `count` no-op sequential jobs (Fig. 6's launch-rate workload).
pub fn noop_batch(count: usize) -> Vec<JobSpec> {
    (0..count)
        .map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![])))
        .collect()
}

/// `count` sequential sleep jobs of `virtual_secs` each.
pub fn sleep_batch(count: usize, virtual_secs: f64, scale: TimeScale) -> Vec<JobSpec> {
    let ms = scale.real_ms(virtual_secs);
    (0..count)
        .map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec![ms.to_string()])))
        .collect()
}

/// `count` barrier–sleep–barrier MPI jobs of `nodes × ppn` ranks sleeping
/// `virtual_secs` (the synthetic benchmark of Sections 6.1.2 and 6.1.4).
pub fn mpi_sleep_batch(
    count: usize,
    nodes: u32,
    ppn: u32,
    virtual_secs: f64,
    scale: TimeScale,
) -> Vec<JobSpec> {
    let ms = scale.real_ms(virtual_secs);
    (0..count)
        .map(|_| {
            JobSpec::mpi_ppn(
                nodes,
                ppn,
                CommandSpec::builtin("mpi-sleep", vec![ms.to_string()]),
            )
        })
        .collect()
}

/// The NAMD run-time distribution of Fig. 11: a 4-processor NMA segment
/// nominally runs ~100 s, "while the majority of the tasks fall between
/// 100 and 120 s, many tasks exceed this, running up to 160 s."
///
/// Modelled as `base + Erlang(2, mean/2)`: a hard floor at the nominal
/// compute time plus a right-skewed tail from system interference.
#[derive(Debug, Clone, Copy)]
pub struct NamdDurationModel {
    /// Minimum (nominal) run time in virtual seconds.
    pub base_secs: f64,
    /// Mean of the additive tail in virtual seconds.
    pub tail_mean_secs: f64,
    /// Hard cap in virtual seconds (the paper observes none past ~160 s).
    pub cap_secs: f64,
}

impl Default for NamdDurationModel {
    fn default() -> Self {
        NamdDurationModel {
            base_secs: 100.0,
            tail_mean_secs: 12.0,
            cap_secs: 160.0,
        }
    }
}

impl NamdDurationModel {
    /// Draw one task duration in virtual seconds.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Erlang(2, θ): sum of two exponentials with mean θ each.
        let theta = self.tail_mean_secs / 2.0;
        let e1: f64 = -theta * (1.0 - rng.gen::<f64>()).ln();
        let e2: f64 = -theta * (1.0 - rng.gen::<f64>()).ln();
        (self.base_secs + e1 + e2).min(self.cap_secs)
    }
}

/// A NAMD-like batch: `count` MPI jobs of `nodes × ppn` ranks whose
/// durations follow `model` (Sections 6.1.6's bag-of-NAMD-tasks, with
/// cases "duplicated and ordered round-robin").
pub fn namd_batch(
    count: usize,
    nodes: u32,
    ppn: u32,
    model: NamdDurationModel,
    scale: TimeScale,
    rng: &mut impl Rng,
) -> Vec<JobSpec> {
    // The paper duplicates 32 base cases round-robin; we sample 32 base
    // durations and cycle them, preserving that structure.
    let base_cases: Vec<f64> = (0..32).map(|_| model.sample(rng)).collect();
    (0..count)
        .map(|i| {
            let secs = base_cases[i % base_cases.len()];
            let ms = scale.real_ms(secs);
            JobSpec::mpi_ppn(
                nodes,
                ppn,
                CommandSpec::builtin("mpi-sleep", vec![ms.to_string()]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn timescale_conversions_round_trip() {
        let s = TimeScale::speedup(50.0);
        assert_eq!(s.real_ms(10.0), 200);
        let back = s.to_virtual_secs(std::time::Duration::from_millis(200));
        assert!((back - 10.0).abs() < 1e-9);
        assert_eq!(TimeScale::realtime().real_ms(1.5), 1500);
    }

    #[test]
    fn noop_batch_is_sequential() {
        let jobs = noop_batch(5);
        assert_eq!(jobs.len(), 5);
        assert!(jobs.iter().all(|j| !j.is_mpi() && j.cmd.name() == "noop"));
    }

    #[test]
    fn sleep_batch_scales_durations() {
        let jobs = sleep_batch(2, 1.0, TimeScale::speedup(100.0));
        assert_eq!(jobs[0].cmd.args(), &["10".to_string()]); // 1 s → 10 ms
    }

    #[test]
    fn mpi_batch_has_right_shape() {
        let jobs = mpi_sleep_batch(3, 4, 2, 10.0, TimeScale::speedup(50.0));
        assert_eq!(jobs.len(), 3);
        for j in &jobs {
            assert_eq!(j.nodes, 4);
            assert_eq!(j.ppn, 2);
            assert_eq!(j.size(), 8);
            assert_eq!(j.cmd.args(), &["200".to_string()]);
        }
    }

    #[test]
    fn namd_model_matches_fig11_shape() {
        let model = NamdDurationModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| model.sample(&mut rng)).collect();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min >= 100.0, "no task under the nominal time");
        assert!(max <= 160.0, "cap respected");
        // "The majority of the tasks fall between 100 and 120 s."
        let majority = samples.iter().filter(|&&s| s < 120.0).count();
        assert!(majority as f64 > 0.6 * samples.len() as f64);
        // "Many tasks exceed this."
        let tail = samples.iter().filter(|&&s| s >= 120.0).count();
        assert!(tail as f64 > 0.02 * samples.len() as f64);
    }

    #[test]
    fn namd_batch_cycles_32_base_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        let jobs = namd_batch(
            64,
            4,
            1,
            NamdDurationModel::default(),
            TimeScale::speedup(100.0),
            &mut rng,
        );
        assert_eq!(jobs.len(), 64);
        // Round-robin duplication: job i and job i+32 share a duration.
        for i in 0..32 {
            assert_eq!(jobs[i].cmd.args(), jobs[i + 32].cmd.args());
        }
    }
}
