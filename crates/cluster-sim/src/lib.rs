//! # cluster-sim — simulated allocation substrate
//!
//! The paper's experiments ran on Argonne machines we do not have: the
//! Blue Gene/P racks *Surveyor* (1,024 nodes × 4 cores) and the x86
//! clusters *Breadboard* and *Eureka* (100 nodes × 8 cores). This crate
//! substitutes a **simulated allocation**: `N` virtual nodes, each hosting
//! a *real* `jets-worker` pilot agent (thread) speaking the real wire
//! protocol to a real dispatcher, with real PMI wire-up for MPI jobs. Only
//! two things are virtual:
//!
//! 1. **Node boundaries** — workers are threads of one process rather than
//!    processes on distinct nodes. The dispatcher cannot tell the
//!    difference; every code path it exercises is identical.
//! 2. **Time** — workload "seconds" are scaled by a [`TimeScale`] so a
//!    12-hour campaign fits a benchmark run. Control-plane costs
//!    (dispatch, PMI negotiation, socket traffic) are *not* scaled; they
//!    pay true cost, which is what makes the paper's saturation effects
//!    reappear instead of being programmed in.
//!
//! [`FaultInjector`] reproduces the paper's faulty-allocation experiment
//! (Fig. 10): kill one randomly chosen pilot at fixed intervals and watch
//! the dispatcher keep the survivors busy. [`chaos`] generalises it into
//! seeded, replayable fault *plans* that mix permanent kills with
//! transient partitions (reconnecting agents).

#![warn(missing_docs)]

pub mod allocation;
pub mod apps;
pub mod chaos;
pub mod faults;
pub mod relays;
pub mod spectrum;
pub mod workload;

pub use allocation::{Allocation, AllocationConfig};
pub use apps::{register_namd, science_registry};
pub use chaos::{
    ChaosInjector, DispatcherHooks, FaultAction, FaultEvent, FaultMix, FaultPlan, DISPATCHER_TARGET,
};
pub use faults::FaultInjector;
pub use relays::{RelayedAllocation, RelayedAllocationConfig};
pub use spectrum::{halving_spectrum, linear_wait, SpectrumAllocator};
pub use workload::{NamdDurationModel, TimeScale};
