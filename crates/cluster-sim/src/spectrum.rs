//! The Coasters "multiple-job-size spectrum" allocator — §7 future work.
//!
//! Paper, Section 7: "We plan to add the 'multiple-job-size spectrum'
//! allocator of the Coasters mechanism to JETS to enable it to request
//! resources from the underlying system scheduler in a 'spectrum' of
//! various node counts, to enable it to obtain resources quickly in the
//! face of unknown queue compositions and system load conditions."
//!
//! The insight: one monolithic N-node request waits for N nodes to free
//! up at once; a spectrum of blocks (say N/2 + N/4 + N/8 + …) lets the
//! small blocks start immediately while the big ones queue, so useful
//! work begins far sooner. [`SpectrumAllocator`] models the underlying
//! system scheduler's queue with a configurable wait model (bigger
//! requests wait longer) and boots each granted block as an
//! [`Allocation`] against the dispatcher.

use crate::allocation::{Allocation, AllocationConfig};
use jets_worker::TaskExecutor;
use std::sync::Arc;
use std::time::Duration;

/// How long the (modelled) system scheduler queues a block request of a
/// given size before granting it.
pub type QueueWaitModel = Arc<dyn Fn(u32) -> Duration + Send + Sync>;

/// A queue-wait model linear in the request size: `base + per_node × n`.
/// The shape the paper's motivation assumes — big requests wait longer.
pub fn linear_wait(base: Duration, per_node: Duration) -> QueueWaitModel {
    Arc::new(move |nodes| base + per_node * nodes)
}

/// Split `total` into a halving spectrum of block sizes:
/// `total/2, total/4, …` with a final block absorbing the remainder, and
/// no block smaller than `min_block`.
pub fn halving_spectrum(total: u32, min_block: u32) -> Vec<u32> {
    assert!(total > 0 && min_block > 0, "sizes must be positive");
    let mut blocks = Vec::new();
    let mut remaining = total;
    let mut next = (total / 2).max(min_block);
    while remaining > 0 {
        let mut block = next.min(remaining);
        // A sub-minimum tail would be a useless queue request; fold it
        // into this block instead.
        let tail = remaining - block;
        if tail > 0 && tail < min_block {
            block = remaining;
        }
        blocks.push(block.max(1));
        remaining -= block;
        next = (next / 2).max(min_block);
    }
    blocks
}

/// A set of allocation blocks granted (after modelled queue waits)
/// against one dispatcher.
pub struct SpectrumAllocator {
    blocks: Vec<Arc<Allocation>>,
    sizes: Vec<u32>,
}

impl SpectrumAllocator {
    /// Request `blocks` of nodes from the modelled system scheduler. Each
    /// block's workers boot `wait_model(block_size)` after the request —
    /// staggered inside the workers themselves, so this returns
    /// immediately (exactly like real pilot jobs clearing a queue).
    pub fn start(
        dispatcher_addr: &str,
        blocks: &[u32],
        wait_model: QueueWaitModel,
        executor: Arc<dyn TaskExecutor>,
    ) -> SpectrumAllocator {
        assert!(!blocks.is_empty(), "need at least one block");
        let mut allocations = Vec::with_capacity(blocks.len());
        for &size in blocks {
            let delay = wait_model(size);
            // All workers of a block arrive together once the block
            // clears the queue (the wait itself is a uniform connect
            // delay inside the workers).
            let config = AllocationConfig {
                boot_stagger: Duration::ZERO,
                locations: vec![format!("block-{size}")],
                ..AllocationConfig::new(size)
            };
            let alloc = Allocation::start_delayed(dispatcher_addr, config, executor.clone(), delay);
            allocations.push(Arc::new(alloc));
        }
        SpectrumAllocator {
            blocks: allocations,
            sizes: blocks.to_vec(),
        }
    }

    /// Total nodes across all blocks.
    pub fn total_nodes(&self) -> u32 {
        self.sizes.iter().sum()
    }

    /// Block sizes, in request order.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Live workers right now (blocks still queued contribute none).
    pub fn live_count(&self) -> usize {
        self.blocks.iter().map(|b| b.live_count()).sum()
    }

    /// Join every block's workers.
    pub fn join_all(&self) {
        for b in &self.blocks {
            b.join_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::science_registry;
    use jets_core::spec::{CommandSpec, JobSpec};
    use jets_core::{Dispatcher, DispatcherConfig};
    use jets_worker::Executor;

    #[test]
    fn halving_spectrum_covers_total() {
        for (total, min_block) in [(64u32, 4u32), (100, 8), (7, 2), (1, 1), (512, 16)] {
            let blocks = halving_spectrum(total, min_block);
            assert_eq!(blocks.iter().sum::<u32>(), total, "{blocks:?}");
            assert!(
                blocks.iter().all(|&b| b >= min_block.min(total)),
                "{blocks:?}"
            );
            // The first block is the largest (it anchors the spectrum).
            assert!(blocks.iter().all(|&b| b <= blocks[0]), "{blocks:?}");
        }
    }

    #[test]
    fn linear_wait_scales_with_size() {
        let model = linear_wait(Duration::from_millis(10), Duration::from_millis(2));
        assert_eq!(model(0), Duration::from_millis(10));
        assert_eq!(model(32), Duration::from_millis(74));
    }

    #[test]
    fn spectrum_blocks_arrive_small_first() {
        let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let executor: Arc<dyn jets_worker::TaskExecutor> =
            Arc::new(Executor::new(science_registry()));
        // 3 blocks: 8, 4, 2 nodes; waits 300/150/50 ms.
        let model = linear_wait(Duration::from_millis(10), Duration::from_millis(36));
        let spectrum =
            SpectrumAllocator::start(&dispatcher.addr().to_string(), &[8, 4, 2], model, executor);
        assert_eq!(spectrum.total_nodes(), 14);
        // The 2-node block clears the queue first.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while dispatcher.alive_workers() < 2 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            dispatcher.alive_workers() < 14,
            "large blocks must still be queued when the small one lands"
        );
        // Work can start on the early block immediately.
        let id = dispatcher.submit(JobSpec::mpi(
            2,
            CommandSpec::builtin("mpi-sleep", vec!["5".into()]),
        ));
        assert!(dispatcher.wait_job(id, Duration::from_secs(30)).is_some());
        // Eventually everyone arrives.
        while dispatcher.alive_workers() < 14 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        dispatcher.shutdown();
        spectrum.join_all();
    }
}
