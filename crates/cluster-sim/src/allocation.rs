//! A simulated allocation: many pilot-job workers against one dispatcher.

use jets_worker::{ReconnectPolicy, TaskExecutor, Worker, WorkerConfig, WorkerExit};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Shape of a simulated allocation.
#[derive(Debug, Clone)]
pub struct AllocationConfig {
    /// Number of virtual nodes (= worker agents).
    pub nodes: u32,
    /// Cores advertised per node.
    pub cores_per_node: u32,
    /// Location labels, assigned round-robin across nodes. One label
    /// models a single cluster; several model a multi-cluster deployment
    /// (used by the grouping ablation).
    pub locations: Vec<String>,
    /// Extra delay before node `i` boots: `i × boot_stagger`. Models the
    /// gradual arrival of pilot jobs as an allocation starts.
    pub boot_stagger: Duration,
    /// Worker heartbeat period (`None` disables heartbeats).
    pub heartbeat: Option<Duration>,
    /// Reconnect-with-backoff policy for every agent (`None` keeps the
    /// legacy connect-once behaviour). Each worker gets the policy with a
    /// per-node jitter seed so backoffs decorrelate deterministically.
    pub reconnect: Option<ReconnectPolicy>,
    /// Worker-name prefix: node `i` is named `{name_prefix}-{i:04}`.
    /// Distinct prefixes keep blocks from colliding in the dispatcher's
    /// name-keyed quarantine ledger when several allocations coexist
    /// (e.g. one block per relay).
    pub name_prefix: String,
}

impl AllocationConfig {
    /// An allocation of `nodes` nodes with instant boot and one location.
    pub fn new(nodes: u32) -> Self {
        AllocationConfig {
            nodes,
            cores_per_node: 4, // Surveyor's BG/P nodes have 4 cores
            locations: vec!["sim".to_string()],
            boot_stagger: Duration::ZERO,
            heartbeat: None,
            reconnect: None,
            name_prefix: "node".to_string(),
        }
    }

    /// Builder-style worker-name prefix.
    pub fn with_name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }

    /// Builder-style reconnect policy for every agent.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }

    /// Builder-style location labels.
    pub fn with_locations(mut self, locations: Vec<String>) -> Self {
        assert!(!locations.is_empty(), "need at least one location");
        self.locations = locations;
        self
    }

    /// Builder-style boot stagger.
    pub fn with_boot_stagger(mut self, stagger: Duration) -> Self {
        self.boot_stagger = stagger;
        self
    }
}

/// A running set of simulated nodes.
pub struct Allocation {
    workers: Mutex<Vec<Option<Worker>>>,
    exits: Mutex<Vec<WorkerExit>>,
}

impl Allocation {
    /// Boot an allocation against the dispatcher at `dispatcher_addr`.
    ///
    /// Workers connect from their own threads (staggered by
    /// `config.boot_stagger`), so this returns immediately; use the
    /// dispatcher's `alive_workers` to observe boot progress.
    pub fn start(
        dispatcher_addr: &str,
        config: AllocationConfig,
        executor: Arc<dyn TaskExecutor>,
    ) -> Allocation {
        Allocation::start_delayed(dispatcher_addr, config, executor, Duration::ZERO)
    }

    /// Boot an allocation whose every worker connects only after `delay`
    /// — modelling a block request clearing a system scheduler's queue
    /// (used by the spectrum allocator).
    pub fn start_delayed(
        dispatcher_addr: &str,
        config: AllocationConfig,
        executor: Arc<dyn TaskExecutor>,
        delay: Duration,
    ) -> Allocation {
        let mut workers = Vec::with_capacity(config.nodes as usize);
        for i in 0..config.nodes {
            let location = config.locations[i as usize % config.locations.len()].clone();
            // Decorrelate reconnect jitter across nodes deterministically.
            let reconnect = config.reconnect.clone().map(|mut p| {
                p.seed = p.seed.wrapping_add(u64::from(i)).max(1);
                p
            });
            let name = format!("{}-{i:04}", config.name_prefix);
            let worker_config = WorkerConfig {
                dispatcher_addr: dispatcher_addr.to_string(),
                name: name.clone(),
                cores: config.cores_per_node,
                location,
                heartbeat: config.heartbeat,
                connect_delay: delay + config.boot_stagger * i,
                reconnect,
                ..WorkerConfig::new(dispatcher_addr, name)
            };
            workers.push(Some(Worker::spawn(worker_config, Arc::clone(&executor))));
        }
        Allocation {
            workers: Mutex::new(workers),
            exits: Mutex::new(Vec::new()),
        }
    }

    /// Number of nodes in the allocation (live or dead).
    pub fn size(&self) -> usize {
        self.workers.lock().len()
    }

    /// Nodes whose agent thread is still running.
    pub fn live_count(&self) -> usize {
        self.workers
            .lock()
            .iter()
            .filter(|w| w.as_ref().is_some_and(|w| !w.is_finished()))
            .count()
    }

    /// Kill node `index` abruptly (fault injection). Returns false if the
    /// node was already collected or out of range.
    pub fn kill(&self, index: usize) -> bool {
        let guard = self.workers.lock();
        match guard.get(index).and_then(|w| w.as_ref()) {
            Some(w) if !w.is_finished() => {
                w.kill();
                true
            }
            _ => false,
        }
    }

    /// Partition node `index` from the dispatcher: sever its socket
    /// without the kill flag, so an agent configured with a reconnect
    /// policy re-registers after backoff. Returns false if the node was
    /// already collected, finished, or out of range.
    pub fn partition(&self, index: usize) -> bool {
        let guard = self.workers.lock();
        match guard.get(index).and_then(|w| w.as_ref()) {
            Some(w) if !w.is_finished() => {
                w.disconnect();
                true
            }
            _ => false,
        }
    }

    /// Kill one live node chosen by `pick(live_candidates)`; returns the
    /// killed index. `pick` receives the indices of live nodes.
    pub fn kill_one_of(&self, pick: impl FnOnce(&[usize]) -> usize) -> Option<usize> {
        let guard = self.workers.lock();
        let live: Vec<usize> = guard
            .iter()
            .enumerate()
            .filter(|(_, w)| w.as_ref().is_some_and(|w| !w.is_finished()))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return None;
        }
        let chosen = pick(&live);
        debug_assert!(live.contains(&chosen), "pick must choose a live index");
        if let Some(Some(w)) = guard.get(chosen) {
            w.kill();
            return Some(chosen);
        }
        None
    }

    /// Partition one live node chosen by `pick(live_candidates)`; returns
    /// the partitioned index. `pick` receives the indices of live nodes.
    pub fn partition_one_of(&self, pick: impl FnOnce(&[usize]) -> usize) -> Option<usize> {
        let guard = self.workers.lock();
        let live: Vec<usize> = guard
            .iter()
            .enumerate()
            .filter(|(_, w)| w.as_ref().is_some_and(|w| !w.is_finished()))
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return None;
        }
        let chosen = pick(&live);
        debug_assert!(live.contains(&chosen), "pick must choose a live index");
        if let Some(Some(w)) = guard.get(chosen) {
            w.disconnect();
            return Some(chosen);
        }
        None
    }

    /// Join every worker, collecting exit reports. Safe to call once all
    /// workers have been told to shut down (or killed); blocks otherwise.
    pub fn join_all(&self) -> Vec<WorkerExit> {
        let drained: Vec<Worker> = {
            let mut guard = self.workers.lock();
            guard.iter_mut().filter_map(Option::take).collect()
        };
        let mut exits = self.exits.lock();
        for w in drained {
            exits.push(w.join());
        }
        exits.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::spec::{CommandSpec, JobSpec};
    use jets_core::{Dispatcher, DispatcherConfig, JobStatus};
    use jets_worker::apps::standard_registry;
    use jets_worker::Executor;

    const WAIT: Duration = Duration::from_secs(30);

    fn executor() -> Arc<dyn TaskExecutor> {
        Arc::new(Executor::new(standard_registry()))
    }

    fn wait_for_workers(d: &Dispatcher, n: usize) {
        let deadline = std::time::Instant::now() + WAIT;
        while d.alive_workers() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never arrived"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn allocation_boots_and_runs_jobs() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Allocation::start(&d.addr().to_string(), AllocationConfig::new(8), executor());
        wait_for_workers(&d, 8);
        assert_eq!(alloc.size(), 8);
        assert_eq!(alloc.live_count(), 8);
        let ids = d
            .submit_all((0..32).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        let exits = alloc.join_all();
        assert_eq!(exits.len(), 8);
        let total: u64 = exits.iter().map(|e| e.tasks_done).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn allocation_runs_mpi_jobs() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Allocation::start(&d.addr().to_string(), AllocationConfig::new(4), executor());
        wait_for_workers(&d, 4);
        let id = d.submit(JobSpec::mpi(
            4,
            CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
        ));
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        alloc.join_all();
    }

    #[test]
    fn kill_reduces_live_count() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Allocation::start(&d.addr().to_string(), AllocationConfig::new(3), executor());
        wait_for_workers(&d, 3);
        assert!(alloc.kill(1));
        let deadline = std::time::Instant::now() + WAIT;
        while alloc.live_count() != 2 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        // Killing the same node again reports failure.
        assert!(!alloc.kill(1));
        assert!(!alloc.kill(99));
        d.shutdown();
        alloc.join_all();
    }

    #[test]
    fn kill_one_of_selects_from_live() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Allocation::start(&d.addr().to_string(), AllocationConfig::new(2), executor());
        wait_for_workers(&d, 2);
        let first = alloc.kill_one_of(|live| live[0]).unwrap();
        let deadline = std::time::Instant::now() + WAIT;
        while alloc.live_count() != 1 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        let second = alloc.kill_one_of(|live| live[0]).unwrap();
        assert_ne!(first, second);
        while alloc.live_count() != 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(alloc.kill_one_of(|live| live[0]).is_none());
        alloc.join_all();
    }

    #[test]
    fn locations_cycle_round_robin() {
        let config = AllocationConfig::new(4).with_locations(vec!["east".into(), "west".into()]);
        assert_eq!(config.locations.len(), 2);
        // Verified end-to-end by the grouping ablation; here just the
        // builder contract.
        assert_eq!(config.nodes, 4);
    }
}
