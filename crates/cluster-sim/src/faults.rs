//! Fault injection: the paper's faulty-allocation experiment.
//!
//! "A fault injection script was run on the submit site that terminated
//! randomly selected pilot jobs, one at a time, at regular 10-s
//! intervals" (Section 6.1.5). [`FaultInjector`] is that script: given an
//! [`Allocation`], it kills one uniformly-chosen live worker per tick
//! until stopped or the allocation is empty.

use crate::allocation::Allocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A running fault injector.
pub struct FaultInjector {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<usize>>>,
}

impl FaultInjector {
    /// Start killing one random live worker of `allocation` every
    /// `interval`, using a deterministic RNG seeded with `seed`.
    pub fn start(allocation: Arc<Allocation>, interval: Duration, seed: u64) -> FaultInjector {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("fault-injector".to_string())
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut killed = Vec::new();
                loop {
                    thread::sleep(interval);
                    if stop2.load(Ordering::Acquire) {
                        return killed;
                    }
                    match allocation.kill_one_of(|live| live[rng.gen_range(0..live.len())]) {
                        Some(idx) => killed.push(idx),
                        None => return killed, // everyone is dead
                    }
                }
            })
            .expect("spawn fault injector");
        FaultInjector {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop injecting and return the indices killed, in order.
    pub fn stop(mut self) -> Vec<usize> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .unwrap_or_default()
    }

    /// Wait until the injector exhausts the allocation, returning the
    /// kill order.
    pub fn join(mut self) -> Vec<usize> {
        self.handle
            .take()
            .expect("join called once")
            .join()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationConfig;
    use jets_core::{Dispatcher, DispatcherConfig};
    use jets_worker::apps::standard_registry;
    use jets_worker::Executor;

    #[test]
    fn injector_kills_everyone_eventually() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Arc::new(Allocation::start(
            &d.addr().to_string(),
            AllocationConfig::new(5),
            Arc::new(Executor::new(standard_registry())),
        ));
        // Wait for boot.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while d.alive_workers() < 5 {
            assert!(std::time::Instant::now() < deadline);
            thread::sleep(Duration::from_millis(10));
        }
        let injector = FaultInjector::start(Arc::clone(&alloc), Duration::from_millis(20), 42);
        let killed = injector.join();
        assert_eq!(killed.len(), 5);
        // All distinct indices.
        let mut sorted = killed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert_eq!(alloc.live_count(), 0);
        alloc.join_all();
    }

    #[test]
    fn injector_stops_on_request() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let alloc = Arc::new(Allocation::start(
            &d.addr().to_string(),
            AllocationConfig::new(4),
            Arc::new(Executor::new(standard_registry())),
        ));
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while d.alive_workers() < 4 {
            assert!(std::time::Instant::now() < deadline);
            thread::sleep(Duration::from_millis(10));
        }
        let injector = FaultInjector::start(Arc::clone(&alloc), Duration::from_millis(30), 7);
        thread::sleep(Duration::from_millis(100));
        let killed = injector.stop();
        assert!(!killed.is_empty() && killed.len() < 4, "killed: {killed:?}");
        assert!(alloc.live_count() >= 1);
        d.shutdown();
        alloc.join_all();
    }
}
