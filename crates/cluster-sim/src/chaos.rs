//! Deterministic chaos: a seeded fault plan replayed against an allocation.
//!
//! [`crate::faults::FaultInjector`] reproduces the paper's experiment —
//! permanent kills only, one per tick. The chaos harness generalises it
//! into a **plan**: a timed sequence of fault events (kill / partition /
//! calm tick) generated *up front* from a seed, so a failing test run
//! replays exactly by reusing the seed, and the mix of fault types is a
//! declared knob instead of an accident of timing.
//!
//! Two fault flavours map onto the two worker-agent primitives:
//!
//! * **Kill** — `Worker::kill`: the pilot dies for good (the paper's
//!   Fig. 10 fault).
//! * **Partition** — `Worker::disconnect`: the socket drops but the agent
//!   lives; with a reconnect policy it re-registers after backoff, which
//!   exercises the dispatcher's gang cancellation, quarantine, and
//!   re-admission paths.

use crate::allocation::Allocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill a randomly chosen live worker permanently.
    Kill,
    /// Sever a randomly chosen live worker's connection; a reconnecting
    /// agent comes back.
    Partition,
    /// A calm tick: inject nothing.
    Calm,
    /// Kill the dispatcher abruptly — no goodbyes, journal left where
    /// it lies — via [`DispatcherHooks::kill`]. Fires only on injectors
    /// started with [`ChaosInjector::start_with_dispatcher`]; seeded
    /// plans never draw it (dispatcher faults are scripted, not rolled).
    KillDispatcher,
    /// Bring the dispatcher back (typically restarting from its
    /// journal) via [`DispatcherHooks::restart`].
    RestartDispatcher,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from injector start.
    pub at: Duration,
    /// What to do.
    pub action: FaultAction,
    /// Deterministic victim selector: the live worker at index
    /// `roll % live.len()` is hit.
    pub roll: u64,
}

/// Relative weights of the fault flavours in a seeded plan.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Weight of permanent kills.
    pub kill: u32,
    /// Weight of partitions.
    pub partition: u32,
    /// Weight of calm ticks.
    pub calm: u32,
    /// Hard cap on kills in one plan (excess kill draws become
    /// partitions), so a long plan cannot exhaust the allocation.
    pub max_kills: u32,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            kill: 1,
            partition: 6,
            calm: 1,
            max_kills: 2,
        }
    }
}

/// A precomputed, replayable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The events, in firing order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generate a `ticks`-event plan, one event per `interval`, from a
    /// deterministic RNG seeded with `seed`. The same seed always yields
    /// the same plan.
    pub fn seeded(seed: u64, ticks: u32, interval: Duration, mix: FaultMix) -> FaultPlan {
        let total = mix.kill + mix.partition + mix.calm;
        assert!(total > 0, "fault mix must have nonzero weight");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = 0u32;
        let mut events = Vec::with_capacity(ticks as usize);
        for t in 0..ticks {
            let w = rng.gen_range(0..total);
            let mut action = if w < mix.kill {
                FaultAction::Kill
            } else if w < mix.kill + mix.partition {
                FaultAction::Partition
            } else {
                FaultAction::Calm
            };
            if action == FaultAction::Kill {
                if kills >= mix.max_kills {
                    action = FaultAction::Partition;
                } else {
                    kills += 1;
                }
            }
            events.push(FaultEvent {
                at: interval * (t + 1),
                action,
                roll: rng.gen(),
            });
        }
        FaultPlan { events }
    }

    /// A plan from an explicit event list (sorted by firing time).
    /// This is how dispatcher faults enter a plan: a crash-recovery
    /// test scripts `KillDispatcher` / `RestartDispatcher` at chosen
    /// offsets, optionally splicing them into a seeded worker-fault
    /// storm.
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }
}

/// Recorded target index for dispatcher-scoped faults (there is no
/// worker victim to name).
pub const DISPATCHER_TARGET: usize = usize::MAX;

/// Callbacks the chaos thread fires for dispatcher-scoped faults.
///
/// Worker faults act on the [`Allocation`] handle the injector holds;
/// the dispatcher belongs to the test harness, so killing and
/// restarting it are delegated to these hooks — typically closures over
/// the harness's dispatcher slot and its journal path.
pub struct DispatcherHooks {
    /// Fired on [`FaultAction::KillDispatcher`].
    pub kill: Box<dyn FnMut() + Send>,
    /// Fired on [`FaultAction::RestartDispatcher`].
    pub restart: Box<dyn FnMut() + Send>,
}

/// A running chaos injector replaying a [`FaultPlan`].
pub struct ChaosInjector {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<(FaultAction, usize)>>>,
}

impl ChaosInjector {
    /// Start replaying `plan` against `allocation` on a background
    /// thread. Event times are measured from this call. Dispatcher
    /// faults in the plan are skipped (no hooks); use
    /// [`ChaosInjector::start_with_dispatcher`] to honour them.
    pub fn start(allocation: Arc<Allocation>, plan: FaultPlan) -> ChaosInjector {
        Self::launch(allocation, plan, None)
    }

    /// Start replaying `plan`, with dispatcher-scoped faults delegated
    /// to `hooks`. Dispatcher faults record
    /// [`DISPATCHER_TARGET`] as their applied index.
    pub fn start_with_dispatcher(
        allocation: Arc<Allocation>,
        plan: FaultPlan,
        hooks: DispatcherHooks,
    ) -> ChaosInjector {
        Self::launch(allocation, plan, Some(hooks))
    }

    fn launch(
        allocation: Arc<Allocation>,
        plan: FaultPlan,
        mut hooks: Option<DispatcherHooks>,
    ) -> ChaosInjector {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("chaos-injector".to_string())
            .spawn(move || {
                let epoch = Instant::now();
                let mut applied = Vec::new();
                for ev in plan.events {
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return applied;
                        }
                        let now = epoch.elapsed();
                        if now >= ev.at {
                            break;
                        }
                        thread::sleep((ev.at - now).min(Duration::from_millis(10)));
                    }
                    let roll = ev.roll as usize;
                    let hit = match ev.action {
                        FaultAction::Kill => allocation.kill_one_of(|live| live[roll % live.len()]),
                        FaultAction::Partition => {
                            allocation.partition_one_of(|live| live[roll % live.len()])
                        }
                        FaultAction::Calm => None,
                        FaultAction::KillDispatcher => hooks.as_mut().map(|h| {
                            (h.kill)();
                            DISPATCHER_TARGET
                        }),
                        FaultAction::RestartDispatcher => hooks.as_mut().map(|h| {
                            (h.restart)();
                            DISPATCHER_TARGET
                        }),
                    };
                    if let Some(idx) = hit {
                        applied.push((ev.action, idx));
                    }
                }
                applied
            })
            .expect("spawn chaos injector");
        ChaosInjector {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop early and return the faults applied so far, in order.
    pub fn stop(mut self) -> Vec<(FaultAction, usize)> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .unwrap_or_default()
    }

    /// Wait until the whole plan has been replayed; returns the faults
    /// applied, in order.
    pub fn join(mut self) -> Vec<(FaultAction, usize)> {
        self.handle
            .take()
            .expect("join called once")
            .join()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let mix = FaultMix::default();
        let a = FaultPlan::seeded(42, 50, Duration::from_millis(10), mix);
        let b = FaultPlan::seeded(42, 50, Duration::from_millis(10), mix);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 50, Duration::from_millis(10), mix);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn kill_cap_is_respected() {
        let mix = FaultMix {
            kill: 10,
            partition: 1,
            calm: 1,
            max_kills: 2,
        };
        let plan = FaultPlan::seeded(7, 200, Duration::from_millis(1), mix);
        let kills = plan
            .events
            .iter()
            .filter(|e| e.action == FaultAction::Kill)
            .count();
        assert_eq!(kills, 2, "kill-heavy mix must still respect the cap");
    }

    #[test]
    fn scripted_dispatcher_faults_fire_hooks_in_order() {
        use std::sync::atomic::AtomicU32;
        // No live workers needed: the plan touches only the dispatcher.
        let d = jets_core::Dispatcher::start(jets_core::DispatcherConfig::default()).unwrap();
        let alloc = Arc::new(crate::allocation::Allocation::start(
            &d.addr().to_string(),
            crate::allocation::AllocationConfig::new(0),
            Arc::new(jets_worker::Executor::new(
                jets_worker::apps::standard_registry(),
            )),
        ));
        let plan = FaultPlan::scripted(vec![
            FaultEvent {
                at: Duration::from_millis(30),
                action: FaultAction::RestartDispatcher,
                roll: 0,
            },
            FaultEvent {
                at: Duration::from_millis(10),
                action: FaultAction::KillDispatcher,
                roll: 0,
            },
        ]);
        // scripted() sorts by firing time: kill precedes restart.
        assert_eq!(plan.events[0].action, FaultAction::KillDispatcher);
        let seq = Arc::new(AtomicU32::new(0));
        let (ks, rs) = (Arc::clone(&seq), Arc::clone(&seq));
        let kill_at = Arc::new(AtomicU32::new(0));
        let restart_at = Arc::new(AtomicU32::new(0));
        let (ka, ra) = (Arc::clone(&kill_at), Arc::clone(&restart_at));
        let hooks = DispatcherHooks {
            kill: Box::new(move || {
                ka.store(ks.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            }),
            restart: Box::new(move || {
                ra.store(rs.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            }),
        };
        let applied = ChaosInjector::start_with_dispatcher(alloc, plan, hooks).join();
        assert_eq!(
            applied,
            vec![
                (FaultAction::KillDispatcher, DISPATCHER_TARGET),
                (FaultAction::RestartDispatcher, DISPATCHER_TARGET),
            ]
        );
        assert_eq!(kill_at.load(Ordering::SeqCst), 1, "kill fired first");
        assert_eq!(restart_at.load(Ordering::SeqCst), 2, "restart fired second");
        d.shutdown();
    }

    #[test]
    fn events_are_time_ordered() {
        let plan = FaultPlan::seeded(1, 20, Duration::from_millis(5), FaultMix::default());
        assert_eq!(plan.events.len(), 20);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
    }
}
