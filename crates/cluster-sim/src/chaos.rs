//! Deterministic chaos: a seeded fault plan replayed against an allocation.
//!
//! [`crate::faults::FaultInjector`] reproduces the paper's experiment —
//! permanent kills only, one per tick. The chaos harness generalises it
//! into a **plan**: a timed sequence of fault events (kill / partition /
//! calm tick) generated *up front* from a seed, so a failing test run
//! replays exactly by reusing the seed, and the mix of fault types is a
//! declared knob instead of an accident of timing.
//!
//! Two fault flavours map onto the two worker-agent primitives:
//!
//! * **Kill** — `Worker::kill`: the pilot dies for good (the paper's
//!   Fig. 10 fault).
//! * **Partition** — `Worker::disconnect`: the socket drops but the agent
//!   lives; with a reconnect policy it re-registers after backoff, which
//!   exercises the dispatcher's gang cancellation, quarantine, and
//!   re-admission paths.

use crate::allocation::Allocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill a randomly chosen live worker permanently.
    Kill,
    /// Sever a randomly chosen live worker's connection; a reconnecting
    /// agent comes back.
    Partition,
    /// A calm tick: inject nothing.
    Calm,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from injector start.
    pub at: Duration,
    /// What to do.
    pub action: FaultAction,
    /// Deterministic victim selector: the live worker at index
    /// `roll % live.len()` is hit.
    pub roll: u64,
}

/// Relative weights of the fault flavours in a seeded plan.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Weight of permanent kills.
    pub kill: u32,
    /// Weight of partitions.
    pub partition: u32,
    /// Weight of calm ticks.
    pub calm: u32,
    /// Hard cap on kills in one plan (excess kill draws become
    /// partitions), so a long plan cannot exhaust the allocation.
    pub max_kills: u32,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            kill: 1,
            partition: 6,
            calm: 1,
            max_kills: 2,
        }
    }
}

/// A precomputed, replayable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The events, in firing order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generate a `ticks`-event plan, one event per `interval`, from a
    /// deterministic RNG seeded with `seed`. The same seed always yields
    /// the same plan.
    pub fn seeded(seed: u64, ticks: u32, interval: Duration, mix: FaultMix) -> FaultPlan {
        let total = mix.kill + mix.partition + mix.calm;
        assert!(total > 0, "fault mix must have nonzero weight");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kills = 0u32;
        let mut events = Vec::with_capacity(ticks as usize);
        for t in 0..ticks {
            let w = rng.gen_range(0..total);
            let mut action = if w < mix.kill {
                FaultAction::Kill
            } else if w < mix.kill + mix.partition {
                FaultAction::Partition
            } else {
                FaultAction::Calm
            };
            if action == FaultAction::Kill {
                if kills >= mix.max_kills {
                    action = FaultAction::Partition;
                } else {
                    kills += 1;
                }
            }
            events.push(FaultEvent {
                at: interval * (t + 1),
                action,
                roll: rng.gen(),
            });
        }
        FaultPlan { events }
    }
}

/// A running chaos injector replaying a [`FaultPlan`].
pub struct ChaosInjector {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<(FaultAction, usize)>>>,
}

impl ChaosInjector {
    /// Start replaying `plan` against `allocation` on a background
    /// thread. Event times are measured from this call.
    pub fn start(allocation: Arc<Allocation>, plan: FaultPlan) -> ChaosInjector {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("chaos-injector".to_string())
            .spawn(move || {
                let epoch = Instant::now();
                let mut applied = Vec::new();
                for ev in plan.events {
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            return applied;
                        }
                        let now = epoch.elapsed();
                        if now >= ev.at {
                            break;
                        }
                        thread::sleep((ev.at - now).min(Duration::from_millis(10)));
                    }
                    let roll = ev.roll as usize;
                    let hit = match ev.action {
                        FaultAction::Kill => allocation.kill_one_of(|live| live[roll % live.len()]),
                        FaultAction::Partition => {
                            allocation.partition_one_of(|live| live[roll % live.len()])
                        }
                        FaultAction::Calm => None,
                    };
                    if let Some(idx) = hit {
                        applied.push((ev.action, idx));
                    }
                }
                applied
            })
            .expect("spawn chaos injector");
        ChaosInjector {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop early and return the faults applied so far, in order.
    pub fn stop(mut self) -> Vec<(FaultAction, usize)> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("stop called once")
            .join()
            .unwrap_or_default()
    }

    /// Wait until the whole plan has been replayed; returns the faults
    /// applied, in order.
    pub fn join(mut self) -> Vec<(FaultAction, usize)> {
        self.handle
            .take()
            .expect("join called once")
            .join()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let mix = FaultMix::default();
        let a = FaultPlan::seeded(42, 50, Duration::from_millis(10), mix);
        let b = FaultPlan::seeded(42, 50, Duration::from_millis(10), mix);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 50, Duration::from_millis(10), mix);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn kill_cap_is_respected() {
        let mix = FaultMix {
            kill: 10,
            partition: 1,
            calm: 1,
            max_kills: 2,
        };
        let plan = FaultPlan::seeded(7, 200, Duration::from_millis(1), mix);
        let kills = plan
            .events
            .iter()
            .filter(|e| e.action == FaultAction::Kill)
            .count();
        assert_eq!(kills, 2, "kill-heavy mix must still respect the cap");
    }

    #[test]
    fn events_are_time_ordered() {
        let plan = FaultPlan::seeded(1, 20, Duration::from_millis(5), FaultMix::default());
        assert_eq!(plan.events.len(), 20);
        for pair in plan.events.windows(2) {
            assert!(pair[0].at < pair[1].at);
        }
    }
}
