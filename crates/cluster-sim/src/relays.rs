//! Relayed topology: blocks of simulated nodes behind relay daemons.
//!
//! A [`RelayedAllocation`] boots `R` [`Relay`]s against one dispatcher
//! and one [`Allocation`] block behind each, so the dispatcher holds
//! `R` inbound connections however many nodes there are. Blocks use
//! distinct worker-name prefixes (`blk0-…`, `blk1-…`) so the name-keyed
//! quarantine ledger never conflates nodes of different blocks.
//!
//! [`RelayedAllocation::kill_relay`] is the chaos primitive for this
//! tier: it severs one relay abruptly (no goodbyes), taking its entire
//! block off the grid at once — the dispatcher must fail the affected
//! gangs and keep the surviving blocks busy.

use crate::allocation::{Allocation, AllocationConfig};
use jets_relay::{Relay, RelayConfig};
use jets_worker::{ReconnectPolicy, TaskExecutor, WorkerExit};
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Shape of a relayed allocation.
#[derive(Debug, Clone)]
pub struct RelayedAllocationConfig {
    /// Number of relay daemons (= dispatcher inbound connections).
    pub relays: u32,
    /// Nodes behind each relay.
    pub nodes_per_relay: u32,
    /// Cores advertised per node.
    pub cores_per_node: u32,
    /// Worker heartbeat period (`None` disables heartbeats).
    pub heartbeat: Option<Duration>,
    /// Reconnect policy for the worker agents (toward their relay).
    pub reconnect: Option<ReconnectPolicy>,
    /// Batched-liveness flush period of each relay.
    pub liveness_flush: Duration,
}

impl RelayedAllocationConfig {
    /// `relays` relays fronting `nodes_per_relay` nodes each, with the
    /// same node defaults as [`AllocationConfig::new`].
    pub fn new(relays: u32, nodes_per_relay: u32) -> Self {
        RelayedAllocationConfig {
            relays,
            nodes_per_relay,
            cores_per_node: 4,
            heartbeat: None,
            reconnect: None,
            liveness_flush: Duration::from_millis(100),
        }
    }

    /// Builder-style worker heartbeat period.
    pub fn with_heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = Some(period);
        self
    }

    /// Builder-style relay liveness flush period.
    pub fn with_liveness_flush(mut self, period: Duration) -> Self {
        self.liveness_flush = period;
        self
    }
}

/// A running relayed topology: `R` relays, each fronting one block.
pub struct RelayedAllocation {
    relays: Vec<Relay>,
    blocks: Vec<Allocation>,
}

impl RelayedAllocation {
    /// Boot the topology against the dispatcher at `dispatcher_addr`.
    /// Relays bind ephemeral local ports; each block's workers connect
    /// to their relay exactly as they would to a dispatcher.
    pub fn start(
        dispatcher_addr: &str,
        config: RelayedAllocationConfig,
        executor: Arc<dyn TaskExecutor>,
    ) -> io::Result<RelayedAllocation> {
        let mut relays = Vec::with_capacity(config.relays as usize);
        let mut blocks = Vec::with_capacity(config.relays as usize);
        for r in 0..config.relays {
            let relay = Relay::start(
                RelayConfig::new(dispatcher_addr, format!("relay-{r}"))
                    .with_liveness_flush(config.liveness_flush),
            )?;
            let block_config = AllocationConfig {
                nodes: config.nodes_per_relay,
                cores_per_node: config.cores_per_node,
                heartbeat: config.heartbeat,
                reconnect: config.reconnect.clone(),
                ..AllocationConfig::new(config.nodes_per_relay)
            }
            .with_name_prefix(format!("blk{r}"));
            let block = Allocation::start(
                &relay.addr().to_string(),
                block_config,
                Arc::clone(&executor),
            );
            relays.push(relay);
            blocks.push(block);
        }
        Ok(RelayedAllocation { relays, blocks })
    }

    /// Number of relays in the topology.
    pub fn relay_count(&self) -> usize {
        self.relays.len()
    }

    /// Total node count across all blocks.
    pub fn total_nodes(&self) -> usize {
        self.blocks.iter().map(Allocation::size).sum()
    }

    /// Nodes whose agent thread is still running, across all blocks.
    pub fn live_count(&self) -> usize {
        self.blocks.iter().map(Allocation::live_count).sum()
    }

    /// The relay at `index`, for stats or targeted fault injection.
    pub fn relay(&self, index: usize) -> Option<&Relay> {
        self.relays.get(index)
    }

    /// The block behind relay `index`.
    pub fn block(&self, index: usize) -> Option<&Allocation> {
        self.blocks.get(index)
    }

    /// Kill relay `index` abruptly: its upstream connection and every
    /// member socket are severed with no goodbyes, so the dispatcher
    /// sees the whole block vanish at once. Returns false if out of
    /// range.
    pub fn kill_relay(&self, index: usize) -> bool {
        match self.relays.get(index) {
            Some(relay) => {
                relay.kill();
                true
            }
            None => false,
        }
    }

    /// Join every worker in every block, collecting exit reports. Call
    /// after the dispatcher's shutdown has propagated (or after killing
    /// the relays); blocks otherwise.
    pub fn join_all(&self) -> Vec<WorkerExit> {
        self.blocks.iter().flat_map(Allocation::join_all).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::spec::{CommandSpec, JobSpec};
    use jets_core::{Dispatcher, DispatcherConfig, JobStatus};
    use jets_worker::apps::standard_registry;
    use jets_worker::Executor;
    use std::time::Instant;

    const WAIT: Duration = Duration::from_secs(60);

    fn executor() -> Arc<dyn TaskExecutor> {
        Arc::new(Executor::new(standard_registry()))
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + WAIT;
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn relayed_topology_runs_jobs_with_r_connections() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let topo = RelayedAllocation::start(
            &d.addr().to_string(),
            RelayedAllocationConfig::new(2, 2),
            executor(),
        )
        .unwrap();
        wait_until("all nodes registered", || d.alive_workers() == 4);
        assert_eq!(d.connections_accepted(), 2);
        assert_eq!(d.relay_count(), 2);
        assert_eq!(topo.total_nodes(), 4);
        let ids = d
            .submit_all((0..16).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        let exits = topo.join_all();
        assert_eq!(exits.len(), 4);
    }

    #[test]
    fn killing_a_relay_downs_only_its_block() {
        let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
        let topo = RelayedAllocation::start(
            &d.addr().to_string(),
            RelayedAllocationConfig::new(2, 2).with_heartbeat(Duration::from_millis(25)),
            executor(),
        )
        .unwrap();
        wait_until("all nodes registered", || d.alive_workers() == 4);
        assert!(topo.kill_relay(0));
        assert!(!topo.kill_relay(9));
        // The dispatcher sees the severed relay connection and downs
        // exactly that block; the other block keeps working.
        wait_until("block declared down", || d.alive_workers() == 2);
        let ids =
            d.submit_all((0..4).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        topo.join_all();
    }
}
