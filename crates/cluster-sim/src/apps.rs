//! Science applications registered into simulated workers.
//!
//! These are the builtin equivalents of the binaries a real deployment
//! would stage to node-local storage (paper Section 5: "JETS can cache
//! libraries and tools ... and even user data on node-local storage"):
//!
//! * `namd-lite CONFIG` — run one MD segment from a NAMD-style config
//!   file. Runs serially for 1-rank tasks, or wires up MPI through the
//!   task's `PMI_*` environment for parallel tasks.
//! * `rem-exchange PREFIX_A T_A PREFIX_B T_B SEED` — attempt a replica
//!   exchange between two segments' restart files; writes `accepted` or
//!   `rejected` to the `SWIFT_STDOUT` path when set (the workflow's
//!   synchronization token).

use jets_worker::{AppRegistry, TaskContext};
use namd_sim::rem::{attempt_file_exchange, ReplicaFiles};
use namd_sim::{run_segment, MdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Register `namd-lite` and `rem-exchange` onto `registry`.
pub fn register_namd(registry: &AppRegistry) {
    registry.register("namd-lite", |ctx: &TaskContext| {
        // Arguments are either config file paths or inline `key=value`
        // settings (the form workflow scripts generate); later arguments
        // override earlier ones.
        if ctx.args.is_empty() {
            return 2;
        }
        let mut text = String::new();
        for arg in &ctx.args {
            match arg.split_once('=') {
                Some((key, value)) => {
                    text.push_str(key);
                    text.push(' ');
                    text.push_str(value);
                    text.push('\n');
                }
                None => match std::fs::read_to_string(arg) {
                    Ok(t) => {
                        text.push_str(&t);
                        text.push('\n');
                    }
                    Err(_) => return 3,
                },
            }
        }
        let config = match MdConfig::parse(&text) {
            Ok(c) => c,
            Err(_) => return 4,
        };
        if ctx.rank.is_some() && ctx.size > 1 {
            // Parallel segment: full PMI + sockets wire-up.
            let mut job = match ctx.mpi() {
                Ok(j) => j,
                Err(_) => return 5,
            };
            let ok = run_segment(&config, Some(&mut job.comm)).is_ok();
            if job.finalize().is_err() {
                return 6;
            }
            if ok {
                0
            } else {
                7
            }
        } else {
            match run_segment(&config, None) {
                Ok(_) => 0,
                Err(_) => 7,
            }
        }
    });

    registry.register("rem-exchange", |ctx: &TaskContext| {
        if ctx.args.len() < 5 {
            return 2;
        }
        let prefix_a = &ctx.args[0];
        let Ok(t_a) = ctx.args[1].parse::<f64>() else {
            return 2;
        };
        let prefix_b = &ctx.args[2];
        let Ok(t_b) = ctx.args[3].parse::<f64>() else {
            return 2;
        };
        let Ok(seed) = ctx.args[4].parse::<u64>() else {
            return 2;
        };
        let a = ReplicaFiles::from_prefix(prefix_a);
        let b = ReplicaFiles::from_prefix(prefix_b);
        let mut rng = StdRng::seed_from_u64(seed);
        let accepted = match attempt_file_exchange(&a, &b, t_a, t_b, &mut rng) {
            Ok(v) => v,
            Err(_) => return 3,
        };
        // The workflow uses the exchange output as a dataflow token.
        if let Some(out) = ctx.env("SWIFT_STDOUT") {
            let body = if accepted { "accepted\n" } else { "rejected\n" };
            if std::fs::write(&out, body).is_err() {
                return 4;
            }
        }
        0
    });
}

/// The standard worker registry plus the science applications.
pub fn science_registry() -> AppRegistry {
    let registry = jets_worker::apps::standard_registry();
    register_namd(&registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::protocol::{TaskAssignment, TaskKind};
    use jets_core::spec::CommandSpec;
    use jets_worker::{Executor, TaskExecutor};
    use namd_sim::io::read_xsc;
    use std::path::Path;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sim-apps-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seq(cmd: CommandSpec) -> TaskAssignment {
        TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::Sequential { cmd },
            stage: Vec::new(),
            trace: 0,
        }
    }

    #[test]
    fn namd_lite_runs_a_serial_segment() {
        let dir = tmpdir("serial");
        let out = dir.join("seg0");
        let config = MdConfig {
            num_atoms: 32,
            numsteps: 5,
            outputname: out.to_string_lossy().into_owned(),
            ..MdConfig::default()
        };
        let config_path = dir.join("seg0.conf");
        std::fs::write(&config_path, config.render()).unwrap();
        let exec = Executor::new(science_registry());
        let code = exec.execute(&seq(CommandSpec::builtin(
            "namd-lite",
            vec![config_path.to_string_lossy().into_owned()],
        )));
        assert_eq!(code, 0);
        let xsc = read_xsc(Path::new(&format!("{}.xsc", out.to_string_lossy()))).unwrap();
        assert_eq!(xsc.step, 5);
    }

    #[test]
    fn namd_lite_runs_an_mpi_segment() {
        let dir = tmpdir("mpi");
        let out = dir.join("mpi-seg");
        let config = MdConfig {
            num_atoms: 32,
            numsteps: 3,
            outputname: out.to_string_lossy().into_owned(),
            ..MdConfig::default()
        };
        let config_path = dir.join("mpi.conf");
        std::fs::write(&config_path, config.render()).unwrap();
        let server =
            jets_pmi::PmiServer::start(jets_pmi::PmiServerConfig::new("namd-app", 2)).unwrap();
        let exec = Executor::new(science_registry());
        let assignment = TaskAssignment {
            task_id: 1,
            job_id: 1,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin(
                    "namd-lite",
                    vec![config_path.to_string_lossy().into_owned()],
                ),
                ranks: vec![0, 1],
                size: 2,
                pmi_addr: server.addr().to_string(),
                pmi_jobid: "namd-app".into(),
            },
            stage: Vec::new(),
            trace: 0,
        };
        assert_eq!(exec.execute(&assignment), 0);
        let xsc = read_xsc(Path::new(&format!("{}.xsc", out.to_string_lossy()))).unwrap();
        assert_eq!(xsc.step, 3);
    }

    #[test]
    fn namd_lite_rejects_bad_inputs() {
        let exec = Executor::new(science_registry());
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin("namd-lite", vec![]))),
            2
        );
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin(
                "namd-lite",
                vec!["/no/such/config".into()]
            ))),
            3
        );
    }

    #[test]
    fn rem_exchange_swaps_restart_files() {
        let dir = tmpdir("exchange");
        // Run two quick segments at different temperatures.
        let exec = Executor::new(science_registry());
        for (name, temp) in [("ra", 0.8), ("rb", 1.6)] {
            let config = MdConfig {
                num_atoms: 32,
                numsteps: 3,
                temperature: temp,
                outputname: dir.join(name).to_string_lossy().into_owned(),
                ..MdConfig::default()
            };
            let path = dir.join(format!("{name}.conf"));
            std::fs::write(&path, config.render()).unwrap();
            assert_eq!(
                exec.execute(&seq(CommandSpec::builtin(
                    "namd-lite",
                    vec![path.to_string_lossy().into_owned()]
                ))),
                0
            );
        }
        let token = dir.join("x.out");
        let cmd = CommandSpec::Builtin {
            app: "rem-exchange".into(),
            args: vec![
                dir.join("ra").to_string_lossy().into_owned(),
                "0.8".into(),
                dir.join("rb").to_string_lossy().into_owned(),
                "1.6".into(),
                "7".into(),
            ],
            env: vec![(
                "SWIFT_STDOUT".to_string(),
                token.to_string_lossy().into_owned(),
            )],
        };
        assert_eq!(exec.execute(&seq(cmd)), 0);
        let verdict = std::fs::read_to_string(&token).unwrap();
        assert!(verdict.trim() == "accepted" || verdict.trim() == "rejected");
    }

    #[test]
    fn rem_exchange_rejects_bad_args() {
        let exec = Executor::new(science_registry());
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin("rem-exchange", vec![]))),
            2
        );
        assert_eq!(
            exec.execute(&seq(CommandSpec::builtin(
                "rem-exchange",
                vec![
                    "/no/a".into(),
                    "1.0".into(),
                    "/no/b".into(),
                    "1.5".into(),
                    "1".into()
                ]
            ))),
            3
        );
    }
}
