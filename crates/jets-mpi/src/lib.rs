//! # jets-mpi — a sockets-based message-passing library
//!
//! JETS runs MPI applications whose processes are *not* started by
//! `mpiexec`: proxies are placed by the JETS dispatcher, and the user
//! processes find each other over plain sockets after a PMI business-card
//! exchange (on the Blue Gene/P this ran over the ZeptoOS IP-over-torus
//! device). This crate is that MPI substrate, reduced to the feature set
//! the paper's workloads exercise, but implemented as a real
//! message-passing library rather than a mock:
//!
//! * **Wire-up** via `jets-pmi`: each rank publishes a business card
//!   (`bc.<rank> = host:port`), fences, and resolves peers lazily.
//! * **Transports** ([`transport`]): real TCP sockets ([`tcp`]) for
//!   separate-process ranks, and an in-process fabric ([`mem`]) for
//!   thread-per-rank jobs, with an injectable [`NetModel`] reproducing the
//!   latency/bandwidth difference between native messaging (IBM DCMF) and
//!   MPICH2-over-ZeptoOS-TCP that Figure 8 of the paper measures.
//! * **Point-to-point** ([`Communicator::send`], [`Communicator::recv`]):
//!   blocking, tagged, eager-protocol messaging with MPI's per-(source,
//!   destination) non-overtaking guarantee.
//! * **Collectives** ([`collectives`]): barrier (dissemination), broadcast
//!   (binomial tree), reduce/allreduce, gather/allgather, scatter.
//! * **A job runner** ([`runner`]): run an MPI program as `size` rank
//!   threads in-process — how simulated-allocation workers execute MPI
//!   tasks — or attach to a real PMI server from a separate process.
//!
//! ```
//! use jets_mpi::{runner, NetModel, ReduceOp};
//!
//! let sums = runner::run_threads(4, NetModel::ideal(), |comm| {
//!     let me = comm.rank() as f64;
//!     let total = comm.allreduce_scalar(me, ReduceOp::Sum).unwrap();
//!     comm.barrier().unwrap();
//!     total as i32
//! })
//! .unwrap();
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod mem;
pub mod mpiio;
pub mod netmodel;
pub mod nonblocking;
pub mod runner;
pub mod tcp;
pub mod transport;

pub use comm::{Communicator, ANY_SOURCE};
pub use datatype::{MpiData, ReduceOp};
pub use error::MpiError;
pub use mem::MemFabric;
pub use mpiio::CollectiveFile;
pub use netmodel::NetModel;
pub use nonblocking::{RecvRequest, SendRequest};
pub use transport::{Frame, Transport};
