//! Nonblocking point-to-point operations.
//!
//! The paper's workloads are mostly blocking, but NAMD-class codes
//! overlap communication and computation; `isend`/`irecv` with
//! [`SendRequest`]/[`RecvRequest`] handles make the substrate credible
//! for them. Semantics follow MPI: an isend's payload is owned by the
//! library until completion (eager transfer makes completion immediate
//! here, as in MPICH's eager protocol for small messages); an irecv is
//! matched at `wait` time against the same `(source, tag)` rules as
//! blocking receives.

use crate::comm::Communicator;
use crate::datatype::MpiData;
use crate::error::MpiError;
use bytes::Bytes;

/// Handle for an in-flight (already eagerly transferred) send.
#[derive(Debug)]
#[must_use = "a send request must be waited on"]
pub struct SendRequest {
    completed: bool,
}

impl SendRequest {
    /// Complete the send. With the eager protocol this never blocks.
    pub fn wait(mut self) -> Result<(), MpiError> {
        self.completed = true;
        Ok(())
    }
}

/// Handle for a posted receive; matching happens at wait time.
#[derive(Debug)]
#[must_use = "a receive request must be waited on"]
pub struct RecvRequest {
    src: u32,
    tag: u32,
}

impl RecvRequest {
    /// Block until a matching message arrives, returning `(source,
    /// payload)`.
    pub fn wait_bytes(self, comm: &mut Communicator) -> Result<(u32, Bytes), MpiError> {
        comm.recv_bytes(self.src, self.tag)
    }

    /// Typed variant of [`RecvRequest::wait_bytes`].
    pub fn wait<T: MpiData>(self, comm: &mut Communicator) -> Result<(u32, Vec<T>), MpiError> {
        comm.recv_vec(self.src, self.tag)
    }

    /// Check for a matching message without blocking; completes and
    /// returns the payload if one is queued.
    pub fn test<T: MpiData>(
        self,
        comm: &mut Communicator,
    ) -> Result<Result<(u32, Vec<T>), RecvRequest>, MpiError> {
        match comm.try_match(self.src, self.tag)? {
            Some(frame) => Ok(Ok((frame.src, T::decode_slice(&frame.payload)?))),
            None => Ok(Err(self)),
        }
    }
}

impl Communicator {
    /// Start a nonblocking send. The transfer is eager: bytes are handed
    /// to the fabric before this returns, so the returned request exists
    /// to mirror MPI semantics (and to keep call sites honest about
    /// completion).
    pub fn isend<T: MpiData>(
        &mut self,
        dst: u32,
        tag: u32,
        data: &[T],
    ) -> Result<SendRequest, MpiError> {
        self.send(dst, tag, data)?;
        Ok(SendRequest { completed: false })
    }

    /// Post a nonblocking receive for `(src, tag)`; `src` may be
    /// [`crate::ANY_SOURCE`].
    pub fn irecv(&mut self, src: u32, tag: u32) -> RecvRequest {
        RecvRequest { src, tag }
    }
}

#[cfg(test)]
mod tests {
    use crate::netmodel::NetModel;
    use crate::runner::run_threads;
    use crate::ANY_SOURCE;

    #[test]
    fn isend_irecv_round_trip() {
        run_threads(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 5, &[1i32, 2, 3]).unwrap();
                req.wait().unwrap();
            } else {
                let req = comm.irecv(0, 5);
                let (src, data) = req.wait::<i32>(comm).unwrap();
                assert_eq!(src, 0);
                assert_eq!(data, vec![1, 2, 3]);
            }
            0
        })
        .unwrap();
    }

    #[test]
    fn overlap_compute_with_pending_receive() {
        // Post the receive before doing "work", then complete it.
        run_threads(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                let req = comm.irecv(1, 9);
                let mut acc = 0u64; // the overlapped computation
                for i in 0..10_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                let (_, data) = req.wait::<u64>(comm).unwrap();
                assert_eq!(data, vec![acc % 2 + 40]); // 40 or 41
            } else {
                let mut acc = 0u64;
                for i in 0..10_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                comm.isend(0, 9, &[acc % 2 + 40]).unwrap().wait().unwrap();
            }
            0
        })
        .unwrap();
    }

    #[test]
    fn test_polls_without_blocking() {
        run_threads(2, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: test must return the request.
                let req = comm.irecv(1, 3);
                let req = match req.test::<u8>(comm).unwrap() {
                    Ok(_) => panic!("no message should be queued yet"),
                    Err(req) => req,
                };
                comm.barrier().unwrap(); // now rank 1 sends
                                         // Eventually the poll succeeds.
                let mut req = req;
                let data = loop {
                    match req.test::<u8>(comm).unwrap() {
                        Ok((_, data)) => break data,
                        Err(r) => {
                            req = r;
                            std::thread::yield_now();
                        }
                    }
                };
                assert_eq!(data, vec![7]);
            } else {
                comm.barrier().unwrap();
                comm.send(0, 3, &[7u8]).unwrap();
            }
            0
        })
        .unwrap();
    }

    #[test]
    fn irecv_any_source() {
        run_threads(3, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                let mut sources = Vec::new();
                for _ in 0..2 {
                    let req = comm.irecv(ANY_SOURCE, 1);
                    let (src, _) = req.wait::<u8>(comm).unwrap();
                    sources.push(src);
                }
                sources.sort_unstable();
                assert_eq!(sources, vec![1, 2]);
            } else {
                comm.send(0, 1, &[comm.rank() as u8]).unwrap();
            }
            0
        })
        .unwrap();
    }
}
