//! Collective operations, built on point-to-point messaging.
//!
//! Algorithms are the textbook ones MPICH uses for small communicators:
//! dissemination barrier, binomial-tree broadcast and reduce, linear
//! gather/scatter. Every collective call consumes one fresh internal tag
//! ([`Communicator::next_collective_tag`]) so back-to-back collectives
//! cannot cross-match even when fast ranks race ahead.

use crate::comm::Communicator;
use crate::datatype::{MpiData, MpiReduce, ReduceOp};
use crate::error::MpiError;
use bytes::Bytes;

impl Communicator {
    /// Block until every rank has entered the barrier (dissemination
    /// algorithm: ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) -> Result<(), MpiError> {
        self.check_live()?;
        let tag = self.next_collective_tag();
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            return Ok(());
        }
        let mut step = 1u32;
        while step < size {
            let to = (rank + step) % size;
            let from = (rank + size - step) % size;
            self.send_frame(to, tag, Bytes::new())?;
            self.match_frame(from, tag)?;
            step *= 2;
        }
        Ok(())
    }

    /// Broadcast `data` from `root` to every rank; non-roots pass their
    /// (ignored) buffer and receive the root's. Returns the broadcast data
    /// on every rank. Binomial tree: ⌈log₂ n⌉ rounds on the critical path.
    pub fn bcast<T: MpiData>(&mut self, root: u32, data: Vec<T>) -> Result<Vec<T>, MpiError> {
        self.check_live()?;
        let size = self.size();
        if root >= size {
            return Err(MpiError::Protocol(format!(
                "bcast root {root} out of range"
            )));
        }
        let tag = self.next_collective_tag();
        if size == 1 {
            return Ok(data);
        }
        let rank = self.rank();
        let vrank = (rank + size - root) % size;

        // Receive once from the parent (unless we are the root)...
        let mut buf = if vrank == 0 {
            let mut bytes = Vec::new();
            T::encode_slice(&data, &mut bytes);
            Bytes::from(bytes)
        } else {
            let mut mask = 1u32;
            while vrank & mask == 0 {
                mask <<= 1;
            }
            let vparent = vrank & !mask;
            let parent = (vparent + root) % size;
            self.match_frame(parent, tag)?.payload
        };

        // ...then forward to children below our lowest set bit.
        let lowest = if vrank == 0 {
            next_pow2(size)
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = lowest >> 1;
        while mask > 0 {
            let vchild = vrank | mask;
            if vchild < size {
                let child = (vchild + root) % size;
                self.send_frame(child, tag, buf.clone())?;
            }
            mask >>= 1;
        }

        if vrank == 0 {
            Ok(data)
        } else {
            let decoded = T::decode_slice(&buf)?;
            buf.clear();
            Ok(decoded)
        }
    }

    /// Elementwise reduction of equal-length vectors onto `root`.
    /// Non-roots receive `None`. Binomial tree.
    pub fn reduce<T: MpiReduce>(
        &mut self,
        root: u32,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>, MpiError> {
        self.check_live()?;
        let size = self.size();
        if root >= size {
            return Err(MpiError::Protocol(format!(
                "reduce root {root} out of range"
            )));
        }
        let tag = self.next_collective_tag();
        let rank = self.rank();
        let vrank = (rank + size - root) % size;
        let mut acc = data.to_vec();

        let mut mask = 1u32;
        while mask < size {
            if vrank & mask != 0 {
                let vparent = vrank & !mask;
                let parent = (vparent + root) % size;
                let mut bytes = Vec::new();
                T::encode_slice(&acc, &mut bytes);
                self.send_frame(parent, tag, Bytes::from(bytes))?;
                return Ok(None);
            }
            let vchild = vrank | mask;
            if vchild < size {
                let child = (vchild + root) % size;
                let frame = self.match_frame(child, tag)?;
                let partial = T::decode_slice(&frame.payload)?;
                if partial.len() != acc.len() {
                    return Err(MpiError::Protocol(format!(
                        "reduce length mismatch: {} vs {}",
                        partial.len(),
                        acc.len()
                    )));
                }
                for (a, p) in acc.iter_mut().zip(partial) {
                    *a = T::combine(op, *a, p);
                }
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduction delivered to every rank (reduce to 0, then broadcast).
    pub fn allreduce<T: MpiReduce>(
        &mut self,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Vec<T>, MpiError> {
        let reduced = self.reduce(0, data, op)?;
        self.bcast(0, reduced.unwrap_or_default())
    }

    /// Scalar convenience wrapper over [`Communicator::allreduce`].
    pub fn allreduce_scalar<T: MpiReduce>(
        &mut self,
        value: T,
        op: ReduceOp,
    ) -> Result<T, MpiError> {
        let v = self.allreduce(&[value], op)?;
        v.into_iter()
            .next()
            .ok_or_else(|| MpiError::Protocol("empty allreduce result".to_string()))
    }

    /// Gather equal-length contributions onto `root`, concatenated in rank
    /// order. Non-roots receive `None`.
    pub fn gather<T: MpiData>(
        &mut self,
        root: u32,
        data: &[T],
    ) -> Result<Option<Vec<T>>, MpiError> {
        self.check_live()?;
        let size = self.size();
        if root >= size {
            return Err(MpiError::Protocol(format!(
                "gather root {root} out of range"
            )));
        }
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(data.len() * size as usize);
            for src in 0..size {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    let frame = self.match_frame(src, tag)?;
                    let part = T::decode_slice(&frame.payload)?;
                    if part.len() != data.len() {
                        return Err(MpiError::Protocol(format!(
                            "gather length mismatch from rank {src}: {} vs {}",
                            part.len(),
                            data.len()
                        )));
                    }
                    out.extend(part);
                }
            }
            Ok(Some(out))
        } else {
            let mut bytes = Vec::new();
            T::encode_slice(data, &mut bytes);
            self.send_frame(root, tag, Bytes::from(bytes))?;
            Ok(None)
        }
    }

    /// Gather delivered to every rank (gather to 0, then broadcast).
    pub fn allgather<T: MpiData>(&mut self, data: &[T]) -> Result<Vec<T>, MpiError> {
        let gathered = self.gather(0, data)?;
        self.bcast(0, gathered.unwrap_or_default())
    }

    /// Scatter `data` (length = k × size, on root only) so rank `i`
    /// receives elements `[i*k, (i+1)*k)`.
    pub fn scatter<T: MpiData>(
        &mut self,
        root: u32,
        data: Option<&[T]>,
    ) -> Result<Vec<T>, MpiError> {
        self.check_live()?;
        let size = self.size();
        if root >= size {
            return Err(MpiError::Protocol(format!(
                "scatter root {root} out of range"
            )));
        }
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let data = data
                .ok_or_else(|| MpiError::Protocol("scatter root must supply data".to_string()))?;
            if data.len() % size as usize != 0 {
                return Err(MpiError::Protocol(format!(
                    "scatter length {} not divisible by {size}",
                    data.len()
                )));
            }
            let chunk = data.len() / size as usize;
            let mut mine = Vec::new();
            for dst in 0..size {
                let part = &data[dst as usize * chunk..(dst as usize + 1) * chunk];
                if dst == root {
                    mine = part.to_vec();
                } else {
                    let mut bytes = Vec::new();
                    T::encode_slice(part, &mut bytes);
                    self.send_frame(dst, tag, Bytes::from(bytes))?;
                }
            }
            Ok(mine)
        } else {
            let frame = self.match_frame(root, tag)?;
            T::decode_slice(&frame.payload)
        }
    }
}

impl Communicator {
    /// All-to-all personalized exchange: `data` holds `size` equal chunks
    /// (chunk `i` destined for rank `i`); returns the `size` chunks
    /// received, concatenated in source-rank order.
    pub fn alltoall<T: MpiData>(&mut self, data: &[T]) -> Result<Vec<T>, MpiError> {
        self.check_live()?;
        let size = self.size() as usize;
        if !data.len().is_multiple_of(size) {
            return Err(MpiError::Protocol(format!(
                "alltoall length {} not divisible by {size}",
                data.len()
            )));
        }
        let tag = self.next_collective_tag();
        let chunk = data.len() / size;
        let rank = self.rank() as usize;
        // Send phase: everything except our own chunk.
        for dst in 0..size {
            if dst == rank {
                continue;
            }
            let part = &data[dst * chunk..(dst + 1) * chunk];
            let mut bytes = Vec::new();
            T::encode_slice(part, &mut bytes);
            self.send_frame(dst as u32, tag, Bytes::from(bytes))?;
        }
        // Receive phase, assembling in source order.
        let mut out: Vec<Option<Vec<T>>> = vec![None; size];
        out[rank] = Some(data[rank * chunk..(rank + 1) * chunk].to_vec());
        for src in (0..size).filter(|&s| s != rank) {
            let frame = self.match_frame(src as u32, tag)?;
            let part = T::decode_slice(&frame.payload)?;
            if part.len() != chunk {
                return Err(MpiError::Protocol(format!(
                    "alltoall chunk mismatch from rank {src}: {} vs {chunk}",
                    part.len()
                )));
            }
            out[src] = Some(part);
        }
        Ok(out.into_iter().flatten().flatten().collect())
    }

    /// Inclusive prefix reduction: rank `r` receives the reduction of
    /// ranks `0..=r`'s contributions (linear chain).
    pub fn scan<T: MpiReduce>(&mut self, data: &[T], op: ReduceOp) -> Result<Vec<T>, MpiError> {
        self.check_live()?;
        let tag = self.next_collective_tag();
        let rank = self.rank();
        let size = self.size();
        let mut acc = data.to_vec();
        if rank > 0 {
            let frame = self.match_frame(rank - 1, tag)?;
            let prefix = T::decode_slice(&frame.payload)?;
            if prefix.len() != acc.len() {
                return Err(MpiError::Protocol(format!(
                    "scan length mismatch: {} vs {}",
                    prefix.len(),
                    acc.len()
                )));
            }
            for (a, p) in acc.iter_mut().zip(prefix) {
                *a = T::combine(op, p, *a);
            }
        }
        if rank + 1 < size {
            let mut bytes = Vec::new();
            T::encode_slice(&acc, &mut bytes);
            self.send_frame(rank + 1, tag, Bytes::from(bytes))?;
        }
        Ok(acc)
    }
}

fn next_pow2(n: u32) -> u32 {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetModel;
    use crate::runner::run_threads;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for size in [1u32, 2, 3, 4, 5, 8, 13] {
            run_threads(size, NetModel::ideal(), |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                0i32
            })
            .unwrap();
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for size in [2u32, 3, 4, 7] {
            for root in 0..size {
                let results = run_threads(size, NetModel::ideal(), move |comm| {
                    let data = if comm.rank() == root {
                        vec![root as i64, 17, -3]
                    } else {
                        Vec::new()
                    };
                    let got = comm.bcast(root, data).unwrap();
                    assert_eq!(got, vec![root as i64, 17, -3]);
                    1i32
                })
                .unwrap();
                assert_eq!(results.len(), size as usize);
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for size in [1u32, 2, 3, 6, 8] {
            run_threads(size, NetModel::ideal(), move |comm| {
                let mine = vec![comm.rank() as f64, 1.0];
                let out = comm.reduce(0, &mine, ReduceOp::Sum).unwrap();
                if comm.rank() == 0 {
                    let expect_sum = (0..size).map(f64::from).sum::<f64>();
                    assert_eq!(out.unwrap(), vec![expect_sum, size as f64]);
                } else {
                    assert!(out.is_none());
                }
                0i32
            })
            .unwrap();
        }
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        run_threads(5, NetModel::ideal(), |comm| {
            let m = comm
                .allreduce_scalar(comm.rank() as i64 * 10, ReduceOp::Max)
                .unwrap();
            assert_eq!(m, 40);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        run_threads(4, NetModel::ideal(), |comm| {
            let mine = vec![comm.rank(); 2];
            let out = comm.gather(2, &mine).unwrap();
            if comm.rank() == 2 {
                assert_eq!(out.unwrap(), vec![0, 0, 1, 1, 2, 2, 3, 3]);
            } else {
                assert!(out.is_none());
            }
            0i32
        })
        .unwrap();
    }

    #[test]
    fn allgather_delivers_everywhere() {
        run_threads(3, NetModel::ideal(), |comm| {
            let out = comm.allgather(&[comm.rank() as i32]).unwrap();
            assert_eq!(out, vec![0, 1, 2]);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn scatter_distributes_chunks() {
        run_threads(4, NetModel::ideal(), |comm| {
            let data: Option<Vec<u16>> = if comm.rank() == 0 {
                Some((0..8).collect())
            } else {
                None
            };
            let mine = comm.scatter(0, data.as_deref()).unwrap();
            let r = comm.rank() as u16;
            assert_eq!(mine, vec![2 * r, 2 * r + 1]);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn scatter_rejects_ragged_input() {
        run_threads(3, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                let err = comm.scatter(0, Some(&[1u8, 2, 3, 4][..])).unwrap_err();
                assert!(matches!(err, MpiError::Protocol(_)));
            }
            0i32
        })
        .unwrap();
    }

    #[test]
    fn alltoall_transposes_chunks() {
        run_threads(4, NetModel::ideal(), |comm| {
            let rank = comm.rank();
            // Chunk destined for rank d is [rank*10 + d].
            let data: Vec<i32> = (0..4).map(|d| (rank * 10 + d) as i32).collect();
            let out = comm.alltoall(&data).unwrap();
            // Received chunk from source s is [s*10 + rank].
            let expect: Vec<i32> = (0..4).map(|s| (s * 10 + rank) as i32).collect();
            assert_eq!(out, expect);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn alltoall_rejects_ragged_input() {
        run_threads(3, NetModel::ideal(), |comm| {
            if comm.rank() == 0 {
                assert!(comm.alltoall(&[1u8, 2]).is_err());
            }
            0i32
        })
        .unwrap();
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        run_threads(5, NetModel::ideal(), |comm| {
            let r = comm.rank() as i64;
            let out = comm.scan(&[r + 1], ReduceOp::Sum).unwrap();
            // 1 + 2 + ... + (r+1)
            assert_eq!(out, vec![(r + 1) * (r + 2) / 2]);
            let m = comm.scan(&[r + 1], ReduceOp::Max).unwrap();
            assert_eq!(m, vec![r + 1]);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn scan_single_rank_is_identity() {
        run_threads(1, NetModel::ideal(), |comm| {
            assert_eq!(comm.scan(&[7i32, 8], ReduceOp::Prod).unwrap(), vec![7, 8]);
            0i32
        })
        .unwrap();
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        run_threads(4, NetModel::ideal(), |comm| {
            for round in 0..20i64 {
                let s = comm.allreduce_scalar(round, ReduceOp::Sum).unwrap();
                assert_eq!(s, round * 4);
            }
            0i32
        })
        .unwrap();
    }
}
