//! In-process fabric: rank threads exchanging frames over channels.
//!
//! Simulated-allocation workers execute MPI tasks as one thread per local
//! rank; all ranks of a job share a [`MemFabric`], which owns one unbounded
//! MPSC channel per rank. Per-source FIFO ordering — the only guarantee the
//! communicator needs — follows from channel semantics. A [`NetModel`]
//! charges each message its modelled transfer time before delivery, which
//! is how the native-vs-sockets messaging comparison of Figure 8 is
//! reproduced off the Blue Gene/P.

use crate::error::MpiError;
use crate::netmodel::{precise_wait, NetModel};
use crate::transport::{Frame, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Constructor namespace for in-process fabrics: [`MemFabric::new`]
/// builds the per-rank endpoints of one MPI job.
pub struct MemFabric;

impl MemFabric {
    /// Create a fabric for `size` ranks and hand back the per-rank
    /// endpoints (index = rank).
    #[allow(clippy::new_ret_no_self)] // the endpoints *are* the fabric
    pub fn new(size: u32, model: NetModel) -> Vec<MemEndpoint> {
        assert!(size > 0, "fabric needs at least one rank");
        let mut senders = Vec::with_capacity(size as usize);
        let mut receivers = Vec::with_capacity(size as usize);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| MemEndpoint {
                rank: rank as u32,
                size,
                senders: senders.clone(),
                incoming: rx,
                model,
                down: false,
            })
            .collect()
    }
}

/// One rank's attachment to a [`MemFabric`].
pub struct MemEndpoint {
    rank: u32,
    size: u32,
    senders: Vec<Sender<Frame>>,
    incoming: Receiver<Frame>,
    model: NetModel,
    down: bool,
}

impl Transport for MemEndpoint {
    fn send(&mut self, dst: u32, frame: Frame) -> Result<(), MpiError> {
        if self.down {
            return Err(MpiError::Protocol("endpoint is shut down".to_string()));
        }
        let tx = self
            .senders
            .get(dst as usize)
            .ok_or_else(|| MpiError::Protocol(format!("rank {dst} out of range")))?;
        if !self.model.is_ideal() {
            // Charge the modelled transfer time to the sender; for the
            // blocking sends the paper's workloads use, this is equivalent
            // to delaying delivery.
            precise_wait(self.model.transfer_time(frame.payload.len()));
        }
        tx.send(frame)
            .map_err(|_| MpiError::Disconnected { peer: dst })
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, MpiError> {
        match self.incoming.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(MpiError::Protocol("all fabric senders dropped".to_string()))
            }
        }
    }

    fn rank(&self) -> u32 {
        self.rank
    }

    fn size(&self) -> u32 {
        self.size
    }

    fn shutdown(&mut self) {
        self.down = true;
        self.senders.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    fn frame(src: u32, tag: u32, data: &[u8]) -> Frame {
        Frame {
            src,
            tag,
            payload: Bytes::copy_from_slice(data),
        }
    }

    #[test]
    fn two_rank_round_trip() {
        let mut eps = MemFabric::new(2, NetModel::ideal());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, frame(0, 7, b"ping")).unwrap();
        let got = b.recv(T).unwrap().unwrap();
        assert_eq!(got.src, 0);
        assert_eq!(got.tag, 7);
        assert_eq!(&got.payload[..], b"ping");
    }

    #[test]
    fn per_source_ordering_is_preserved() {
        let mut eps = MemFabric::new(2, NetModel::ideal());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u8 {
            a.send(1, frame(0, 0, &[i])).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.recv(T).unwrap().unwrap().payload[0], i);
        }
    }

    #[test]
    fn recv_times_out_when_idle() {
        let mut eps = MemFabric::new(1, NetModel::ideal());
        let mut a = eps.pop().unwrap();
        assert_eq!(a.recv(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn send_to_out_of_range_rank_fails() {
        let mut eps = MemFabric::new(1, NetModel::ideal());
        let mut a = eps.pop().unwrap();
        assert!(matches!(
            a.send(3, frame(0, 0, b"x")),
            Err(MpiError::Protocol(_))
        ));
    }

    #[test]
    fn send_after_shutdown_fails() {
        let mut eps = MemFabric::new(2, NetModel::ideal());
        let mut a = eps.pop().unwrap();
        a.shutdown();
        assert!(a.send(0, frame(1, 0, b"x")).is_err());
    }

    #[test]
    fn model_delay_is_charged() {
        let model = NetModel {
            latency: Duration::from_millis(5),
            bandwidth: f64::INFINITY,
        };
        let mut eps = MemFabric::new(2, model);
        let mut a = eps.remove(0);
        let start = std::time::Instant::now();
        a.send(1, frame(0, 0, b"x")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn cross_thread_exchange() {
        let mut eps = MemFabric::new(2, NetModel::ideal());
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let f = b.recv(T).unwrap().unwrap();
            b.send(0, frame(1, f.tag, &f.payload)).unwrap();
        });
        a.send(1, frame(0, 42, b"echo")).unwrap();
        let back = a.recv(T).unwrap().unwrap();
        assert_eq!(back.src, 1);
        assert_eq!(back.tag, 42);
        h.join().unwrap();
    }
}
