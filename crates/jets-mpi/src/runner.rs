//! Running MPI programs: thread-per-rank in-process, or PMI-attached.
//!
//! [`run_threads`] is the simulated-allocation path: all ranks are threads
//! of the calling process sharing a [`MemFabric`]. [`run_rank_with_pmi`]
//! is the authentic path a Hydra-proxied process takes: connect to the
//! job's PMI server, wire up TCP, run, finalize.

use crate::comm::Communicator;
use crate::error::MpiError;
use crate::mem::MemFabric;
use crate::netmodel::NetModel;
use jets_pmi::PmiClient;
use std::thread;

/// Stack size for rank threads: MPI task bodies (MD segments, synthetic
/// sleeps) are shallow, and thousands of rank threads may coexist.
const RANK_STACK: usize = 512 * 1024;

/// Run `f` as `size` rank threads over an in-process fabric with the given
/// network model. Returns each rank's result, indexed by rank.
///
/// A panic in any rank aborts the run and is reported as an error naming
/// the rank (mirroring an MPI job abort).
pub fn run_threads<R, F>(size: u32, model: NetModel, f: F) -> Result<Vec<R>, MpiError>
where
    R: Send + 'static,
    F: Fn(&mut Communicator) -> R + Send + Sync + 'static,
{
    let endpoints = MemFabric::new(size, model);
    let f = std::sync::Arc::new(f);
    let mut handles = Vec::with_capacity(size as usize);
    for endpoint in endpoints {
        let f = std::sync::Arc::clone(&f);
        let h = thread::Builder::new()
            .name(format!("mpi-rank-{}", endpoint_rank(&endpoint)))
            .stack_size(RANK_STACK)
            .spawn(move || {
                let mut comm = Communicator::from_mem(endpoint);
                f(&mut comm)
            })
            .expect("spawn rank thread");
        handles.push(h);
    }
    let mut results = Vec::with_capacity(handles.len());
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => results.push(r),
            Err(_) => {
                return Err(MpiError::Aborted(format!("rank {rank} panicked")));
            }
        }
    }
    Ok(results)
}

fn endpoint_rank(ep: &crate::mem::MemEndpoint) -> u32 {
    use crate::transport::Transport;
    ep.rank()
}

/// Run one rank of a real-process MPI job: connect to the PMI server at
/// `pmi_addr`, wire up TCP, call `f`, then finalize both layers.
pub fn run_rank_with_pmi<R>(
    pmi_addr: &str,
    rank: u32,
    size: u32,
    jobid: &str,
    f: impl FnOnce(&mut Communicator) -> R,
) -> Result<R, MpiError> {
    let mut pmi = PmiClient::connect(pmi_addr, rank, size, jobid)
        .map_err(|e| MpiError::Pmi(e.to_string()))?;
    let mut comm = Communicator::via_pmi(&mut pmi)?;
    let result = f(&mut comm);
    comm.finalize()?;
    pmi.finalize().map_err(|e| MpiError::Pmi(e.to_string()))?;
    Ok(result)
}

/// Run one rank resolving its PMI coordinates from an environment-style
/// lookup (the task-assignment env of an in-process worker, or the real
/// process environment via `std::env::var`).
pub fn run_rank_from_lookup<R>(
    lookup: impl Fn(&str) -> Option<String>,
    f: impl FnOnce(&mut Communicator) -> R,
) -> Result<R, MpiError> {
    let mut pmi = PmiClient::from_lookup(lookup).map_err(|e| MpiError::Pmi(e.to_string()))?;
    let mut comm = Communicator::via_pmi(&mut pmi)?;
    let result = f(&mut comm);
    comm.finalize()?;
    pmi.finalize().map_err(|e| MpiError::Pmi(e.to_string()))?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ReduceOp;
    use jets_pmi::{JobOutcome, PmiServer, PmiServerConfig};
    use std::time::Duration;

    #[test]
    fn thread_ranks_return_in_rank_order() {
        let out = run_threads(6, NetModel::ideal(), |comm| comm.rank()).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rank_panic_becomes_abort_error() {
        let err = run_threads(2, NetModel::ideal(), |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            0
        })
        .unwrap_err();
        assert!(matches!(err, MpiError::Aborted(m) if m.contains("rank 1")));
    }

    #[test]
    fn pmi_attached_job_computes_allreduce() {
        let size = 3;
        let server = PmiServer::start(PmiServerConfig::new("runner-test", size)).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for rank in 0..size {
            let addr = addr.clone();
            handles.push(thread::spawn(move || {
                run_rank_with_pmi(&addr, rank, size, "runner-test", |comm| {
                    comm.allreduce_scalar(comm.rank() as i64, ReduceOp::Sum)
                        .unwrap()
                })
                .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
        assert_eq!(server.wait(Duration::from_secs(20)), JobOutcome::Success);
    }

    #[test]
    fn lookup_based_rank_runs() {
        let server = PmiServer::start(PmiServerConfig::new("lk", 1)).unwrap();
        let addr = server.addr().to_string();
        let env = [
            (jets_pmi::ENV_RANK, "0".to_string()),
            (jets_pmi::ENV_SIZE, "1".to_string()),
            (jets_pmi::ENV_ADDR, addr),
            (jets_pmi::ENV_JOBID, "lk".to_string()),
        ];
        let got = run_rank_from_lookup(
            |k| env.iter().find(|(n, _)| *n == k).map(|(_, v)| v.clone()),
            |comm| comm.size(),
        )
        .unwrap();
        assert_eq!(got, 1);
        assert_eq!(server.wait(Duration::from_secs(10)), JobOutcome::Success);
    }
}
