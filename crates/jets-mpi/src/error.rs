//! Error type shared across the message-passing library.

use std::fmt;

/// Errors surfaced by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A peer's connection (or in-process endpoint) went away.
    Disconnected {
        /// The unreachable rank.
        peer: u32,
    },
    /// PMI wire-up failed.
    Pmi(String),
    /// Socket-level failure.
    Io(String),
    /// Frame-level or usage error (bad rank, length mismatch, ...).
    Protocol(String),
    /// The job was aborted.
    Aborted(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            MpiError::Pmi(m) => write!(f, "pmi wire-up failed: {m}"),
            MpiError::Io(m) => write!(f, "i/o error: {m}"),
            MpiError::Protocol(m) => write!(f, "protocol error: {m}"),
            MpiError::Aborted(m) => write!(f, "job aborted: {m}"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<std::io::Error> for MpiError {
    fn from(e: std::io::Error) -> Self {
        MpiError::Io(e.to_string())
    }
}
