//! Transport abstraction: how frames move between ranks.
//!
//! A [`Frame`] is the unit of transfer: source rank, tag, payload. A
//! [`Transport`] can push a frame toward a destination rank and pop the
//! next frame addressed to this rank (from any source). Matching by
//! `(source, tag)` happens above the transport, in the communicator, so
//! transports stay dumb pipes with one guarantee: frames from a given
//! source arrive in the order they were sent.

use crate::error::MpiError;
use bytes::Bytes;
use std::time::Duration;

/// One message on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub src: u32,
    /// Message tag. User tags must be `< TAG_USER_LIMIT`; higher values are
    /// reserved for collectives.
    pub tag: u32,
    /// Payload bytes. `Bytes` keeps large payloads reference-counted so
    /// in-process transports never copy them.
    pub payload: Bytes,
}

/// Largest tag available to applications; tags at or above this value are
/// reserved for internal (collective) traffic.
pub const TAG_USER_LIMIT: u32 = 1 << 24;

/// A duplex endpoint attached to one rank of one job.
pub trait Transport: Send {
    /// Deliver `frame` to `dst`. Blocks until the frame is handed to the
    /// fabric (eager semantics: delivery to the destination's queue, not
    /// its application).
    fn send(&mut self, dst: u32, frame: Frame) -> Result<(), MpiError>;

    /// Pop the next incoming frame, blocking up to `timeout`.
    /// Returns `Ok(None)` on timeout.
    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, MpiError>;

    /// This rank's index.
    fn rank(&self) -> u32;

    /// Number of ranks in the job.
    fn size(&self) -> u32;

    /// Release transport resources (close sockets / detach from fabric).
    /// Called once by the communicator on finalize; must be idempotent.
    fn shutdown(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_cheap_to_clone() {
        let payload = Bytes::from(vec![7u8; 1 << 20]);
        let f = Frame {
            src: 1,
            tag: 2,
            payload: payload.clone(),
        };
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(g.payload.as_ptr(), payload.as_ptr());
    }
}
