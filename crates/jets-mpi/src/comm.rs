//! The communicator: tagged point-to-point messaging over a transport.
//!
//! One [`Communicator`] belongs to one rank thread/process of one job. It
//! layers MPI-style `(source, tag)` matching — including `ANY_SOURCE` —
//! over a transport's single incoming frame stream, keeping unmatched
//! frames in a pending queue (the "unexpected message queue" of a real
//! MPI implementation).

use crate::datatype::MpiData;
use crate::error::MpiError;
use crate::mem::MemEndpoint;
use crate::tcp::TcpTransport;
use crate::transport::{Frame, Transport, TAG_USER_LIMIT};
use bytes::Bytes;
use jets_pmi::PmiClient;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Wildcard source for [`Communicator::recv_bytes`].
pub const ANY_SOURCE: u32 = u32::MAX;

/// Default patience for a blocking receive. Generous because the paper's
/// workloads park ranks at barriers while peers compute for (virtual)
/// minutes.
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(600);

/// MPI-style communicator for one rank.
pub struct Communicator {
    transport: Box<dyn Transport>,
    /// Received frames not yet claimed by a matching `recv`.
    pending: VecDeque<Frame>,
    /// Sequence number stamping each collective call with a fresh tag.
    coll_seq: u32,
    epoch: Instant,
    recv_timeout: Duration,
    finalized: bool,
}

impl Communicator {
    /// Wrap an arbitrary transport.
    pub fn from_transport(transport: Box<dyn Transport>) -> Self {
        Communicator {
            transport,
            pending: VecDeque::new(),
            coll_seq: 0,
            epoch: Instant::now(),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            finalized: false,
        }
    }

    /// Wrap an in-process fabric endpoint (thread-per-rank jobs).
    pub fn from_mem(endpoint: MemEndpoint) -> Self {
        Self::from_transport(Box::new(endpoint))
    }

    /// Wire up over real TCP sockets using an initialized PMI client —
    /// the path a Hydra-proxied process takes.
    pub fn via_pmi(pmi: &mut PmiClient) -> Result<Self, MpiError> {
        let transport = TcpTransport::wire_up(pmi)?;
        Ok(Self::from_transport(Box::new(transport)))
    }

    /// This rank's index in `0..size`.
    pub fn rank(&self) -> u32 {
        self.transport.rank()
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> u32 {
        self.transport.size()
    }

    /// Adjust the blocking-receive patience.
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    /// Seconds since this communicator was created (`MPI_Wtime`).
    pub fn wtime(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Send raw bytes to `dst` with `tag`.
    pub fn send_bytes(&mut self, dst: u32, tag: u32, payload: Bytes) -> Result<(), MpiError> {
        self.check_live()?;
        if tag >= TAG_USER_LIMIT {
            return Err(MpiError::Protocol(format!(
                "tag {tag} is in the reserved collective range"
            )));
        }
        self.send_frame(dst, tag, payload)
    }

    /// Receive bytes matching `(src, tag)`; `src` may be [`ANY_SOURCE`].
    /// Returns the actual source.
    pub fn recv_bytes(&mut self, src: u32, tag: u32) -> Result<(u32, Bytes), MpiError> {
        self.check_live()?;
        let frame = self.match_frame(src, tag)?;
        Ok((frame.src, frame.payload))
    }

    /// Send a typed slice.
    pub fn send<T: MpiData>(&mut self, dst: u32, tag: u32, data: &[T]) -> Result<(), MpiError> {
        let mut buf = Vec::new();
        T::encode_slice(data, &mut buf);
        self.send_bytes(dst, tag, Bytes::from(buf))
    }

    /// Receive a typed vector; returns `(actual_source, data)`.
    pub fn recv_vec<T: MpiData>(&mut self, src: u32, tag: u32) -> Result<(u32, Vec<T>), MpiError> {
        let (actual, payload) = self.recv_bytes(src, tag)?;
        Ok((actual, T::decode_slice(&payload)?))
    }

    /// Combined send-then-receive, the classic ping-pong primitive.
    pub fn sendrecv<T: MpiData>(
        &mut self,
        dst: u32,
        send_tag: u32,
        data: &[T],
        src: u32,
        recv_tag: u32,
    ) -> Result<(u32, Vec<T>), MpiError> {
        self.send(dst, send_tag, data)?;
        self.recv_vec(src, recv_tag)
    }

    /// Orderly shutdown: barrier with peers, then release the transport.
    pub fn finalize(&mut self) -> Result<(), MpiError> {
        if self.finalized {
            return Ok(());
        }
        self.barrier()?;
        self.finalized = true;
        self.transport.shutdown();
        Ok(())
    }

    // ---- crate-internal plumbing used by the collectives module ----

    pub(crate) fn check_live(&self) -> Result<(), MpiError> {
        if self.finalized {
            Err(MpiError::Protocol(
                "communicator already finalized".to_string(),
            ))
        } else {
            Ok(())
        }
    }

    /// Reserve a tag for one collective call. All ranks invoke collectives
    /// in the same order, so sequence numbers agree across the job.
    pub(crate) fn next_collective_tag(&mut self) -> u32 {
        let tag = TAG_USER_LIMIT + (self.coll_seq % (u32::MAX - TAG_USER_LIMIT));
        self.coll_seq = self.coll_seq.wrapping_add(1);
        tag
    }

    pub(crate) fn send_frame(
        &mut self,
        dst: u32,
        tag: u32,
        payload: Bytes,
    ) -> Result<(), MpiError> {
        if dst >= self.size() {
            return Err(MpiError::Protocol(format!(
                "destination rank {dst} out of range for size {}",
                self.size()
            )));
        }
        let frame = Frame {
            src: self.rank(),
            tag,
            payload,
        };
        self.transport.send(dst, frame)
    }

    /// Non-blocking match: return a queued frame matching `(src, tag)`
    /// if one has already arrived, draining the transport opportunistically.
    pub(crate) fn try_match(&mut self, src: u32, tag: u32) -> Result<Option<Frame>, MpiError> {
        if src != ANY_SOURCE && src >= self.size() {
            return Err(MpiError::Protocol(format!(
                "source rank {src} out of range for size {}",
                self.size()
            )));
        }
        // Drain anything immediately available into the pending queue.
        while let Some(frame) = self.transport.recv(Duration::ZERO)? {
            self.pending.push_back(frame);
        }
        if let Some(pos) = self
            .pending
            .iter()
            .position(|f| f.tag == tag && (src == ANY_SOURCE || f.src == src))
        {
            return Ok(Some(self.pending.remove(pos).expect("position just found")));
        }
        Ok(None)
    }

    /// Pull frames until one matches `(src, tag)`, stashing the rest.
    pub(crate) fn match_frame(&mut self, src: u32, tag: u32) -> Result<Frame, MpiError> {
        if src != ANY_SOURCE && src >= self.size() {
            return Err(MpiError::Protocol(format!(
                "source rank {src} out of range for size {}",
                self.size()
            )));
        }
        if let Some(pos) = self
            .pending
            .iter()
            .position(|f| f.tag == tag && (src == ANY_SOURCE || f.src == src))
        {
            return Ok(self.pending.remove(pos).expect("position just found"));
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(MpiError::Protocol(format!(
                    "recv(src={src}, tag={tag}) timed out after {:?}",
                    self.recv_timeout
                )));
            }
            match self.transport.recv(deadline - now)? {
                Some(frame) => {
                    if frame.tag == tag && (src == ANY_SOURCE || frame.src == src) {
                        return Ok(frame);
                    }
                    self.pending.push_back(frame);
                }
                None => continue, // loop re-checks the deadline
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFabric;
    use crate::netmodel::NetModel;
    use std::thread;

    fn pair() -> (Communicator, Communicator) {
        let mut eps = MemFabric::new(2, NetModel::ideal());
        let b = Communicator::from_mem(eps.pop().unwrap());
        let a = Communicator::from_mem(eps.pop().unwrap());
        (a, b)
    }

    #[test]
    fn typed_round_trip() {
        let (mut a, mut b) = pair();
        a.send(1, 3, &[1.5f64, 2.5]).unwrap();
        let (src, data) = b.recv_vec::<f64>(0, 3).unwrap();
        assert_eq!(src, 0);
        assert_eq!(data, vec![1.5, 2.5]);
    }

    #[test]
    fn tag_matching_reorders_pending_frames() {
        let (mut a, mut b) = pair();
        a.send(1, 1, &[10i32]).unwrap();
        a.send(1, 2, &[20i32]).unwrap();
        // Ask for tag 2 first: tag-1 frame must be stashed, not lost.
        let (_, second) = b.recv_vec::<i32>(0, 2).unwrap();
        assert_eq!(second, vec![20]);
        let (_, first) = b.recv_vec::<i32>(0, 1).unwrap();
        assert_eq!(first, vec![10]);
    }

    #[test]
    fn any_source_matches_whoever_arrives() {
        let mut eps = MemFabric::new(3, NetModel::ideal());
        let mut c = Communicator::from_mem(eps.pop().unwrap());
        let mut b = Communicator::from_mem(eps.pop().unwrap());
        let mut a = Communicator::from_mem(eps.pop().unwrap());
        b.send(0, 4, &[1u8]).unwrap();
        c.send(0, 4, &[2u8]).unwrap();
        let (s1, _) = a.recv_vec::<u8>(ANY_SOURCE, 4).unwrap();
        let (s2, _) = a.recv_vec::<u8>(ANY_SOURCE, 4).unwrap();
        let mut sources = [s1, s2];
        sources.sort_unstable();
        assert_eq!(sources, [1, 2]);
    }

    #[test]
    fn same_source_same_tag_is_fifo() {
        let (mut a, mut b) = pair();
        for i in 0..50i32 {
            a.send(1, 0, &[i]).unwrap();
        }
        for i in 0..50i32 {
            let (_, v) = b.recv_vec::<i32>(0, 0).unwrap();
            assert_eq!(v, vec![i]);
        }
    }

    #[test]
    fn user_tag_range_enforced() {
        let (mut a, _b) = pair();
        let err = a
            .send_bytes(1, TAG_USER_LIMIT, Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, MpiError::Protocol(_)));
    }

    #[test]
    fn bad_ranks_rejected() {
        let (mut a, _b) = pair();
        assert!(a.send(5, 0, &[0u8]).is_err());
        assert!(a.recv_vec::<u8>(5, 0).is_err());
    }

    #[test]
    fn recv_timeout_is_reported() {
        let (mut a, _b) = pair();
        a.set_recv_timeout(Duration::from_millis(10));
        let err = a.recv_vec::<u8>(1, 0).unwrap_err();
        assert!(matches!(err, MpiError::Protocol(m) if m.contains("timed out")));
    }

    #[test]
    fn sendrecv_ping_pong() {
        let (mut a, mut b) = pair();
        let h = thread::spawn(move || {
            let (_, ping) = b.recv_vec::<u64>(0, 1).unwrap();
            b.send(0, 2, &ping).unwrap();
        });
        let (_, echoed) = a.sendrecv(1, 1, &[99u64], 1, 2).unwrap();
        assert_eq!(echoed, vec![99]);
        h.join().unwrap();
    }

    #[test]
    fn wtime_advances() {
        let (a, _b) = pair();
        let t0 = a.wtime();
        thread::sleep(Duration::from_millis(5));
        assert!(a.wtime() > t0);
    }

    #[test]
    fn operations_after_finalize_fail() {
        let mut eps = MemFabric::new(1, NetModel::ideal());
        let mut a = Communicator::from_mem(eps.pop().unwrap());
        a.finalize().unwrap();
        assert!(a.send(0, 0, &[0u8]).is_err());
        // A second finalize is a no-op, not an error.
        assert!(a.finalize().is_ok());
    }
}
