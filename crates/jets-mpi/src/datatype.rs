//! Typed data movement: encoding slices of plain-old-data into frames.
//!
//! MPI programs send typed buffers; our frames carry bytes. [`MpiData`]
//! provides explicit little-endian encode/decode for the numeric types the
//! paper's workloads use (no `unsafe` transmutes — portability and
//! alignment safety are worth the copy). [`ReduceOp`] is the reduction
//! algebra for `reduce`/`allreduce`.

use crate::error::MpiError;

/// A fixed-width plain-old-data element that can cross the wire.
pub trait MpiData: Copy + Send + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append the little-endian encoding of `slice` to `buf`.
    fn encode_slice(slice: &[Self], buf: &mut Vec<u8>);
    /// Decode a whole buffer previously produced by [`Self::encode_slice`].
    fn decode_slice(bytes: &[u8]) -> Result<Vec<Self>, MpiError>;
}

macro_rules! impl_mpi_data {
    ($($t:ty),*) => {$(
        impl MpiData for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            fn encode_slice(slice: &[Self], buf: &mut Vec<u8>) {
                buf.reserve(slice.len() * Self::WIDTH);
                for v in slice {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }

            fn decode_slice(bytes: &[u8]) -> Result<Vec<Self>, MpiError> {
                if !bytes.len().is_multiple_of(Self::WIDTH) {
                    return Err(MpiError::Protocol(format!(
                        "payload of {} bytes is not a whole number of {}-byte elements",
                        bytes.len(),
                        Self::WIDTH
                    )));
                }
                Ok(bytes
                    .chunks_exact(Self::WIDTH)
                    .map(|c| <$t>::from_le_bytes(c.try_into().expect("exact chunk")))
                    .collect())
            }
        }
    )*};
}

impl_mpi_data!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Reduction operators for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// Data that supports the [`ReduceOp`] algebra.
pub trait MpiReduce: MpiData {
    /// Combine two elements under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_mpi_reduce_int {
    ($($t:ty),*) => {$(
        impl MpiReduce for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )*};
}

impl_mpi_reduce_int!(u8, i8, u16, i16, u32, i32, u64, i64);

macro_rules! impl_mpi_reduce_float {
    ($($t:ty),*) => {$(
        impl MpiReduce for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )*};
}

impl_mpi_reduce_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let xs = [1.5f64, -0.25, f64::MAX, f64::MIN_POSITIVE, 0.0];
        let mut buf = Vec::new();
        f64::encode_slice(&xs, &mut buf);
        assert_eq!(buf.len(), xs.len() * 8);
        assert_eq!(f64::decode_slice(&buf).unwrap(), xs);
    }

    #[test]
    fn u32_round_trip() {
        let xs = [0u32, 1, u32::MAX, 0xdead_beef];
        let mut buf = Vec::new();
        u32::encode_slice(&xs, &mut buf);
        assert_eq!(u32::decode_slice(&buf).unwrap(), xs);
    }

    #[test]
    fn empty_slice_round_trips() {
        let mut buf = Vec::new();
        i64::encode_slice(&[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(i64::decode_slice(&buf).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn ragged_payload_rejected() {
        assert!(matches!(
            f64::decode_slice(&[0u8; 9]),
            Err(MpiError::Protocol(_))
        ));
    }

    #[test]
    fn reduce_ops_on_ints() {
        assert_eq!(i32::combine(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(i32::combine(ReduceOp::Prod, 3, 4), 12);
        assert_eq!(i32::combine(ReduceOp::Min, 3, 4), 3);
        assert_eq!(i32::combine(ReduceOp::Max, 3, 4), 4);
        // Wrapping semantics keep reductions total.
        assert_eq!(u8::combine(ReduceOp::Sum, 255, 1), 0);
    }

    #[test]
    fn reduce_ops_on_floats() {
        assert_eq!(f64::combine(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(f64::combine(ReduceOp::Max, -1.0, 2.0), 2.0);
        assert_eq!(f64::combine(ReduceOp::Min, -1.0, 2.0), -1.0);
    }
}
