//! Collective file I/O — the MPI-IO argument of the paper, miniaturized.
//!
//! Section 1.2: "MPTC allows tasks to use powerful software
//! implementations such as MPI-IO, which aggregate and optimize accesses
//! to distributed and parallel filesystems ... given N MTC processes, the
//! filesystem would be accessed by N clients; however, for 16-process
//! MPTC tasks using MPI-IO, the number of clients would be N/16."
//!
//! [`CollectiveFile`] implements exactly that aggregation: ranks are
//! partitioned into groups of `aggregation` consecutive ranks; on a
//! collective write, each group's members ship their blocks to the
//! group's aggregator rank, which performs one coalesced filesystem
//! write. Reads mirror the scheme. The `bench/io_aggregation` harness
//! measures the client-count reduction against a modelled shared
//! filesystem.

use crate::comm::Communicator;
use crate::error::MpiError;
use bytes::Bytes;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A file opened collectively by every rank of a communicator.
pub struct CollectiveFile {
    path: PathBuf,
    aggregation: u32,
    /// Filesystem operations performed *by this rank* (aggregators only).
    fs_ops: u64,
    /// Modelled per-operation cost of the shared filesystem (benchmarks
    /// use this to stand in for a loaded GPFS; zero by default).
    op_penalty: std::time::Duration,
}

impl CollectiveFile {
    /// Open (creating if needed) `path` across the communicator, with
    /// `aggregation` ranks per I/O aggregator. `aggregation = 1`
    /// degenerates to uncoordinated per-rank access; `aggregation =
    /// comm.size()` funnels everything through rank 0.
    pub fn open(
        comm: &mut Communicator,
        path: impl AsRef<Path>,
        aggregation: u32,
    ) -> Result<CollectiveFile, MpiError> {
        if aggregation == 0 {
            return Err(MpiError::Protocol(
                "aggregation factor must be at least 1".to_string(),
            ));
        }
        // Rank 0 creates the file; everyone waits on the barrier before
        // touching it.
        if comm.rank() == 0 {
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path.as_ref())
                .map_err(|e| MpiError::Io(format!("create {:?}: {e}", path.as_ref())))?;
        }
        comm.barrier()?;
        Ok(CollectiveFile {
            path: path.as_ref().to_path_buf(),
            aggregation,
            fs_ops: 0,
            op_penalty: std::time::Duration::ZERO,
        })
    }

    /// Charge every filesystem operation a modelled `penalty` (stand-in
    /// for shared-filesystem load; see the `io_aggregation` bench).
    pub fn with_op_penalty(mut self, penalty: std::time::Duration) -> Self {
        self.op_penalty = penalty;
        self
    }

    fn charge_op(&mut self) {
        self.fs_ops += 1;
        if !self.op_penalty.is_zero() {
            std::thread::sleep(self.op_penalty);
        }
    }

    /// The aggregator rank for `rank`.
    fn aggregator_of(&self, rank: u32) -> u32 {
        (rank / self.aggregation) * self.aggregation
    }

    /// Ranks aggregated by `rank` (when it is an aggregator).
    fn group_of(&self, rank: u32, size: u32) -> std::ops::Range<u32> {
        let start = self.aggregator_of(rank);
        start..(start + self.aggregation).min(size)
    }

    /// Number of filesystem operations this rank has issued (the
    /// "clients" metric of the paper's argument).
    pub fn fs_ops(&self) -> u64 {
        self.fs_ops
    }

    /// Collective write: every rank contributes `data` at file offset
    /// `offset`. Group members send `(offset, data)` to their aggregator,
    /// which coalesces contiguous blocks and issues the minimum number of
    /// filesystem writes.
    pub fn write_at_all(
        &mut self,
        comm: &mut Communicator,
        offset: u64,
        data: &[u8],
    ) -> Result<(), MpiError> {
        let rank = comm.rank();
        let size = comm.size();
        let aggregator = self.aggregator_of(rank);
        let tag = comm.next_collective_tag();
        if rank != aggregator {
            // Frame: 8-byte offset header + payload.
            let mut buf = Vec::with_capacity(8 + data.len());
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(data);
            comm.send_frame(aggregator, tag, Bytes::from(buf))?;
        } else {
            let mut blocks: Vec<(u64, Vec<u8>)> = vec![(offset, data.to_vec())];
            for peer in self.group_of(rank, size) {
                if peer == rank {
                    continue;
                }
                let frame = comm.match_frame(peer, tag)?;
                if frame.payload.len() < 8 {
                    return Err(MpiError::Protocol("short write block".to_string()));
                }
                let peer_offset =
                    u64::from_le_bytes(frame.payload[..8].try_into().expect("8 bytes"));
                blocks.push((peer_offset, frame.payload[8..].to_vec()));
            }
            // Coalesce contiguous blocks into single filesystem writes.
            blocks.sort_by_key(|(o, _)| *o);
            let mut file = OpenOptions::new()
                .write(true)
                .open(&self.path)
                .map_err(|e| MpiError::Io(format!("open {:?}: {e}", self.path)))?;
            let mut i = 0;
            while i < blocks.len() {
                let run_offset = blocks[i].0;
                let mut run: Vec<u8> = Vec::new();
                let mut next = run_offset;
                while i < blocks.len() && blocks[i].0 == next {
                    next += blocks[i].1.len() as u64;
                    run.extend_from_slice(&blocks[i].1);
                    i += 1;
                }
                file.seek(SeekFrom::Start(run_offset))
                    .and_then(|_| file.write_all(&run))
                    .map_err(|e| MpiError::Io(format!("write {:?}: {e}", self.path)))?;
                self.charge_op();
            }
        }
        // The collective completes together, like MPI_File_write_at_all.
        comm.barrier()?;
        Ok(())
    }

    /// Collective read: every rank receives `len` bytes from file offset
    /// `offset`. The aggregator reads the group's full span once and
    /// scatters the slices.
    pub fn read_at_all(
        &mut self,
        comm: &mut Communicator,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, MpiError> {
        let rank = comm.rank();
        let size = comm.size();
        let aggregator = self.aggregator_of(rank);
        let tag = comm.next_collective_tag();
        if rank != aggregator {
            let mut req = Vec::with_capacity(16);
            req.extend_from_slice(&offset.to_le_bytes());
            req.extend_from_slice(&(len as u64).to_le_bytes());
            comm.send_frame(aggregator, tag, Bytes::from(req))?;
            let frame = comm.match_frame(aggregator, tag)?;
            comm.barrier()?;
            return Ok(frame.payload.to_vec());
        }
        let mut requests: Vec<(u32, u64, usize)> = vec![(rank, offset, len)];
        for peer in self.group_of(rank, size) {
            if peer == rank {
                continue;
            }
            let frame = comm.match_frame(peer, tag)?;
            if frame.payload.len() != 16 {
                return Err(MpiError::Protocol("bad read request".to_string()));
            }
            let o = u64::from_le_bytes(frame.payload[..8].try_into().expect("8 bytes"));
            let l = u64::from_le_bytes(frame.payload[8..16].try_into().expect("8 bytes"));
            requests.push((peer, o, l as usize));
        }
        // One read covering the group's whole span.
        let lo = requests.iter().map(|&(_, o, _)| o).min().expect("nonempty");
        let hi = requests
            .iter()
            .map(|&(_, o, l)| o + l as u64)
            .max()
            .expect("nonempty");
        let mut file = std::fs::File::open(&self.path)
            .map_err(|e| MpiError::Io(format!("open {:?}: {e}", self.path)))?;
        let mut span = vec![0u8; (hi - lo) as usize];
        file.seek(SeekFrom::Start(lo))
            .and_then(|_| file.read_exact(&mut span))
            .map_err(|e| MpiError::Io(format!("read {:?}: {e}", self.path)))?;
        self.charge_op();
        let mut mine = Vec::new();
        for (peer, o, l) in requests {
            let slice = &span[(o - lo) as usize..(o - lo) as usize + l];
            if peer == rank {
                mine = slice.to_vec();
            } else {
                comm.send_frame(peer, tag, Bytes::copy_from_slice(slice))?;
            }
        }
        comm.barrier()?;
        Ok(mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetModel;
    use crate::runner::run_threads;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpiio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(tag)
    }

    fn run_write(size: u32, aggregation: u32, tag: &str) -> (Vec<u8>, u64) {
        let path = tmp(tag);
        std::fs::remove_file(&path).ok();
        let block = 8usize;
        let p = path.clone();
        let ops = Arc::new(AtomicU64::new(0));
        let ops2 = Arc::clone(&ops);
        run_threads(size, NetModel::ideal(), move |comm| {
            let mut file = CollectiveFile::open(comm, &p, aggregation).unwrap();
            let rank = comm.rank();
            let data = vec![rank as u8 + 1; block];
            file.write_at_all(comm, rank as u64 * block as u64, &data)
                .unwrap();
            ops2.fetch_add(file.fs_ops(), Ordering::SeqCst);
            0
        })
        .unwrap();
        let contents = std::fs::read(&path).unwrap();
        (contents, ops.load(Ordering::SeqCst))
    }

    #[test]
    fn aggregated_write_produces_correct_file_with_fewer_ops() {
        let (contents, ops) = run_write(8, 4, "agg4.dat");
        assert_eq!(contents.len(), 64);
        for rank in 0..8u8 {
            assert!(contents[rank as usize * 8..(rank as usize + 1) * 8]
                .iter()
                .all(|&b| b == rank + 1));
        }
        // Two aggregators, one coalesced write each.
        assert_eq!(ops, 2);
    }

    #[test]
    fn unaggregated_write_uses_one_op_per_rank() {
        let (contents, ops) = run_write(8, 1, "agg1.dat");
        assert_eq!(contents.len(), 64);
        assert_eq!(ops, 8);
    }

    #[test]
    fn full_aggregation_funnels_through_rank0() {
        let (contents, ops) = run_write(6, 6, "agg6.dat");
        assert_eq!(contents.len(), 48);
        assert_eq!(ops, 1);
    }

    #[test]
    fn collective_read_returns_each_ranks_slice() {
        let path = tmp("read.dat");
        let data: Vec<u8> = (0..64u8).collect();
        std::fs::write(&path, &data).unwrap();
        let p = path.clone();
        run_threads(4, NetModel::ideal(), move |comm| {
            let mut file = CollectiveFile::open(comm, &p, 2).unwrap();
            let rank = comm.rank();
            let got = file.read_at_all(comm, rank as u64 * 16, 16).unwrap();
            let expect: Vec<u8> = (rank as u8 * 16..(rank as u8 + 1) * 16).collect();
            assert_eq!(got, expect);
            0
        })
        .unwrap();
    }

    #[test]
    fn zero_aggregation_rejected() {
        run_threads(1, NetModel::ideal(), |comm| {
            assert!(CollectiveFile::open(comm, "/tmp/x", 0).is_err());
            0
        })
        .unwrap();
    }

    #[test]
    fn ragged_group_sizes_work() {
        // 5 ranks with aggregation 2: groups {0,1},{2,3},{4}.
        let (contents, ops) = run_write(5, 2, "ragged.dat");
        assert_eq!(contents.len(), 40);
        assert_eq!(ops, 3);
    }
}
