//! TCP transport: how separate-process ranks exchange frames.
//!
//! Wire-up follows the MPICH2-on-sockets flow exactly: each rank binds an
//! ephemeral listener, publishes `bc.<rank> = host:port` into the job's PMI
//! key-value space, fences, and resolves peers from the KVS. Connections
//! are established lazily on first send. Each direction of traffic uses the
//! socket the *sender* initiated (accepted sockets are read-only), so
//! per-(source, destination) FIFO ordering holds without any sequencing.
//!
//! Frame format: a 12-byte little-endian header `[src u32][tag u32][len
//! u32]` followed by `len` payload bytes.

use crate::error::MpiError;
use crate::transport::{Frame, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use jets_pmi::PmiClient;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Upper bound on a single frame payload; guards against corrupt headers.
const MAX_FRAME: u32 = 1 << 30;

/// Stack size for reader/acceptor service threads.
const SERVICE_STACK: usize = 128 * 1024;

/// A TCP endpoint for one rank, wired up through PMI.
pub struct TcpTransport {
    rank: u32,
    size: u32,
    incoming_tx: Sender<Frame>,
    incoming_rx: Receiver<Frame>,
    /// Lazily-opened write sockets, indexed by destination rank.
    writers: Vec<Option<TcpStream>>,
    peer_addrs: Vec<String>,
    shutdown_flag: Arc<AtomicBool>,
    down: bool,
}

impl TcpTransport {
    /// Bind a listener, exchange business cards through `pmi`, and start
    /// accepting peer connections.
    pub fn wire_up(pmi: &mut PmiClient) -> Result<TcpTransport, MpiError> {
        let rank = pmi.rank();
        let size = pmi.size();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let my_addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;

        pmi.put(&format!("bc.{rank}"), &my_addr)
            .map_err(|e| MpiError::Pmi(e.to_string()))?;
        pmi.fence().map_err(|e| MpiError::Pmi(e.to_string()))?;

        let mut peer_addrs = Vec::with_capacity(size as usize);
        for peer in 0..size {
            let card = pmi
                .get(&format!("bc.{peer}"))
                .map_err(|e| MpiError::Pmi(e.to_string()))?
                .ok_or_else(|| MpiError::Pmi(format!("no business card for rank {peer}")))?;
            peer_addrs.push(card);
        }

        let (incoming_tx, incoming_rx) = unbounded();
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let acceptor_tx = incoming_tx.clone();
        let acceptor_flag = Arc::clone(&shutdown_flag);
        thread::Builder::new()
            .name(format!("mpi-accept-{rank}"))
            .stack_size(SERVICE_STACK)
            .spawn(move || accept_loop(listener, acceptor_tx, acceptor_flag))
            .expect("spawn mpi acceptor");

        Ok(TcpTransport {
            rank,
            size,
            incoming_tx,
            incoming_rx,
            writers: (0..size).map(|_| None).collect(),
            peer_addrs,
            shutdown_flag,
            down: false,
        })
    }

    fn writer_for(&mut self, dst: u32) -> Result<&mut TcpStream, MpiError> {
        let slot = self
            .writers
            .get_mut(dst as usize)
            .ok_or_else(|| MpiError::Protocol(format!("rank {dst} out of range")))?;
        if slot.is_none() {
            let stream = TcpStream::connect(&self.peer_addrs[dst as usize])
                .map_err(|_| MpiError::Disconnected { peer: dst })?;
            stream.set_nodelay(true)?;
            let mut stream = stream;
            // Hello: identify ourselves so the peer's reader labels frames.
            stream.write_all(&self.rank.to_le_bytes())?;
            *slot = Some(stream);
        }
        Ok(slot.as_mut().expect("just filled"))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, dst: u32, frame: Frame) -> Result<(), MpiError> {
        if self.down {
            return Err(MpiError::Protocol("endpoint is shut down".to_string()));
        }
        if dst == self.rank {
            // Self-sends short-circuit the network, as in every real MPI.
            self.incoming_tx
                .send(frame)
                .map_err(|_| MpiError::Disconnected { peer: dst })?;
            return Ok(());
        }
        let mut header = [0u8; 12];
        header[0..4].copy_from_slice(&frame.src.to_le_bytes());
        header[4..8].copy_from_slice(&frame.tag.to_le_bytes());
        header[8..12].copy_from_slice(&(frame.payload.len() as u32).to_le_bytes());
        let writer = self.writer_for(dst)?;
        writer
            .write_all(&header)
            .and_then(|_| writer.write_all(&frame.payload))
            .map_err(|_| MpiError::Disconnected { peer: dst })
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, MpiError> {
        match self.incoming_rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(MpiError::Protocol("incoming channel closed".to_string()))
            }
        }
    }

    fn rank(&self) -> u32 {
        self.rank
    }

    fn size(&self) -> u32 {
        self.size
    }

    fn shutdown(&mut self) {
        self.down = true;
        self.shutdown_flag.store(true, Ordering::Release);
        for w in &mut self.writers {
            *w = None; // dropping closes the socket; peers' readers see EOF
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, incoming: Sender<Frame>, shutdown: Arc<AtomicBool>) {
    let mut backoff = Duration::from_micros(200);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_micros(200);
                stream.set_nodelay(true).ok();
                let tx = incoming.clone();
                // Spawn failure sheds this connection; the peer rank's
                // connect will fail or time out and surface there.
                if thread::Builder::new()
                    .name("mpi-read".to_string())
                    .stack_size(SERVICE_STACK)
                    .spawn(move || read_loop(stream, tx))
                    .is_err()
                {
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Decode a little-endian u32 from a 4-byte slice without a fallible
/// conversion (callers index fixed-size header arrays).
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_loop(mut stream: TcpStream, incoming: Sender<Frame>) {
    let mut hello = [0u8; 4];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    let src = u32::from_le_bytes(hello);
    let mut header = [0u8; 12];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // peer closed: normal teardown, communicator handles it
        }
        let frame_src = le_u32(&header[0..4]);
        let tag = le_u32(&header[4..8]);
        let len = le_u32(&header[8..12]);
        if frame_src != src || len > MAX_FRAME {
            return; // corrupt stream; drop the connection
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let frame = Frame {
            src,
            tag,
            payload: Bytes::from(payload),
        };
        if incoming.send(frame).is_err() {
            return; // local endpoint dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_pmi::{PmiServer, PmiServerConfig};

    /// Run `size` process-style ranks (threads with their own PMI clients
    /// and TCP transports) through `f`.
    fn run_tcp_ranks(
        size: u32,
        f: impl Fn(&mut TcpTransport) + Send + Sync + 'static,
    ) -> jets_pmi::JobOutcome {
        let server = PmiServer::start(PmiServerConfig::new("tcp-test", size)).unwrap();
        let addr = server.addr().to_string();
        let f = Arc::new(f);
        let mut handles = Vec::new();
        for rank in 0..size {
            let addr = addr.clone();
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                let mut pmi = PmiClient::connect(&addr, rank, size, "tcp-test").unwrap();
                let mut t = TcpTransport::wire_up(&mut pmi).unwrap();
                f(&mut t);
                pmi.finalize().unwrap();
                t.shutdown();
            }));
        }
        let outcome = server.wait(Duration::from_secs(30));
        for h in handles {
            h.join().unwrap();
        }
        outcome
    }

    #[test]
    fn ping_pong_over_real_sockets() {
        let outcome = run_tcp_ranks(2, |t| {
            let timeout = Duration::from_secs(10);
            if t.rank() == 0 {
                t.send(
                    1,
                    Frame {
                        src: 0,
                        tag: 5,
                        payload: Bytes::from_static(b"ping"),
                    },
                )
                .unwrap();
                let f = t.recv(timeout).unwrap().unwrap();
                assert_eq!(&f.payload[..], b"pong");
                assert_eq!(f.src, 1);
            } else {
                let f = t.recv(timeout).unwrap().unwrap();
                assert_eq!(&f.payload[..], b"ping");
                t.send(
                    0,
                    Frame {
                        src: 1,
                        tag: 5,
                        payload: Bytes::from_static(b"pong"),
                    },
                )
                .unwrap();
            }
        });
        assert_eq!(outcome, jets_pmi::JobOutcome::Success);
    }

    #[test]
    fn all_to_one_fan_in() {
        let outcome = run_tcp_ranks(4, |t| {
            let timeout = Duration::from_secs(10);
            if t.rank() == 0 {
                let mut seen = vec![false; 4];
                for _ in 0..3 {
                    let f = t.recv(timeout).unwrap().unwrap();
                    assert_eq!(f.payload[0] as u32, f.src);
                    seen[f.src as usize] = true;
                }
                assert_eq!(seen, vec![false, true, true, true]);
            } else {
                t.send(
                    0,
                    Frame {
                        src: t.rank(),
                        tag: 1,
                        payload: Bytes::from(vec![t.rank() as u8]),
                    },
                )
                .unwrap();
            }
        });
        assert_eq!(outcome, jets_pmi::JobOutcome::Success);
    }

    #[test]
    fn self_send_round_trips() {
        let outcome = run_tcp_ranks(1, |t| {
            t.send(
                0,
                Frame {
                    src: 0,
                    tag: 9,
                    payload: Bytes::from_static(b"self"),
                },
            )
            .unwrap();
            let f = t.recv(Duration::from_secs(5)).unwrap().unwrap();
            assert_eq!(&f.payload[..], b"self");
        });
        assert_eq!(outcome, jets_pmi::JobOutcome::Success);
    }

    #[test]
    fn large_payload_survives() {
        let outcome = run_tcp_ranks(2, |t| {
            let timeout = Duration::from_secs(10);
            let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
            if t.rank() == 0 {
                t.send(
                    1,
                    Frame {
                        src: 0,
                        tag: 2,
                        payload: Bytes::from(big),
                    },
                )
                .unwrap();
            } else {
                let f = t.recv(timeout).unwrap().unwrap();
                assert_eq!(f.payload.len(), 1_000_000);
                assert!(f
                    .payload
                    .iter()
                    .enumerate()
                    .all(|(i, &b)| b == (i % 251) as u8));
            }
        });
        assert_eq!(outcome, jets_pmi::JobOutcome::Success);
    }
}
