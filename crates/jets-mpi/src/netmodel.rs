//! Network performance models for the in-process transport.
//!
//! Figure 8 of the JETS paper compares MPI ping-pong performance in two
//! modes on the Blue Gene/P: *native* (IBM's DCMF messaging over the torus,
//! default CNK kernel) and *MPICH/sockets* (MPICH2 over the ZeptoOS
//! IP-over-torus device). Sockets mode pays a large latency penalty on
//! small messages and a modest bandwidth penalty on large ones. We cannot
//! run on a Blue Gene/P, so the in-process fabric charges each message a
//! modelled transfer time: `latency + bytes / bandwidth`. The two stock
//! models below are parameterized to the BG/P's published characteristics;
//! the *shape* of the native-vs-sockets comparison is what matters.

use std::time::{Duration, Instant};

/// Latency/bandwidth cost model for one network hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message latency.
    pub latency: Duration,
    /// Sustained bandwidth in bytes per second. `f64::INFINITY` disables
    /// the size-dependent term.
    pub bandwidth: f64,
}

impl NetModel {
    /// No injected delay: messages cost only what the fabric itself costs.
    pub fn ideal() -> Self {
        NetModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
        }
    }

    /// Native BG/P messaging (DCMF over the torus): a few microseconds of
    /// latency, ~375 MB/s per link.
    pub fn native_bgp() -> Self {
        NetModel {
            latency: Duration::from_micros(4),
            bandwidth: 375.0e6,
        }
    }

    /// MPICH2 over the ZeptoOS TCP/IP-over-torus device: TCP stack
    /// traversal dominates small messages (~100 µs), and large-message
    /// bandwidth drops to ~250 MB/s.
    pub fn zepto_tcp() -> Self {
        NetModel {
            latency: Duration::from_micros(95),
            bandwidth: 250.0e6,
        }
    }

    /// A commodity-cluster gigabit-ethernet model (Breadboard/Eureka).
    pub fn cluster_gige() -> Self {
        NetModel {
            latency: Duration::from_micros(50),
            bandwidth: 110.0e6,
        }
    }

    /// The modelled transfer time of a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_infinite() {
            return self.latency;
        }
        let serialization = Duration::from_secs_f64(bytes as f64 / self.bandwidth);
        self.latency + serialization
    }

    /// True when the model injects no delay at all.
    pub fn is_ideal(&self) -> bool {
        self.latency.is_zero() && self.bandwidth.is_infinite()
    }
}

/// Wait for `d` with sub-millisecond fidelity.
///
/// `thread::sleep` on Linux typically overshoots by ~50 µs, which would
/// swamp a 4 µs native-model latency, so short waits spin (yielding each
/// iteration so sibling rank threads progress on few-core hosts) and long
/// waits sleep for most of the interval, then spin out the remainder.
pub fn precise_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    const SPIN_THRESHOLD: Duration = Duration::from_micros(300);
    if d > SPIN_THRESHOLD {
        std::thread::sleep(d - SPIN_THRESHOLD);
    }
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_costs_nothing() {
        let m = NetModel::ideal();
        assert!(m.is_ideal());
        assert_eq!(m.transfer_time(1 << 20), Duration::ZERO);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = NetModel {
            latency: Duration::from_micros(10),
            bandwidth: 1.0e6, // 1 MB/s
        };
        assert_eq!(m.transfer_time(0), Duration::from_micros(10));
        // 1 MB at 1 MB/s = 1 s (+ latency).
        let t = m.transfer_time(1_000_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1011));
    }

    #[test]
    fn sockets_model_has_higher_latency_and_lower_bandwidth_than_native() {
        let native = NetModel::native_bgp();
        let sockets = NetModel::zepto_tcp();
        assert!(sockets.latency > 10 * native.latency);
        assert!(sockets.bandwidth < native.bandwidth);
        // Small messages: sockets much slower. Large: modestly slower.
        let small = 8;
        let large = 4 << 20;
        let small_ratio =
            sockets.transfer_time(small).as_secs_f64() / native.transfer_time(small).as_secs_f64();
        let large_ratio =
            sockets.transfer_time(large).as_secs_f64() / native.transfer_time(large).as_secs_f64();
        assert!(small_ratio > 10.0, "small ratio {small_ratio}");
        assert!(large_ratio < 2.0, "large ratio {large_ratio}");
    }

    #[test]
    fn precise_wait_reaches_its_deadline() {
        for d in [Duration::from_micros(50), Duration::from_millis(2)] {
            let start = Instant::now();
            precise_wait(d);
            assert!(Instant::now() - start >= d);
        }
    }
}
