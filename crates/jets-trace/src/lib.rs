//! # jets-trace — cross-process span tracing for the JETS stack
//!
//! Every job carries a 64-bit trace id minted at submission; the
//! dispatcher, any relay on the path, and the executing workers each
//! emit [`EventKind::SpanStart`]/[`EventKind::SpanEnd`] pairs into
//! their own flight-recorder rings. This crate merges those rings —
//! each file is one *lane*, stamped with its writer's role and pid —
//! into a single timeline and answers the questions the paper's
//! evaluation asks of a run:
//!
//! * [`TraceModel::perfetto_json`] — the whole run as a Chrome
//!   trace-event / Perfetto JSON document (`jets trace export`), one
//!   process row per lane, one track per job.
//! * [`TraceModel::critical_path`] — where one job's wall time went,
//!   phase by phase, including the dominant (slowest-finishing) task's
//!   relay-forward → stage → exec chain (`jets trace critical-path`).
//! * [`TraceModel::stats`] — per-kind span accounting plus delivered
//!   utilization in the sense of the paper's Eq. (1): exec-busy time
//!   over worker-lanes × window (`jets trace stats`).
//!
//! ## Clock alignment
//!
//! Each ring header stamps the wall-clock microsecond (`CLOCK_REALTIME`)
//! of its `t == 0`, so a lane's events map to absolute time as
//! `epoch_unix_us + t`. Lanes recorded on one machine therefore align
//! exactly; lanes from different machines inherit whatever wall-clock
//! skew exists between them (NTP-grade in practice). No offset solving
//! is attempted — a relay-forward span that appears to start before its
//! ship span ended is how you *see* the skew. Durations are always
//! intra-lane and thus skew-free.
//!
//! ## Crash tolerance
//!
//! The input rings may come from `kill -9`'d processes — that is the
//! flight recorder's point. A start whose end never landed becomes an
//! *open* span ([`TraceModel::open`], exported as a Perfetto `B` event
//! with no matching `E`); an end whose start was overwritten by ring
//! wraparound is counted in [`TraceModel::unmatched_ends`]. Nothing
//! here panics on a torn or half-recorded trace.

#![warn(missing_docs)]

use jets_core::events::{EventKind, FlightView, SpanKind, WriterRole};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::path::Path;

/// One closed (or crash-open) span on the merged timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The job's trace id (minted at submission, never zero).
    pub trace: u64,
    /// Which lifecycle phase this span measures.
    pub kind: SpanKind,
    /// The process role that recorded it.
    pub role: WriterRole,
    /// The job.
    pub job: u64,
    /// The task (0 for job-level dispatcher spans).
    pub task: u64,
    /// PID of the recording process (the Perfetto process row).
    pub pid: u64,
    /// Absolute start, microseconds since the Unix epoch.
    pub start_us: u64,
    /// Absolute end. Equals `start_us` for crash-open spans, whose
    /// true end was never recorded.
    pub end_us: u64,
}

impl Span {
    /// The span's duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One flight file's identity in the merged trace.
#[derive(Debug, Clone, Copy)]
pub struct Lane {
    /// The writer's process role.
    pub role: WriterRole,
    /// The writer's pid.
    pub pid: u64,
    /// Wall-clock microseconds of this lane's `t == 0`.
    pub epoch_unix_us: u64,
    /// Slots mid-write at the moment of death.
    pub torn: u64,
    /// Committed slots that failed to decode.
    pub undecodable: u64,
    /// Events lost to ring wraparound.
    pub overwritten: u64,
}

/// The merged cross-process trace: every lane's spans on one absolute
/// timeline.
#[derive(Debug, Default)]
pub struct TraceModel {
    /// Closed spans, sorted by start time.
    pub spans: Vec<Span>,
    /// Crash-open spans (start recorded, end never landed), with
    /// `end_us == start_us`.
    pub open: Vec<Span>,
    /// `SpanEnd`s whose start was overwritten by ring wraparound.
    pub unmatched_ends: u64,
    /// The input lanes, in the order given.
    pub lanes: Vec<Lane>,
}

impl TraceModel {
    /// Merge flight views into one timeline. Starts and ends pair FIFO
    /// by `(trace, kind, task)` *within each lane* — a span's two ends
    /// are always recorded by the same process, and FIFO keeps repeats
    /// (a requeued job's second queue span) matched in order.
    pub fn from_views(views: &[FlightView]) -> TraceModel {
        let mut model = TraceModel::default();
        for view in views {
            model.lanes.push(Lane {
                role: view.role,
                pid: view.writer_pid,
                epoch_unix_us: view.epoch_unix_us,
                torn: view.torn,
                undecodable: view.undecodable,
                overwritten: view.overwritten,
            });
            let mut pending: HashMap<(u64, SpanKind, u64), VecDeque<Span>> = HashMap::new();
            for ev in &view.events {
                let at_us = view.epoch_unix_us.saturating_add(ev.t.as_micros() as u64);
                match ev.kind {
                    EventKind::SpanStart {
                        trace,
                        kind,
                        role,
                        job,
                        task,
                    } => pending
                        .entry((trace, kind, task))
                        .or_default()
                        .push_back(Span {
                            trace,
                            kind,
                            role,
                            job,
                            task,
                            pid: view.writer_pid,
                            start_us: at_us,
                            end_us: at_us,
                        }),
                    EventKind::SpanEnd {
                        trace, kind, task, ..
                    } => match pending
                        .get_mut(&(trace, kind, task))
                        .and_then(VecDeque::pop_front)
                    {
                        Some(mut span) => {
                            span.end_us = at_us.max(span.start_us);
                            model.spans.push(span);
                        }
                        None => model.unmatched_ends += 1,
                    },
                    _ => {}
                }
            }
            model.open.extend(pending.into_values().flatten());
        }
        model
            .spans
            .sort_unstable_by_key(|s| (s.start_us, s.end_us, s.kind.code()));
        model
            .open
            .sort_unstable_by_key(|s| (s.start_us, s.kind.code()));
        model
    }

    /// Read flight files and merge them ([`jets_core::read_flight`] per
    /// path, then [`TraceModel::from_views`]).
    pub fn from_files<P: AsRef<Path>>(paths: &[P]) -> io::Result<TraceModel> {
        let mut views = Vec::with_capacity(paths.len());
        for path in paths {
            views.push(jets_core::read_flight(path.as_ref())?);
        }
        Ok(TraceModel::from_views(&views))
    }

    /// Every job seen in any span, with its trace id.
    pub fn jobs(&self) -> BTreeMap<u64, u64> {
        let mut jobs = BTreeMap::new();
        for s in self.spans.iter().chain(&self.open) {
            jobs.entry(s.job).or_insert(s.trace);
        }
        jobs
    }

    /// True when `job`'s submit→run chain is fully closed: every
    /// dispatcher job-level phase that started also ended, and at least
    /// one other process (relay or worker) contributed a closed span.
    pub fn job_chain_closed(&self, job: u64) -> bool {
        let dispatcher_closed = |kind: SpanKind| {
            self.spans
                .iter()
                .any(|s| s.job == job && s.kind == kind && s.role == WriterRole::Dispatcher)
        };
        let no_open = !self.open.iter().any(|s| s.job == job);
        let remote = self
            .spans
            .iter()
            .any(|s| s.job == job && s.role != WriterRole::Dispatcher);
        no_open
            && remote
            && [
                SpanKind::Submit,
                SpanKind::Queue,
                SpanKind::Run,
                SpanKind::Report,
            ]
            .into_iter()
            .all(dispatcher_closed)
    }

    /// The whole model as a Chrome trace-event / Perfetto JSON document.
    ///
    /// One process row per lane (`pid` = writer pid, named by role), one
    /// track per job (`tid` = job id). Timestamps are normalized to the
    /// earliest span so viewers keep full double precision. Closed spans
    /// are complete (`"ph":"X"`) events; crash-open spans are emitted as
    /// begin-only (`"ph":"B"`) events, which Perfetto renders as
    /// unfinished — exactly what they are.
    pub fn perfetto_json(&self) -> String {
        let t0 = self
            .spans
            .iter()
            .chain(&self.open)
            .map(|s| s.start_us)
            .min()
            .unwrap_or(0);
        let mut doc = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |doc: &mut String, entry: String| {
            if !first {
                doc.push(',');
            }
            first = false;
            doc.push('\n');
            doc.push_str(&entry);
        };
        let mut named: Vec<u64> = Vec::new();
        for lane in &self.lanes {
            // Agents sharing one process share a row; name it once.
            if named.contains(&lane.pid) {
                continue;
            }
            named.push(lane.pid);
            push(
                &mut doc,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{} (pid {})\"}}}}",
                    lane.pid,
                    lane.role.as_str(),
                    lane.pid
                ),
            );
        }
        for s in &self.spans {
            push(
                &mut doc,
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"{:#018x}\",\"job\":{},\"task\":{}}}}}",
                    s.kind.as_str(),
                    s.role.as_str(),
                    s.pid,
                    s.job,
                    s.start_us - t0,
                    s.dur_us(),
                    s.trace,
                    s.job,
                    s.task
                ),
            );
        }
        for s in &self.open {
            push(
                &mut doc,
                format!(
                    "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{\"trace\":\"{:#018x}\",\"job\":{},\"task\":{},\"open_at_crash\":true}}}}",
                    s.kind.as_str(),
                    s.role.as_str(),
                    s.pid,
                    s.job,
                    s.start_us - t0,
                    s.trace,
                    s.job,
                    s.task
                ),
            );
        }
        doc.push_str("\n]}\n");
        doc
    }

    /// Where one job's wall time went. `None` when the job has no spans.
    pub fn critical_path(&self, job: u64) -> Option<CriticalPath> {
        let job_spans: Vec<&Span> = self.spans.iter().filter(|s| s.job == job).collect();
        let first = job_spans.first()?;
        let trace = first.trace;
        let start_us = job_spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end_us = job_spans.iter().map(|s| s.end_us).max().unwrap_or(start_us);
        let total_us = end_us.saturating_sub(start_us).max(1);
        let slice = |kind: SpanKind, pick: &dyn Fn(&&&Span) -> bool| {
            let mut dur = 0u64;
            let mut count = 0u64;
            for s in job_spans.iter().filter(|s| s.kind == kind).filter(pick) {
                dur += s.dur_us();
                count += 1;
            }
            PhaseSlice {
                kind,
                spans: count,
                dur_us: dur,
                share: dur as f64 / total_us as f64,
            }
        };
        // The dispatcher's job-level chain partitions the job's
        // lifetime; phases that never happened (no relay, no PMI) show
        // zero spans rather than being omitted, so the table's shape is
        // stable across runs.
        let phases: Vec<PhaseSlice> = [
            SpanKind::Submit,
            SpanKind::Queue,
            SpanKind::Sched,
            SpanKind::Ship,
            SpanKind::PmiBarrier,
            SpanKind::Run,
            SpanKind::Report,
        ]
        .into_iter()
        .map(|k| slice(k, &|s| s.task == 0 && s.role == WriterRole::Dispatcher))
        .collect();
        let accounted: u64 = phases.iter().map(|p| p.dur_us).sum();
        // The dominant task is the one whose exec finished last: it is
        // what the gang (and the run span) waited for.
        let dominant_task = job_spans
            .iter()
            .filter(|s| s.kind == SpanKind::Exec)
            .max_by_key(|s| s.end_us)
            .map(|s| s.task);
        let task_phases = dominant_task
            .map(|task| {
                [SpanKind::RelayForward, SpanKind::Stage, SpanKind::Exec]
                    .into_iter()
                    .map(|k| slice(k, &|s| s.task == task))
                    .collect()
            })
            .unwrap_or_default();
        Some(CriticalPath {
            job,
            trace,
            start_us,
            total_us,
            slack_us: total_us.saturating_sub(accounted),
            phases,
            dominant_task,
            task_phases,
        })
    }

    /// Whole-run span accounting plus Eq. (1)-style utilization.
    pub fn stats(&self) -> TraceStats {
        let window_start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let window_end = self
            .spans
            .iter()
            .map(|s| s.end_us)
            .max()
            .unwrap_or(window_start);
        let window_us = window_end.saturating_sub(window_start);
        let worker_lanes = self
            .lanes
            .iter()
            .filter(|l| l.role == WriterRole::Worker)
            .count() as u64;
        let busy_us: u64 = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Exec)
            .map(Span::dur_us)
            .sum();
        // Eq. (1): delivered utilization = busy time over capacity ×
        // wall time, capacity here being one exec slot per worker lane.
        let utilization = if worker_lanes > 0 && window_us > 0 {
            (busy_us as f64 / (worker_lanes as f64 * window_us as f64)).min(1.0)
        } else {
            0.0
        };
        let per_kind = SpanKind::ALL
            .into_iter()
            .map(|kind| {
                let durs: Vec<u64> = self
                    .spans
                    .iter()
                    .filter(|s| s.kind == kind)
                    .map(Span::dur_us)
                    .collect();
                let total: u64 = durs.iter().sum();
                KindStat {
                    kind,
                    count: durs.len() as u64,
                    total_us: total,
                    mean_us: total.checked_div(durs.len() as u64).unwrap_or(0),
                    max_us: durs.into_iter().max().unwrap_or(0),
                }
            })
            .collect();
        TraceStats {
            jobs: self.jobs().len() as u64,
            spans: self.spans.len() as u64,
            open_spans: self.open.len() as u64,
            unmatched_ends: self.unmatched_ends,
            torn: self.lanes.iter().map(|l| l.torn).sum(),
            window_us,
            worker_lanes,
            busy_us,
            utilization,
            per_kind,
        }
    }
}

/// One phase's contribution to a job's wall time.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSlice {
    /// The phase.
    pub kind: SpanKind,
    /// How many spans of this kind contributed (0 = phase never ran,
    /// 2+ = requeues).
    pub spans: u64,
    /// Summed duration.
    pub dur_us: u64,
    /// Fraction of the job's total wall time.
    pub share: f64,
}

/// Where one job's wall time went (`jets trace critical-path`).
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The job.
    pub job: u64,
    /// Its trace id.
    pub trace: u64,
    /// Absolute start of the earliest span.
    pub start_us: u64,
    /// Earliest start → latest end, microseconds (≥ 1).
    pub total_us: u64,
    /// Wall time not covered by any dispatcher job-level phase
    /// (scheduler gaps between spans).
    pub slack_us: u64,
    /// The dispatcher's job-level chain, in lifecycle order.
    pub phases: Vec<PhaseSlice>,
    /// The task whose exec finished last — what the run span waited for.
    pub dominant_task: Option<u64>,
    /// That task's relay-forward / stage / exec slices.
    pub task_phases: Vec<PhaseSlice>,
}

/// Per-kind span totals for one run.
#[derive(Debug, Clone, Copy)]
pub struct KindStat {
    /// The span kind.
    pub kind: SpanKind,
    /// Closed spans of this kind.
    pub count: u64,
    /// Summed duration.
    pub total_us: u64,
    /// Mean duration (0 when none).
    pub mean_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// Whole-run accounting (`jets trace stats`).
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Distinct jobs seen.
    pub jobs: u64,
    /// Closed spans.
    pub spans: u64,
    /// Crash-open spans.
    pub open_spans: u64,
    /// Ends whose start was overwritten.
    pub unmatched_ends: u64,
    /// Torn slots summed across lanes.
    pub torn: u64,
    /// Earliest start → latest end across all closed spans.
    pub window_us: u64,
    /// Lanes recorded by worker processes.
    pub worker_lanes: u64,
    /// Summed exec time.
    pub busy_us: u64,
    /// Eq. (1) delivered utilization: `busy / (worker_lanes × window)`,
    /// clamped to 1.0 (0.0 when either denominator term is empty).
    pub utilization: f64,
    /// Per-kind totals, in lifecycle order.
    pub per_kind: Vec<KindStat>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::events::Event;
    use std::time::Duration;

    fn view(role: WriterRole, pid: u64, epoch_us: u64, events: Vec<Event>) -> FlightView {
        FlightView {
            events,
            torn: 0,
            undecodable: 0,
            overwritten: 0,
            total_recorded: 0,
            epoch_unix_us: epoch_us,
            writer_pid: pid,
            role,
        }
    }

    fn start(
        t_us: u64,
        trace: u64,
        kind: SpanKind,
        role: WriterRole,
        job: u64,
        task: u64,
    ) -> Event {
        Event {
            t: Duration::from_micros(t_us),
            kind: EventKind::SpanStart {
                trace,
                kind,
                role,
                job,
                task,
            },
        }
    }

    fn end(t_us: u64, trace: u64, kind: SpanKind, role: WriterRole, job: u64, task: u64) -> Event {
        Event {
            t: Duration::from_micros(t_us),
            kind: EventKind::SpanEnd {
                trace,
                kind,
                role,
                job,
                task,
            },
        }
    }

    /// A three-lane run: dispatcher chain, relay forward, worker
    /// stage+exec, with distinct lane epochs.
    fn three_lane_model() -> TraceModel {
        use SpanKind::*;
        use WriterRole::*;
        let t = 0x1001;
        let d = view(
            Dispatcher,
            100,
            1_000_000,
            vec![
                start(0, t, Submit, Dispatcher, 7, 0),
                end(10, t, Submit, Dispatcher, 7, 0),
                start(10, t, Queue, Dispatcher, 7, 0),
                end(200, t, Queue, Dispatcher, 7, 0),
                start(200, t, Sched, Dispatcher, 7, 0),
                end(250, t, Sched, Dispatcher, 7, 0),
                start(250, t, Ship, Dispatcher, 7, 0),
                end(300, t, Ship, Dispatcher, 7, 0),
                start(300, t, Run, Dispatcher, 7, 0),
                end(900, t, Run, Dispatcher, 7, 0),
                start(900, t, Report, Dispatcher, 7, 0),
                end(950, t, Report, Dispatcher, 7, 0),
            ],
        );
        let r = view(
            Relay,
            200,
            1_000_100,
            vec![
                start(210, t, RelayForward, Relay, 7, 41),
                end(220, t, RelayForward, Relay, 7, 41),
            ],
        );
        let w = view(
            Worker,
            300,
            1_000_050,
            vec![
                start(300, t, Stage, Worker, 7, 41),
                end(340, t, Stage, Worker, 7, 41),
                start(350, t, Exec, Worker, 7, 41),
                end(800, t, Exec, Worker, 7, 41),
            ],
        );
        TraceModel::from_views(&[d, r, w])
    }

    #[test]
    fn merge_pairs_spans_across_lanes_on_absolute_time() {
        let m = three_lane_model();
        assert_eq!(m.spans.len(), 9);
        assert_eq!(m.open.len(), 0);
        assert_eq!(m.unmatched_ends, 0);
        assert_eq!(m.lanes.len(), 3);
        // Absolute time: lane epoch + event offset.
        let exec = m.spans.iter().find(|s| s.kind == SpanKind::Exec).unwrap();
        assert_eq!(exec.start_us, 1_000_050 + 350);
        assert_eq!(exec.dur_us(), 450);
        assert_eq!(exec.pid, 300);
        // Sorted by start.
        assert!(m.spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        assert_eq!(m.jobs().get(&7), Some(&0x1001));
        assert!(m.job_chain_closed(7));
    }

    #[test]
    fn unmatched_starts_and_ends_are_counted_not_fatal() {
        use SpanKind::*;
        use WriterRole::*;
        let t = 3;
        // An end with no start (start overwritten), and a start with no
        // end (crash): both tolerated.
        let v = view(
            Dispatcher,
            1,
            0,
            vec![
                end(5, t, Queue, Dispatcher, 1, 0),
                start(10, t, Run, Dispatcher, 1, 0),
            ],
        );
        let m = TraceModel::from_views(&[v]);
        assert_eq!(m.spans.len(), 0);
        assert_eq!(m.unmatched_ends, 1);
        assert_eq!(m.open.len(), 1);
        assert_eq!(m.open[0].kind, Run);
        assert!(!m.job_chain_closed(1));
        // Export still renders the open span (as a begin-only event).
        let json = m.perfetto_json();
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("open_at_crash"));
    }

    #[test]
    fn repeated_kinds_pair_fifo() {
        use SpanKind::*;
        use WriterRole::*;
        let t = 9;
        // A requeued job queues twice; FIFO pairing keeps each start
        // with its own end.
        let v = view(
            Dispatcher,
            1,
            0,
            vec![
                start(0, t, Queue, Dispatcher, 2, 0),
                end(10, t, Queue, Dispatcher, 2, 0),
                start(50, t, Queue, Dispatcher, 2, 0),
                end(90, t, Queue, Dispatcher, 2, 0),
            ],
        );
        let m = TraceModel::from_views(&[v]);
        assert_eq!(m.spans.len(), 2);
        assert_eq!(m.spans[0].dur_us(), 10);
        assert_eq!(m.spans[1].dur_us(), 40);
    }

    #[test]
    fn perfetto_json_is_balanced_and_normalized() {
        let m = three_lane_model();
        let json = m.perfetto_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 9);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        // Normalized to the earliest span: the submit span is at ts 0.
        assert!(json.contains(
            "\"name\":\"submit\",\"cat\":\"dispatcher\",\"pid\":100,\"tid\":7,\"ts\":0,"
        ));
        assert!(json.contains("\"name\":\"dispatcher (pid 100)\""));
        assert!(json.contains("\"name\":\"worker (pid 300)\""));
    }

    #[test]
    fn critical_path_accounts_phases_and_dominant_task() {
        let m = three_lane_model();
        let cp = m.critical_path(7).unwrap();
        assert_eq!(cp.trace, 0x1001);
        assert_eq!(cp.total_us, 950);
        let by_kind = |k: SpanKind| cp.phases.iter().find(|p| p.kind == k).copied().unwrap();
        assert_eq!(by_kind(SpanKind::Queue).dur_us, 190);
        assert_eq!(by_kind(SpanKind::Run).dur_us, 600);
        assert_eq!(by_kind(SpanKind::PmiBarrier).spans, 0);
        let share_sum: f64 = cp.phases.iter().map(|p| p.share).sum();
        assert!(share_sum <= 1.0 + 1e-9, "shares sum to {share_sum}");
        assert_eq!(cp.slack_us, 0);
        assert_eq!(cp.dominant_task, Some(41));
        let exec = cp
            .task_phases
            .iter()
            .find(|p| p.kind == SpanKind::Exec)
            .unwrap();
        assert_eq!(exec.dur_us, 450);
        assert!(m.critical_path(999).is_none());
    }

    #[test]
    fn stats_computes_eq1_utilization_over_worker_lanes() {
        use SpanKind::*;
        use WriterRole::*;
        // Two worker lanes, each busy half the 1000 µs window.
        let w1 = view(
            Worker,
            1,
            0,
            vec![
                start(0, 1, Exec, Worker, 1, 1),
                end(500, 1, Exec, Worker, 1, 1),
            ],
        );
        let w2 = view(
            Worker,
            2,
            0,
            vec![
                start(500, 2, Exec, Worker, 2, 2),
                end(1000, 2, Exec, Worker, 2, 2),
            ],
        );
        let m = TraceModel::from_views(&[w1, w2]);
        let st = m.stats();
        assert_eq!(st.window_us, 1000);
        assert_eq!(st.worker_lanes, 2);
        assert_eq!(st.busy_us, 1000);
        assert!((st.utilization - 0.5).abs() < 1e-9);
        assert_eq!(st.jobs, 2);
        let exec = st.per_kind.iter().find(|k| k.kind == Exec).unwrap();
        assert_eq!(exec.count, 2);
        assert_eq!(exec.mean_us, 500);
        assert_eq!(exec.max_us, 500);
    }

    /// End-to-end through the real ring codec: spans written via
    /// `EventLog::file_backed_with_role` survive the file and merge.
    #[test]
    fn flight_file_round_trips_into_the_model() {
        use jets_core::events::EventLog;
        let path = std::env::temp_dir().join(format!(
            "jets-trace-roundtrip-{}-{}.ring",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::file_backed_with_role(&path, 1024, WriterRole::Worker).unwrap();
            log.span_start(42, SpanKind::Stage, WriterRole::Worker, 5, 11);
            log.span_end(42, SpanKind::Stage, WriterRole::Worker, 5, 11);
            log.span_start(42, SpanKind::Exec, WriterRole::Worker, 5, 11);
            // No exec end: simulated crash.
        }
        let m = TraceModel::from_files(&[&path]).unwrap();
        assert_eq!(m.lanes.len(), 1);
        assert_eq!(m.lanes[0].role, WriterRole::Worker);
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].kind, SpanKind::Stage);
        assert_eq!(m.open.len(), 1);
        assert_eq!(m.open[0].kind, SpanKind::Exec);
        let _ = std::fs::remove_file(&path);
    }
}
