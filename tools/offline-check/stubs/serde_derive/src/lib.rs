//! Offline-check stub of serde's derive macros.
//!
//! No syn/quote: a manual token scan finds the type name after the
//! `struct`/`enum` keyword and emits empty marker-trait impls matching
//! the `serde` stub. Good enough for the plain, non-generic types JETS
//! derives on; `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
