//! Offline-check stub of the `serde_json` subset JETS uses
//! (`from_str`, `to_string`, `to_writer`). Signatures match; behavior
//! is inert — serialization yields empty output, deserialization
//! errors. This crate exists only so the real sources type-check.

use std::fmt;

/// Inert error type; `Send + Sync + 'static` so it can feed
/// `io::Error::other`.
pub struct Error(&'static str);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn from_str<'a, T>(_s: &'a str) -> Result<T>
where
    T: serde::Deserialize<'a>,
{
    Err(Error("from_str is stubbed"))
}

pub fn to_string<T>(_value: &T) -> Result<String>
where
    T: serde::Serialize + ?Sized,
{
    Ok(String::new())
}

pub fn to_writer<W, T>(_writer: W, _value: &T) -> Result<()>
where
    W: std::io::Write,
    T: serde::Serialize + ?Sized,
{
    Ok(())
}
