//! Offline-check stub of the `rand` 0.8 subset JETS uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` over integer `Range`s.
//!
//! Backed by splitmix64 — NOT the real StdRng stream. That is fine for
//! a type-check harness; it only has to compile the same call sites.

use std::ops::Range;

/// Types an RNG can produce via [`Rng::gen`].
pub trait Standard: Sized {
    fn from_u64(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn from_u64(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_u64(word: u64) -> Self {
        // 53 mantissa bits -> [0, 1)
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, word: u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, word: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (word % span) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize);

/// The subset of rand's `Rng` trait the workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding entry point, matching rand's associated-function shape.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for rand's `StdRng`: splitmix64 over a 64-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
