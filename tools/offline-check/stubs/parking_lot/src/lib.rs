//! Offline-check stub of the `parking_lot` subset JETS uses.
//!
//! Backed by `std::sync` with poisoning swallowed (parking_lot never
//! poisons). Only the API surface the JETS crates call is provided.

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// Mutex with `parking_lot`'s non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait`] can take the inner std guard
/// out and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with the stub [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.0.take().expect("guard present");
        let reacquired = self
            .0
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(reacquired);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.0.take().expect("guard present");
        let (reacquired, res) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(reacquired);
        WaitTimeoutResult(res.timed_out())
    }

    /// parking_lot returns the number of woken threads; std doesn't track
    /// it, so the stub reports zero.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// RwLock with `parking_lot`'s non-poisoning signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
