//! Offline-check stub of the `bytes::Bytes` subset JETS uses: cheap
//! clones of an immutable byte buffer. Backed by `Arc<Vec<u8>>`.

use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::new(bytes.to_vec()))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0 = Arc::new(Vec::new());
    }

    pub fn truncate(&mut self, len: usize) {
        if len < self.0.len() {
            let mut v = self.0.as_ref().clone();
            v.truncate(len);
            self.0 = Arc::new(v);
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
