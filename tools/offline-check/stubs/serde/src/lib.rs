//! Offline-check stub of serde: empty marker traits with just enough
//! impls that `#[derive(Serialize, Deserialize)]`, trait bounds like
//! `T: Serialize` / `T: DeserializeOwned`, and containers of derived
//! types all type-check. No actual (de)serialization happens — the
//! paired `serde_json` stub returns errors / empty output.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// Concrete impls for the primitive / container shapes that appear in
// derived structs. Deliberately not a blanket `impl<T> Serialize for T`,
// which would conflict with the derive-emitted impls.
macro_rules! leaf {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

leaf!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
);

impl Serialize for str {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for [T] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
