//! Offline-check stub of the `crossbeam` subset JETS uses:
//! `channel::{unbounded, bounded, Sender, Receiver, RecvTimeoutError,
//! SendError}` and `queue::SegQueue`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Unified sender over std's split unbounded/bounded sender types.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// Receiver half; thin wrapper over `mpsc::Receiver`.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC queue; stubbed as a mutex-protected deque.
    pub struct SegQueue<T>(Mutex<VecDeque<T>>);

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue(Mutex::new(VecDeque::new()))
        }

        pub fn push(&self, value: T) {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}
