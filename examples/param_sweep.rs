//! Parameter sweep: the classic stand-alone JETS use case.
//!
//! ```text
//! cargo run --example param_sweep
//! ```
//!
//! Generates a task list sweeping a NAMD-style parameter (temperature ×
//! steps), renders it in the stand-alone input format (`MPI: n @app
//! args...`), submits it, and reports which parameter points produced
//! the lowest potential energy — a miniature of the ensemble studies the
//! paper's Section 1.1 motivates (parameter search / uncertainty
//! quantification).

use jets::core::{Dispatcher, DispatcherConfig, JobStatus};
use jets::namd::io::read_xsc;
use jets::namd::MdConfig;
use jets::sim::{science_registry, Allocation, AllocationConfig};
use jets::worker::Executor;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let nodes = 4;
    let work_dir = std::env::temp_dir().join(format!("jets-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("create work dir");

    // --- Generate the sweep: 3 temperatures × 2 segment lengths, each an
    // MD segment config file plus one task-list line.
    let temperatures = [0.8, 1.1, 1.4];
    let steps = [10u64, 20];
    let mut task_lines = Vec::new();
    let mut points = Vec::new();
    for (ti, &temperature) in temperatures.iter().enumerate() {
        for (si, &numsteps) in steps.iter().enumerate() {
            let tag = format!("t{ti}_s{si}");
            let out_prefix = work_dir.join(&tag);
            let config = MdConfig {
                num_atoms: 48,
                temperature,
                numsteps,
                outputname: out_prefix.to_string_lossy().into_owned(),
                seed: 42 + (ti * 10 + si) as u64,
                ..MdConfig::default()
            };
            let config_path = work_dir.join(format!("{tag}.conf"));
            std::fs::write(&config_path, config.render()).expect("write config");
            // 2-node MPI tasks, exactly the paper's input-file format.
            task_lines.push(format!("MPI: 2 @namd-lite {}", config_path.display()));
            points.push((temperature, numsteps, out_prefix));
        }
    }
    let task_file = task_lines.join("\n");
    println!("task list:\n{task_file}\n");

    // --- Run it.
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).expect("start dispatcher");
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    let ids = dispatcher.submit_input(&task_file).expect("parse tasks");
    assert!(dispatcher.wait_idle(Duration::from_secs(120)), "sweep hung");
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }

    // --- Harvest: read each point's final potential energy.
    println!("  T      steps   potential");
    let mut best: Option<(f64, u64, f64)> = None;
    for (temperature, numsteps, prefix) in &points {
        let xsc = read_xsc(Path::new(&format!("{}.xsc", prefix.display()))).expect("xsc");
        println!("  {temperature:<5}  {numsteps:<5}   {:+.4}", xsc.potential);
        if best.is_none_or(|(_, _, p)| xsc.potential < p) {
            best = Some((*temperature, *numsteps, xsc.potential));
        }
    }
    let (bt, bs, bp) = best.expect("nonempty sweep");
    println!("\nminimum potential {bp:+.4} at T={bt}, steps={bs}");

    dispatcher.shutdown();
    allocation.join_all();
    std::fs::remove_dir_all(&work_dir).ok();
}
