//! Replica-exchange molecular dynamics as a Swift workflow over JETS.
//!
//! ```text
//! cargo run --example rem_workflow
//! ```
//!
//! The paper's flagship application (Sections 3 and 6.2.2): a
//! data-dependent REM campaign expressed in the dataflow language, with
//! every NAMD segment launched as an MPI job through the JETS dispatcher
//! onto pilot-job workers. Segments of different replicas run
//! concurrently and asynchronously; exchanges couple neighbours only.

use jets::core::{Dispatcher, DispatcherConfig};
use jets::namd::io::read_xsc;
use jets::namd::{rem_script, stage_initial_replicas, RemParams};
use jets::sim::{science_registry, Allocation, AllocationConfig};
use jets::swift::{JetsExecutor, RunOptions, Workflow};
use jets::worker::Executor;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let params = RemParams {
        replicas: 4,
        segments: 3,
        nodes: 2,
        ppn: 1,
        atoms: 32,
        steps: 8,
        dir: std::env::temp_dir()
            .join(format!("jets-rem-{}", std::process::id()))
            .to_string_lossy()
            .into_owned(),
        ..RemParams::default()
    };
    println!(
        "REM: {} replicas × {} segments, {}×{} ranks per segment",
        params.replicas, params.segments, params.nodes, params.ppn
    );

    // Stage segment-0 restart files (the workflow's inputs).
    stage_initial_replicas(&params).expect("stage replicas");
    println!("staged initial replicas in {}", params.dir);

    // Infrastructure: dispatcher + simulated allocation.
    let nodes = 8;
    let dispatcher = Arc::new(Dispatcher::start(DispatcherConfig::default()).unwrap());
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );

    // The workflow itself.
    let script = rem_script(&params);
    let workflow = Workflow::parse(&script).expect("script parses");
    let executor = JetsExecutor::new(Arc::clone(&dispatcher), Duration::from_secs(60));
    let options = RunOptions {
        work_dir: Path::new(&params.dir).join("anon"),
        wait_timeout: Duration::from_secs(120),
    };
    let report = workflow.run(Arc::new(executor), options).expect("workflow");
    println!(
        "workflow complete: {} app invocations (expected ≥ {})",
        report.apps_run,
        params.namd_invocations()
    );

    // Show each replica's final-segment energy and temperature.
    println!("\n  replica  T(slot)   final potential  final T(kinetic)");
    for i in 0..params.replicas {
        let k = params.index(i, params.segments);
        let xsc = read_xsc(Path::new(&format!("{}/seg_{k}.xsc", params.dir))).expect("xsc");
        println!(
            "  {:>7}  {:<8.4}  {:>15.4}  {:>16.4}",
            i,
            params.temperature(i),
            xsc.potential,
            xsc.temperature
        );
    }

    dispatcher.shutdown();
    allocation.join_all();
    std::fs::remove_dir_all(&params.dir).ok();
}
