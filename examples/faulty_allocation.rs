//! Fault tolerance: keep a batch running while pilots die.
//!
//! ```text
//! cargo run --example faulty_allocation
//! ```
//!
//! A miniature of the paper's Fig. 10 experiment: a batch of sequential
//! tasks runs on an allocation whose workers are killed one at a time at
//! regular intervals. The dispatcher detects each death by socket EOF,
//! requeues the lost task, and keeps the survivors saturated. The example
//! prints the nodes-available and running-jobs timelines.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{stats, Dispatcher, DispatcherConfig, JobStatus};
use jets::sim::{science_registry, Allocation, AllocationConfig, FaultInjector};
use jets::worker::Executor;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let nodes = 8u32;
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).expect("start dispatcher");
    let allocation = Arc::new(Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    ));
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(10));
    }

    // Enough retries that every job survives repeated worker deaths.
    let jobs: Vec<JobSpec> = (0..96)
        .map(|_| {
            JobSpec::sequential(CommandSpec::builtin("sleep", vec!["400".into()])).with_retries(10)
        })
        .collect();
    let ids = dispatcher.submit_all(jobs);
    println!(
        "submitted {} tasks on {nodes} workers; killing one worker every 300 ms",
        ids.len()
    );

    // Kill one pilot at a time — but stop while a few still live so the
    // batch can finish.
    let injector = FaultInjector::start(Arc::clone(&allocation), Duration::from_millis(300), 42);
    while allocation.live_count() > 3 {
        std::thread::sleep(Duration::from_millis(20));
    }
    let killed = injector.stop();
    println!("killed workers (in order): {killed:?}");

    assert!(dispatcher.wait_idle(Duration::from_secs(120)), "batch hung");
    let records = dispatcher.records();
    let succeeded = records
        .iter()
        .filter(|r| r.status == JobStatus::Succeeded)
        .count();
    assert_eq!(succeeded, records.len(), "some jobs never recovered");
    assert!(killed.len() >= 3, "fault injector fell behind");
    let retried = records.iter().filter(|r| r.attempts > 1).count();
    println!(
        "{succeeded}/{} jobs succeeded; {retried} needed retries",
        records.len()
    );

    // The Fig. 10 timelines.
    let events = dispatcher.events().snapshot();
    let step = Duration::from_millis(200);
    let availability = stats::availability_series(&events, step);
    let load = stats::load_series(&events, step);
    println!("\n  t(ms)  nodes-available  running-jobs");
    for (a, l) in availability.iter().zip(load.iter()) {
        println!(
            "  {:>5}  {:>15}  {:>12}",
            a.t.as_millis(),
            a.alive,
            l.running_tasks
        );
    }

    dispatcher.shutdown();
    allocation.join_all();
}
