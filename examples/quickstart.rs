//! Quickstart: dispatcher + simulated allocation + a mixed batch.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Boots a 8-node simulated allocation, runs a batch mixing sequential
//! tasks and MPI jobs of several shapes (exactly what the stand-alone
//! `jets` tool does from a task file), and prints the per-job records and
//! overall utilization.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{stats, Dispatcher, DispatcherConfig, JobStatus};
use jets::sim::{science_registry, Allocation, AllocationConfig, TimeScale};
use jets::worker::Executor;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let nodes = 8;
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).expect("start dispatcher");
    println!("dispatcher listening on {}", dispatcher.addr());

    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("{nodes} pilot-job workers registered");

    // A batch like the paper's input files: sequential tasks plus MPI
    // jobs of varying node counts and ranks-per-node. "Seconds" are
    // virtual, scaled 100× (see EXPERIMENTS.md).
    let scale = TimeScale::speedup(100.0);
    let sleep_ms = scale.real_ms(10.0).to_string();
    let mut jobs = Vec::new();
    for _ in 0..8 {
        jobs.push(JobSpec::sequential(CommandSpec::builtin(
            "sleep",
            vec![sleep_ms.clone()],
        )));
    }
    for &n in &[2u32, 4, 8] {
        jobs.push(JobSpec::mpi(
            n,
            CommandSpec::builtin("mpi-sleep", vec![sleep_ms.clone()]),
        ));
    }
    jobs.push(JobSpec::mpi_ppn(
        4,
        2,
        CommandSpec::builtin("mpi-sleep", vec![sleep_ms.clone()]),
    ));

    let ids = dispatcher.submit_all(jobs);
    println!("submitted {} jobs", ids.len());
    assert!(dispatcher.wait_idle(Duration::from_secs(60)), "batch hung");

    println!("\n  job  nodes  ppn   status      wall");
    for id in &ids {
        let r = dispatcher.job_record(*id).expect("record");
        println!(
            "  {:>3}  {:>5}  {:>3}   {:<9}  {:?}",
            r.id,
            r.spec.nodes,
            r.spec.ppn,
            format!("{:?}", r.status),
            r.wall.unwrap_or_default()
        );
        assert_eq!(r.status, JobStatus::Succeeded);
    }

    let events = dispatcher.events().snapshot();
    let utilization = stats::measured_utilization(&events, nodes as usize);
    println!(
        "\nmeasured utilization (Eq. 1 over the event log): {:.1}%",
        100.0 * utilization
    );

    dispatcher.shutdown();
    allocation.join_all();
}
