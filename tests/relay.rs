//! End-to-end tests for the relay tier (the PR's acceptance criteria).
//!
//! The centerpiece is the loopback topology the issue prescribes: 16
//! workers behind 2 relays run a multi-gang batch to completion while
//! the dispatcher observes exactly 2 inbound connections, and killing
//! one relay mid-run still converges on the surviving block.

use jets::core::registry::WorkerState;
use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets::sim::{science_registry, RelayedAllocation, RelayedAllocationConfig};
use jets::worker::{Executor, TaskExecutor};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn executor() -> Arc<dyn TaskExecutor> {
    Arc::new(Executor::new(science_registry()))
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// 16 workers / 2 relays / 2 dispatcher connections; a mixed batch of
/// sequential jobs and MPI gangs converges even when one relay is
/// killed mid-run.
#[test]
fn two_relay_topology_survives_relay_death() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_secs(2)),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let topo = RelayedAllocation::start(
        &dispatcher.addr().to_string(),
        RelayedAllocationConfig::new(2, 8)
            .with_heartbeat(Duration::from_millis(50))
            .with_liveness_flush(Duration::from_millis(50)),
        executor(),
    )
    .unwrap();
    wait_until("16 relayed workers", || dispatcher.alive_workers() == 16);

    // The dispatcher fronts 16 workers over exactly 2 sockets.
    assert_eq!(dispatcher.connections_accepted(), 2);
    assert_eq!(dispatcher.relay_count(), 2);
    assert_eq!(topo.total_nodes(), 16);

    // Multi-gang batch: sequential filler plus 2- and 4-wide gangs. The
    // retry budget absorbs every task lost with the killed block (the
    // widest gang still fits the surviving 8-node block).
    let specs: Vec<JobSpec> = (0..60)
        .map(|i| {
            let spec = match i % 6 {
                4 => JobSpec::mpi(2, CommandSpec::builtin("mpi-sleep", vec!["20".into()])),
                5 => JobSpec::mpi(4, CommandSpec::builtin("mpi-sleep", vec!["20".into()])),
                _ => JobSpec::sequential(CommandSpec::builtin("sleep", vec!["20".into()])),
            };
            spec.with_retries(40)
        })
        .collect();
    let ids = dispatcher.submit_all(specs);

    // Let the batch make real progress through both relays, then kill
    // one block's relay abruptly mid-run.
    wait_until("first third of the batch", || {
        ids.iter()
            .filter(|id| {
                dispatcher
                    .job_record(**id)
                    .is_some_and(|r| r.status == JobStatus::Succeeded)
            })
            .count()
            >= 20
    });
    assert!(topo.kill_relay(0));
    wait_until("killed block declared down", || {
        dispatcher.alive_workers() == 8
    });

    assert!(dispatcher.wait_idle(WAIT), "batch never converged");
    for id in &ids {
        let rec = dispatcher.job_record(*id).unwrap();
        assert_eq!(
            rec.status,
            JobStatus::Succeeded,
            "job {id} ended {:?} after {} attempts",
            rec.status,
            rec.attempts
        );
    }

    // The event log saw both relays come up and the killed one go down.
    let events = dispatcher.events().snapshot();
    let relay_ups = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RelayUp { .. }))
        .count();
    let relay_downs = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RelayDown { .. }))
        .count();
    assert_eq!(relay_ups, 2, "expected exactly two relay registrations");
    assert!(relay_downs >= 1, "relay death never recorded");

    dispatcher.shutdown();
    topo.join_all();
}

/// Relayed workers stay alive through the dispatcher's heartbeat
/// monitor on batched liveness frames alone: several timeout windows
/// pass with no direct heartbeats and nobody is declared dead.
#[test]
fn batched_liveness_keeps_relayed_workers_alive() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_millis(400)),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let topo = RelayedAllocation::start(
        &dispatcher.addr().to_string(),
        RelayedAllocationConfig::new(1, 4)
            .with_heartbeat(Duration::from_millis(50))
            .with_liveness_flush(Duration::from_millis(50)),
        executor(),
    )
    .unwrap();
    wait_until("4 relayed workers", || dispatcher.alive_workers() == 4);

    // Ride out several heartbeat-timeout windows.
    std::thread::sleep(Duration::from_millis(1600));
    assert_eq!(
        dispatcher.alive_workers(),
        4,
        "batched liveness failed to vouch for the block"
    );
    let stats = topo.relay(0).unwrap().stats();
    assert!(
        stats.batched_frames > 0,
        "no batched heartbeat frames were sent"
    );
    // And the block still does work.
    let id = dispatcher.submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
    assert!(dispatcher.wait_idle(WAIT));
    assert_eq!(
        dispatcher.job_record(id).unwrap().status,
        JobStatus::Succeeded
    );
    dispatcher.shutdown();
    topo.join_all();
}

/// A worker dying mid-gang gets its same-relay gang peers canceled by
/// the relay itself — the survivors' cancels never round-trip through
/// the dispatcher.
#[test]
fn gang_cancellation_fans_out_at_the_relay() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_secs(2)),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let topo = RelayedAllocation::start(
        &dispatcher.addr().to_string(),
        RelayedAllocationConfig::new(1, 4).with_heartbeat(Duration::from_millis(50)),
        executor(),
    )
    .unwrap();
    wait_until("4 relayed workers", || dispatcher.alive_workers() == 4);

    let id = dispatcher.submit(JobSpec::mpi(
        4,
        CommandSpec::builtin("mpi-sleep", vec!["2000".into()]),
    ));
    let block = topo.block(0).unwrap();
    wait_until("gang to occupy the block", || {
        dispatcher
            .workers()
            .iter()
            .filter(|w| matches!(w.state, WorkerState::Busy(_)))
            .count()
            == 4
    });
    assert!(block.kill(0));

    assert!(dispatcher.wait_idle(WAIT));
    assert_eq!(
        dispatcher.job_record(id).unwrap().status,
        JobStatus::Failed,
        "gang with no retry budget must fail"
    );
    // The relay canceled the three survivors locally.
    wait_until("local cancel fan-out", || {
        topo.relay(0).unwrap().stats().local_cancels >= 3
    });
    dispatcher.shutdown();
    topo.join_all();
}
