//! Seeded chaos harness: ~200 short gangs under a deterministic fault
//! plan of kills and partitions.
//!
//! The run is replayable: the fault plan is generated up front from a
//! fixed seed, and two hand-placed events (one partition, one kill) are
//! appended so the reconnect and permanent-death paths are exercised on
//! every run regardless of what the seeded draw produces. The assertions
//! are the PR's acceptance criteria: every job reaches `Succeeded`
//! within its retry budget, reconnecting workers re-register (more
//! `WorkerUp` events than nodes), and no task outlives the job deadline
//! by more than the cancellation slack.

use jets::core::registry::QuarantinePolicy;
use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets::sim::{
    science_registry, Allocation, AllocationConfig, ChaosInjector, FaultAction, FaultEvent,
    FaultMix, FaultPlan, RelayedAllocation, RelayedAllocationConfig,
};
use jets::worker::{Executor, ReconnectPolicy};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;
const NODES: u32 = 8;
const WAIT: Duration = Duration::from_secs(120);
const DEADLINE: Duration = Duration::from_secs(10);

#[test]
fn seeded_chaos_run_converges() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_secs(2)),
        quarantine: Some(QuarantinePolicy {
            threshold: 1,
            penalty: Duration::from_millis(100),
            decay: Duration::from_secs(60),
            max_penalty: Duration::from_secs(1),
        }),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let mut alloc_config = AllocationConfig::new(NODES).with_reconnect(ReconnectPolicy::default());
    alloc_config.heartbeat = Some(Duration::from_millis(100));
    let allocation = Arc::new(Allocation::start(
        &dispatcher.addr().to_string(),
        alloc_config,
        Arc::new(Executor::new(science_registry())),
    ));
    while dispatcher.alive_workers() < NODES as usize {
        std::thread::sleep(Duration::from_millis(5));
    }

    // ~200 short gangs: 4 sequential tasks then 1 two-node MPI job,
    // repeated. Retry budgets are generous; the assertion is that the
    // budget *suffices*, not that it is barely grazed.
    let specs: Vec<JobSpec> = (0..200)
        .map(|i| {
            let spec = if i % 5 == 4 {
                JobSpec::mpi(2, CommandSpec::builtin("mpi-sleep", vec!["20".into()]))
            } else {
                JobSpec::sequential(CommandSpec::builtin("sleep", vec!["30".into()]))
            };
            spec.with_retries(40).with_deadline(DEADLINE)
        })
        .collect();
    let ids = dispatcher.submit_all(specs);
    assert_eq!(ids.len(), 200);

    // Mostly partitions, at most 2 seeded kills — the pool can never
    // drop below 5 of 8 nodes, so 2-wide MPI gangs always stay
    // placeable. Two hand-placed events after the seeded window make
    // the reconnect and kill paths deterministic whatever the draw.
    let mut plan = FaultPlan::seeded(
        SEED,
        24,
        Duration::from_millis(100),
        FaultMix {
            kill: 1,
            partition: 6,
            calm: 1,
            max_kills: 2,
        },
    );
    plan.events.push(FaultEvent {
        at: Duration::from_millis(2500),
        action: FaultAction::Partition,
        roll: 3,
    });
    plan.events.push(FaultEvent {
        at: Duration::from_millis(2600),
        action: FaultAction::Kill,
        roll: 5,
    });
    let injector = ChaosInjector::start(Arc::clone(&allocation), plan);
    let faults = injector.join();
    assert!(
        faults.iter().any(|(a, _)| *a == FaultAction::Partition),
        "plan must partition at least one live worker"
    );
    let kills = faults
        .iter()
        .filter(|(a, _)| *a == FaultAction::Kill)
        .count();
    assert!(kills <= 3, "kill cap breached: {kills}");

    assert!(dispatcher.wait_idle(WAIT), "chaos run wedged");
    assert_eq!(dispatcher.outstanding(), 0);

    // Every job succeeded within its retry budget.
    for id in &ids {
        let rec = dispatcher.job_record(*id).unwrap();
        assert_eq!(
            rec.status,
            JobStatus::Succeeded,
            "job {id} ended {:?} after {} attempts",
            rec.status,
            rec.attempts
        );
        assert!(
            rec.attempts <= 41,
            "job {id} used {} attempts",
            rec.attempts
        );
    }

    let events = dispatcher.events().snapshot();

    // Partitioned agents reconnected and re-registered: strictly more
    // registrations than the allocation has nodes.
    let ups = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerUp { .. }))
        .count();
    assert!(ups > NODES as usize, "no reconnects observed ({ups} ups)");

    // The metrics surface agrees with the event log: every registration
    // beyond the allocation size was a pilot coming back under a known
    // name, every job reached exactly one terminal completion, and each
    // got a phase breakdown.
    let m = dispatcher.metrics();
    assert_eq!(m.reconnects_total.get(), (ups - NODES as usize) as u64);
    assert_eq!(m.jobs_completed_total.get(), ids.len() as u64);
    assert_eq!(m.jobs_failed_total.get(), 0);
    assert_eq!(m.phase_total.count(), ids.len() as u64);

    // No task outlived its job's deadline by more than the cancel slack
    // (monitor tick + executor grace, padded generously).
    let slack = Duration::from_secs(2);
    let mut started: HashMap<u64, Duration> = HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::TaskStarted { task, .. } => {
                started.insert(task, e.t);
            }
            EventKind::TaskEnded { task, .. } => {
                if let Some(t0) = started.remove(&task) {
                    let ran = e.t.saturating_sub(t0);
                    assert!(
                        ran <= DEADLINE + slack,
                        "task {task} ran {ran:?}, past deadline {DEADLINE:?} + slack"
                    );
                }
            }
            _ => {}
        }
    }
    assert!(started.is_empty(), "tasks with no end event: {started:?}");

    // Attempt accounting reconciles: one JobCompleted per launch
    // attempt, no double finish from monitor/reader races.
    let mut completions: HashMap<u64, u32> = HashMap::new();
    for e in &events {
        if let EventKind::JobCompleted { job, .. } = e.kind {
            *completions.entry(job).or_default() += 1;
        }
    }
    for id in &ids {
        let rec = dispatcher.job_record(*id).unwrap();
        assert_eq!(
            completions.get(id).copied().unwrap_or(0),
            rec.attempts,
            "job {id}: completions != attempts"
        );
    }

    dispatcher.shutdown();
    allocation.join_all();
}

/// Chaos at the relay tier: killing a relay mid-run vaporizes its whole
/// block at once — a coarser fault than any single-node kill — and the
/// batch must still converge on the surviving block.
#[test]
fn relay_death_mid_run_converges() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_secs(2)),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let topo = RelayedAllocation::start(
        &dispatcher.addr().to_string(),
        RelayedAllocationConfig::new(2, 4)
            .with_heartbeat(Duration::from_millis(100))
            .with_liveness_flush(Duration::from_millis(50)),
        Arc::new(Executor::new(science_registry())),
    )
    .unwrap();
    while dispatcher.alive_workers() < 8 {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(dispatcher.connections_accepted(), 2);

    let specs: Vec<JobSpec> = (0..80)
        .map(|i| {
            let spec = if i % 5 == 4 {
                JobSpec::mpi(2, CommandSpec::builtin("mpi-sleep", vec!["20".into()]))
            } else {
                JobSpec::sequential(CommandSpec::builtin("sleep", vec!["30".into()]))
            };
            spec.with_retries(40)
        })
        .collect();
    let ids = dispatcher.submit_all(specs);

    // Kill relay 1 once the batch is well underway: every task in
    // flight on its block dies at once and must be retried elsewhere.
    let succeeded = |ids: &[u64]| {
        ids.iter()
            .filter(|id| {
                dispatcher
                    .job_record(**id)
                    .is_some_and(|r| r.status == JobStatus::Succeeded)
            })
            .count()
    };
    while succeeded(&ids) < 20 {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(topo.kill_relay(1));

    assert!(dispatcher.wait_idle(WAIT), "batch never converged");
    for id in &ids {
        let rec = dispatcher.job_record(*id).unwrap();
        assert_eq!(
            rec.status,
            JobStatus::Succeeded,
            "job {id} ended {:?} after {} attempts",
            rec.status,
            rec.attempts
        );
    }
    let events = dispatcher.events().snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RelayDown { .. })),
        "relay death never recorded"
    );
    dispatcher.shutdown();
    topo.join_all();
}
