//! End-to-end fault tolerance: batches survive pilot-job deaths.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{stats, Dispatcher, DispatcherConfig, JobStatus};
use jets::sim::{science_registry, Allocation, AllocationConfig, FaultInjector};
use jets::worker::Executor;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn boot(nodes: u32) -> (Dispatcher, Arc<Allocation>) {
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let allocation = Arc::new(Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    ));
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(5));
    }
    (dispatcher, allocation)
}

#[test]
fn sequential_batch_survives_fault_injection() {
    let (dispatcher, allocation) = boot(6);
    let _ids = dispatcher.submit_all((0..36).map(|_| {
        JobSpec::sequential(CommandSpec::builtin("sleep", vec!["100".into()])).with_retries(10)
    }));
    let injector = FaultInjector::start(Arc::clone(&allocation), Duration::from_millis(150), 7);
    // Let three workers die, then stop injecting.
    while allocation.live_count() > 3 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let killed = injector.stop();
    assert!(killed.len() >= 3);
    assert!(dispatcher.wait_idle(WAIT), "batch wedged after faults");
    let records = dispatcher.records();
    assert!(records.iter().all(|r| r.status == JobStatus::Succeeded));
    // At least one job must have been retried (a worker died mid-task or
    // post-assignment with very high probability at this kill rate).
    let events = dispatcher.events().snapshot();
    let deaths = events
        .iter()
        .filter(|e| matches!(e.kind, jets::core::EventKind::WorkerDown { .. }))
        .count();
    assert!(deaths >= 3, "expected recorded deaths, got {deaths}");
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn mpi_job_survives_peer_worker_death() {
    let (dispatcher, allocation) = boot(4);
    // Long MPI job across all 4 workers.
    let id = dispatcher.submit(
        JobSpec::mpi(4, CommandSpec::builtin("mpi-sleep", vec!["1500".into()])).with_retries(3),
    );
    // Wait for it to start, then kill one participant.
    std::thread::sleep(Duration::from_millis(300));
    assert!(allocation.kill(0));
    // The job fails on that attempt, gets requeued, and — once the
    // dispatcher is down one worker — can never re-run (needs 4 nodes,
    // only 3 live). Verify it returns to Pending rather than wedging.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let status = dispatcher.job_record(id).unwrap().status;
        if status == JobStatus::Pending && dispatcher.alive_workers() == 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never requeued, status {status:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // A replacement worker arrives; the job must then complete.
    let replacement = jets::worker::Worker::spawn(
        jets::worker::WorkerConfig::new(dispatcher.addr().to_string(), "replacement"),
        Arc::new(Executor::new(science_registry())),
    );
    assert!(dispatcher.wait_idle(WAIT), "job did not recover");
    assert_eq!(
        dispatcher.job_record(id).unwrap().status,
        JobStatus::Succeeded
    );
    dispatcher.shutdown();
    replacement.join();
    allocation.join_all();
}

#[test]
fn availability_series_reflects_deaths() {
    let (dispatcher, allocation) = boot(5);
    // Let at least one sampling interval pass with everyone alive so the
    // series can observe the peak.
    std::thread::sleep(Duration::from_millis(60));
    for i in [0usize, 1, 2] {
        allocation.kill(i);
        std::thread::sleep(Duration::from_millis(60));
    }
    let deadline = std::time::Instant::now() + WAIT;
    while dispatcher.alive_workers() != 2 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    let events = dispatcher.events().snapshot();
    let series = stats::availability_series(&events, Duration::from_millis(20));
    let peak = series.iter().map(|s| s.alive).max().unwrap();
    let last = series.last().unwrap().alive;
    assert_eq!(peak, 5);
    assert_eq!(last, 2);
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn exhausted_retry_budget_fails_exactly_once() {
    // Retry accounting: a job that fails on every attempt burns its
    // budget and ends `Failed` exactly once — one `JobCompleted` per
    // launch attempt, one `JobRequeued` per retry, no double finish
    // from the monitor and reader racing.
    let (dispatcher, allocation) = boot(2);
    let id = dispatcher.submit(
        JobSpec::sequential(CommandSpec::builtin("fail", vec!["7".into()])).with_retries(2),
    );
    assert!(dispatcher.wait_idle(WAIT), "failing job wedged");
    let rec = dispatcher.job_record(id).unwrap();
    assert_eq!(rec.status, JobStatus::Failed);
    assert_eq!(rec.attempts, 3, "max_retries=2 means exactly 3 attempts");
    assert_eq!(rec.exit_codes, vec![7]);
    assert_eq!(dispatcher.outstanding(), 0);
    let events = dispatcher.events().snapshot();
    let completions: Vec<bool> = events
        .iter()
        .filter_map(|e| match e.kind {
            jets::core::EventKind::JobCompleted { job, success, .. } if job == id => Some(success),
            _ => None,
        })
        .collect();
    assert_eq!(completions, vec![false, false, false]);
    let requeues = events
        .iter()
        .filter(|e| matches!(e.kind, jets::core::EventKind::JobRequeued { job } if job == id))
        .count();
    assert_eq!(requeues, 2);
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn partitioned_worker_is_quarantined_then_reused() {
    // A worker that dies mid-gang and reconnects must be benched
    // (quarantined) on re-registration, then released and reused once
    // the penalty expires — the full strike → bench → release cycle.
    use jets::core::registry::QuarantinePolicy;
    use jets::core::EventKind;
    use jets::worker::{ReconnectPolicy, Worker, WorkerConfig};
    let dispatcher = Dispatcher::start(DispatcherConfig {
        quarantine: Some(QuarantinePolicy {
            threshold: 1,
            penalty: Duration::from_millis(300),
            decay: Duration::from_secs(60),
            max_penalty: Duration::from_secs(5),
        }),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let worker = Worker::spawn(
        WorkerConfig {
            heartbeat: Some(Duration::from_millis(100)),
            reconnect: Some(ReconnectPolicy::default()),
            ..WorkerConfig::new(dispatcher.addr().to_string(), "flaky")
        },
        Arc::new(Executor::new(science_registry())),
    );
    let deadline = std::time::Instant::now() + WAIT;
    while dispatcher.alive_workers() != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never registered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let id = dispatcher.submit(
        JobSpec::sequential(CommandSpec::builtin("sleep", vec!["1000".into()])).with_retries(3),
    );
    while dispatcher.job_record(id).unwrap().status != JobStatus::Running {
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Sever the socket mid-task. The dispatcher charges a strike against
    // the worker's name and requeues the job; the agent reconnects.
    worker.disconnect();
    assert!(dispatcher.wait_idle(WAIT), "job never recovered");
    let rec = dispatcher.job_record(id).unwrap();
    assert_eq!(rec.status, JobStatus::Succeeded);
    assert_eq!(rec.attempts, 2, "exactly one retry after the partition");

    let events = dispatcher.events().snapshot();
    let ups: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::WorkerUp { worker } => Some(worker),
            _ => None,
        })
        .collect();
    assert_eq!(ups.len(), 2, "expected the one agent to register twice");
    let benched: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::WorkerQuarantined {
                worker, strikes, ..
            } => {
                assert_eq!(strikes, 1);
                Some(worker)
            }
            _ => None,
        })
        .collect();
    assert_eq!(benched, vec![ups[1]], "the reconnection must be benched");
    // The successful run happened on the *second* registration — the
    // benched worker was released and reused.
    let last_ended = events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            EventKind::TaskEnded {
                worker,
                exit_code: 0,
                ..
            } => Some(worker),
            _ => None,
        })
        .expect("no successful task");
    assert_eq!(last_ended, ups[1]);
    // The fault counters tell the same story through /metrics: one
    // pilot came back under a known name, its job was requeued once,
    // and the bench emptied before the queue drained.
    let m = dispatcher.metrics();
    assert_eq!(m.reconnects_total.get(), 1);
    assert_eq!(m.jobs_requeued_total.get(), 1);
    while m.quarantined_current.get() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "quarantine gauge never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    dispatcher.shutdown();
    worker.kill();
    worker.join();
}

#[test]
fn hung_worker_is_disregarded_and_job_rescued() {
    // Paper Section 5, feature 3: "JETS automatically disregards workers
    // that fail or hang." A worker whose task never finishes (and that
    // sends no heartbeats) must be declared hung by the monitor; its job
    // requeues onto a healthy worker.
    use jets::worker::{Executor, TaskContext, Worker, WorkerConfig};
    let dispatcher = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_millis(400)),
        ..DispatcherConfig::default()
    })
    .unwrap();

    // The hanging worker: its registry has a "tarpit" app that sleeps
    // forever; no heartbeats.
    let tarpit_registry = jets::worker::apps::standard_registry();
    tarpit_registry.register("tarpit", |_ctx: &TaskContext| {
        std::thread::sleep(Duration::from_secs(3600));
        0
    });
    let hung = Worker::spawn(
        WorkerConfig::new(dispatcher.addr().to_string(), "tarpit"),
        Arc::new(Executor::new(tarpit_registry.clone())),
    );
    // Wait for the hung worker to register before submitting, so it is
    // guaranteed to be the one that takes the job.
    let deadline = std::time::Instant::now() + WAIT;
    while dispatcher.alive_workers() != 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never registered"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let id = dispatcher
        .submit(JobSpec::sequential(CommandSpec::builtin("tarpit", vec![])).with_retries(2));
    // The job must start on the tarpit worker...
    while dispatcher.job_record(id).unwrap().status != JobStatus::Running {
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...and the monitor must then declare that worker hung.
    while dispatcher.alive_workers() != 0 {
        assert!(std::time::Instant::now() < deadline, "hang never detected");
        std::thread::sleep(Duration::from_millis(20));
    }
    // A healthy worker arrives whose "tarpit" finishes instantly.
    let quick_registry = jets::worker::apps::standard_registry();
    quick_registry.register("tarpit", |_ctx: &TaskContext| 0);
    let healthy = Worker::spawn(
        WorkerConfig {
            heartbeat: Some(Duration::from_millis(100)),
            ..WorkerConfig::new(dispatcher.addr().to_string(), "healthy")
        },
        Arc::new(Executor::new(quick_registry)),
    );
    assert!(dispatcher.wait_idle(WAIT), "rescued job never completed");
    assert_eq!(
        dispatcher.job_record(id).unwrap().status,
        JobStatus::Succeeded
    );
    dispatcher.shutdown();
    hung.kill();
    hung.join();
    healthy.join();
}
