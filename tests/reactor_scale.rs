//! Tier-1 acceptance for the event-driven connection core: with 512
//! live worker connections, the dispatcher's OS thread count stays
//! O(event loops), not O(connections). Under the old design every
//! connection cost a blocking reader thread plus a writer thread, so
//! this workload would have added ~1024 threads; the reactor multiplexes
//! all of it onto the fixed event-loop pool.
//!
//! Linux-only: the thread census reads `/proc/self/status`.
#![cfg(target_os = "linux")]

use jets::core::protocol::{read_msg, write_msg, DispatcherMsg, WorkerMsg};
use jets::core::{Dispatcher, DispatcherConfig};
use std::io::BufReader;
use std::net::TcpStream;

/// Connections held open simultaneously (the issue's floor).
const CONNS: usize = 512;

/// Thread-count slack: the monitor, the metrics responder, the test
/// harness's own threads. Far below one-per-connection either way.
const SLACK: usize = 32;

/// `Threads:` from `/proc/self/status` — every thread in this process.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

#[test]
fn thread_bill_is_o_event_loops_at_512_connections() {
    let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let addr = d.addr().to_string();
    // Snapshot after start: the event loops and monitor are running, so
    // any growth from here on is attributable to connections.
    let before = thread_count();

    // 512 raw workers, registered sequentially over blocking sockets
    // and held open. No client-side threads: the register ack proves
    // the dispatcher processed each handshake.
    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let sock = TcpStream::connect(&addr).unwrap();
        let mut writer = sock.try_clone().unwrap();
        let mut reader = BufReader::new(sock);
        write_msg(
            &mut writer,
            &WorkerMsg::Register {
                name: format!("scale-{i}"),
                cores: 1,
                location: "scale".to_string(),
            },
        )
        .unwrap();
        let ack: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
        assert!(
            matches!(ack, Some(DispatcherMsg::Registered { .. })),
            "connection {i}: expected Registered ack, got {ack:?}"
        );
        conns.push((reader, writer));
    }

    assert_eq!(d.alive_workers(), CONNS, "all raw workers registered");
    let after = thread_count();
    let grown = after.saturating_sub(before);
    assert!(
        grown < SLACK,
        "thread count grew by {grown} across {CONNS} connections \
         (before={before}, after={after}); the reactor should hold it O(event loops)"
    );
    assert!(
        d.reactor_event_loops() < SLACK,
        "event-loop pool itself should be small"
    );

    d.shutdown();
    drop(conns);
}
