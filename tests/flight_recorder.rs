//! Tier-1 loopback: the flight recorder end to end — a file-backed
//! event ring under a real batch, its metrics bridge, offline replay
//! after a kill cross-checked against the write-ahead journal, and the
//! worker agent's own producer path.
//!
//! The ring's internal protocol (seqlock stamps, wraparound, torn-slot
//! accounting, literal `kill -9` of a writer process) is tortured in
//! `crates/jets-ring/tests/torture.rs`; this suite exercises the
//! *system*: dispatcher and worker producers recording real lifecycle
//! events, readers observing them live, and the file surviving an
//! abrupt death with counts a crash investigator can reconcile.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{
    journal, read_flight, Dispatcher, DispatcherConfig, EventKind, FlightView, JobStatus,
};
use jets::sim::{science_registry, Allocation, AllocationConfig};
use jets::worker::{Executor, Worker, WorkerConfig};
use jets_cli::prom::Scrape;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn temp_path(name: &str, ext: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("jets-flight-{name}-{}.{ext}", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn boot(config: DispatcherConfig, nodes: u32) -> (Dispatcher, Allocation) {
    let dispatcher = Dispatcher::start(config).unwrap();
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(5));
    }
    (dispatcher, allocation)
}

fn count(view: &FlightView, pred: impl Fn(&EventKind) -> bool) -> usize {
    view.events.iter().filter(|e| pred(&e.kind)).count()
}

#[test]
fn file_backed_batch_replays_clean_and_feeds_metrics() {
    const WORKERS: u32 = 8;
    const JOBS: usize = 40;
    let flight = temp_path("clean", "ring");
    let (dispatcher, allocation) = boot(
        DispatcherConfig {
            flight_recorder: Some(flight.clone()),
            ..DispatcherConfig::default()
        },
        WORKERS,
    );
    let metrics_addr = dispatcher.serve_metrics("127.0.0.1:0").unwrap().to_string();
    // A cursor seated before any job exists sees the whole story.
    let mut cursor = dispatcher.events().reader();

    let ids = dispatcher.submit_all(
        (0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["2".into()]))),
    );
    assert!(dispatcher.wait_idle(WAIT));
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }

    // The log tells the batch's story with conservation intact.
    let log = dispatcher.events();
    let events = log.snapshot();
    let of = |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(of(&|k| matches!(k, EventKind::JobSubmitted { .. })), JOBS);
    assert_eq!(
        of(&|k| matches!(k, EventKind::JobCompleted { success: true, .. })),
        JOBS
    );
    assert_eq!(of(&|k| matches!(k, EventKind::JobPhases { .. })), JOBS);
    assert_eq!(
        of(&|k| matches!(k, EventKind::TaskStarted { .. })),
        of(&|k| matches!(k, EventKind::TaskEnded { .. }))
    );
    assert_eq!(
        of(&|k| matches!(k, EventKind::WorkerUp { .. })),
        WORKERS as usize
    );
    // Nothing was overwritten at this scale, so the independent cursor
    // drains to exactly the same count, without ever being lapped.
    let mut polled = 0usize;
    while cursor.poll().is_some() {
        polled += 1;
    }
    assert_eq!(polled, log.len());
    assert_eq!(cursor.lapped(), 0);
    assert_eq!(cursor.decode_errors(), 0);

    // The Prometheus surface is a ring reader too: the monitor bridges
    // the claim cursor into `jets_events_*` without touching `record`.
    let deadline = Instant::now() + WAIT;
    let scrape = loop {
        let text = jets::obs::scrape(&metrics_addr, "/metrics").expect("scrape /metrics");
        let scrape = Scrape::parse(&text);
        if scrape.value("jets_events_recorded_total") == Some(log.len() as f64)
            || Instant::now() >= deadline
        {
            break scrape;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        scrape.value("jets_events_recorded_total"),
        Some(log.len() as f64)
    );
    assert_eq!(
        scrape.value("jets_events_capacity"),
        Some(log.capacity() as f64)
    );
    assert_eq!(
        scrape.value("jets_events_retained"),
        Some(log.len() as f64),
        "below capacity, retained == recorded"
    );

    dispatcher.shutdown();
    drop(allocation);
    drop(dispatcher);

    // Shutdown records the workers' sign-offs from connection-teardown
    // threads; wait for the log to go quiet before freezing the truth.
    let deadline = Instant::now() + WAIT;
    let mut last = log.len();
    let mut stable_since = Instant::now();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        if log.len() != last {
            last = log.len();
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(300) {
            break;
        }
    }
    let final_events = log.snapshot();

    // Offline replay of the file equals the live snapshot.
    let view = read_flight(&flight).expect("replay flight file");
    assert_eq!(view.events.len(), final_events.len());
    assert_eq!(view.total_recorded, final_events.len() as u64);
    assert_eq!((view.torn, view.undecodable, view.overwritten), (0, 0, 0));
    assert!(view.epoch_unix_us > 0, "epoch anchors offline timestamps");
    assert_eq!(
        count(&view, |k| matches!(k, EventKind::JobPhases { .. })),
        JOBS
    );
    std::fs::remove_file(&flight).ok();
}

#[test]
fn killed_dispatcher_flight_file_reconciles_with_the_journal() {
    const WORKERS: u32 = 8;
    const JOBS: usize = 120;
    let flight = temp_path("kill", "ring");
    let wal = temp_path("kill", "wal");
    let (dispatcher, allocation) = boot(
        DispatcherConfig {
            flight_recorder: Some(flight.clone()),
            journal: Some(wal.clone()),
            ..DispatcherConfig::default()
        },
        WORKERS,
    );
    let ids = dispatcher.submit_all(
        (0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["2".into()]))),
    );

    // Kill mid-batch: some jobs done, some queued, a full allocation of
    // gangs in flight. No sync, no goodbye — the crash case.
    let deadline = Instant::now() + WAIT;
    loop {
        let done = ids
            .iter()
            .filter(|id| {
                dispatcher
                    .job_record(**id)
                    .map(|r| r.status == JobStatus::Succeeded)
                    .unwrap_or(false)
            })
            .count();
        if done >= JOBS / 3 {
            break;
        }
        assert!(Instant::now() < deadline, "batch never reached kill point");
        std::thread::sleep(Duration::from_millis(5));
    }
    dispatcher.kill();
    drop(allocation);
    // Give connection threads holding the last Arc clones a beat to
    // finish any record already in flight.
    std::thread::sleep(Duration::from_millis(300));

    // The journal is the ground truth of terminal jobs; the flight
    // ring must agree. The two records of one completion are adjacent
    // but not atomic, so the kill can split at most a gang's worth.
    let summary = journal::scan(&wal).expect("scan journal");
    let finished = journal::recover(&summary.records).finished as i64;
    let view = read_flight(&flight).expect("replay flight file");
    assert_eq!(view.overwritten, 0, "well below capacity");
    assert!(
        view.torn <= 4,
        "torn {} exceeds in-flight writers",
        view.torn
    );
    assert_eq!(view.undecodable, 0);
    let completed = count(&view, |k| matches!(k, EventKind::JobCompleted { .. })) as i64;
    assert!(
        (completed - finished).abs() <= WORKERS as i64,
        "flight ring saw {completed} completions, journal finished {finished}"
    );
    assert!(
        completed >= (JOBS / 3 - WORKERS as usize) as i64,
        "kill point reached first (completed {completed})"
    );
    // Accounting identity: every claimed slot is exactly one of
    // retained, torn, or overwritten.
    assert_eq!(
        view.total_recorded,
        view.events.len() as u64 + view.undecodable + view.torn + view.overwritten
    );
    std::fs::remove_file(&flight).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn worker_agent_records_its_own_lifecycle() {
    const JOBS: usize = 5;
    let flight = temp_path("agent", "ring");
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let config =
        WorkerConfig::new(dispatcher.addr().to_string(), "flight-w0").with_flight_recorder(&flight);
    let worker = Worker::spawn(config, Arc::new(Executor::new(science_registry())));
    assert!(worker.events().is_some(), "flight file must open");
    while dispatcher.alive_workers() < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let ids = dispatcher.submit_all(
        (0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["1".into()]))),
    );
    assert!(dispatcher.wait_idle(WAIT));
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }
    dispatcher.shutdown();
    let exit = worker.join();
    assert_eq!(exit.tasks_done, JOBS as u64);
    drop(dispatcher);

    // The agent's ring tells its side: one registration, every task
    // started and ended with exit 0, one sign-off at shutdown.
    let view = read_flight(&flight).expect("replay worker flight file");
    assert_eq!(count(&view, |k| matches!(k, EventKind::WorkerUp { .. })), 1);
    assert_eq!(
        count(&view, |k| matches!(k, EventKind::WorkerDown { .. })),
        1
    );
    assert_eq!(
        count(&view, |k| matches!(k, EventKind::TaskStarted { .. })),
        JOBS
    );
    assert_eq!(
        count(&view, |k| matches!(
            k,
            EventKind::TaskEnded { exit_code: 0, .. }
        )),
        JOBS
    );
    std::fs::remove_file(&flight).ok();
}
