//! End-to-end: the stand-alone batch path over a simulated allocation.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{stats, Dispatcher, DispatcherConfig, JobStatus, QueuePolicy};
use jets::sim::{science_registry, Allocation, AllocationConfig, TimeScale};
use jets::worker::Executor;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn boot(nodes: u32) -> (Dispatcher, Allocation) {
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(5));
    }
    (dispatcher, allocation)
}

#[test]
fn input_file_batch_runs_to_completion() {
    let (dispatcher, allocation) = boot(4);
    let input = "\
# mixed batch, the paper's stand-alone format
@noop
@sleep 20
MPI: 2 @mpi-sleep 20
MPI: 4 @mpi-sleep 10
MPI: 2 ppn=2 @mpi-sleep 10
";
    let ids = dispatcher.submit_input(input).unwrap();
    assert_eq!(ids.len(), 5);
    assert!(dispatcher.wait_idle(WAIT));
    for id in ids {
        let r = dispatcher.job_record(id).unwrap();
        assert_eq!(r.status, JobStatus::Succeeded, "job {id}: {r:?}");
    }
    dispatcher.shutdown();
    let exits = allocation.join_all();
    let tasks: u64 = exits.iter().map(|e| e.tasks_done).sum();
    // 1 + 1 + 2 + 4 + 2 proxy/sequential tasks.
    assert_eq!(tasks, 10);
}

#[test]
fn event_log_yields_sane_utilization() {
    let (dispatcher, allocation) = boot(4);
    let scale = TimeScale::speedup(100.0);
    let jobs = jets::sim::workload::sleep_batch(16, 5.0, scale);
    dispatcher.submit_all(jobs);
    assert!(dispatcher.wait_idle(WAIT));
    let events = dispatcher.events().snapshot();
    let utilization = stats::measured_utilization(&events, 4);
    assert!(
        utilization > 0.5 && utilization <= 1.0,
        "utilization {utilization}"
    );
    let walls = stats::task_wall_times(&events);
    assert_eq!(walls.len(), 16);
    // Every task took at least its nominal 50 ms.
    assert!(walls.iter().all(|&w| w >= 0.045), "walls: {walls:?}");
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn mixed_sizes_complete_under_both_queue_policies() {
    for policy in [QueuePolicy::Fifo, QueuePolicy::PriorityBackfill] {
        let dispatcher = Dispatcher::start(DispatcherConfig {
            queue_policy: policy,
            ..DispatcherConfig::default()
        })
        .unwrap();
        let allocation = Allocation::start(
            &dispatcher.addr().to_string(),
            AllocationConfig::new(6),
            Arc::new(Executor::new(science_registry())),
        );
        let mut jobs = Vec::new();
        for &n in &[1u32, 2, 4, 6, 3, 1, 5, 2] {
            jobs.push(JobSpec::mpi(
                n,
                CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
            ));
        }
        let ids = dispatcher.submit_all(jobs);
        assert!(dispatcher.wait_idle(WAIT), "policy {policy:?} hung");
        for id in ids {
            assert_eq!(
                dispatcher.job_record(id).unwrap().status,
                JobStatus::Succeeded,
                "policy {policy:?}"
            );
        }
        dispatcher.shutdown();
        allocation.join_all();
    }
}

#[test]
fn oversized_job_fails_gracefully_on_timeout() {
    let (dispatcher, allocation) = boot(2);
    // A 4-node job can never run on 2 workers; it must stay pending, not
    // wedge the dispatcher.
    let id = dispatcher.submit(JobSpec::mpi(
        4,
        CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
    ));
    assert!(!dispatcher.wait_idle(Duration::from_millis(200)));
    assert_eq!(
        dispatcher.job_record(id).unwrap().status,
        JobStatus::Pending
    );
    // Smaller jobs submitted later still cannot pass it under FIFO...
    let small = dispatcher.submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
    assert!(!dispatcher.wait_idle(Duration::from_millis(200)));
    assert_eq!(
        dispatcher.job_record(small).unwrap().status,
        JobStatus::Pending
    );
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn backfill_lets_small_jobs_pass_blocked_head() {
    let dispatcher = Dispatcher::start(DispatcherConfig {
        queue_policy: QueuePolicy::PriorityBackfill,
        ..DispatcherConfig::default()
    })
    .unwrap();
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(2),
        Arc::new(Executor::new(science_registry())),
    );
    while dispatcher.alive_workers() < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let blocked = dispatcher.submit(JobSpec::mpi(
        4,
        CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
    ));
    let small = dispatcher.submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
    let deadline = std::time::Instant::now() + WAIT;
    while dispatcher.job_record(small).unwrap().status != JobStatus::Succeeded {
        assert!(std::time::Instant::now() < deadline, "backfill never ran");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        dispatcher.job_record(blocked).unwrap().status,
        JobStatus::Pending
    );
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn stdout_routes_from_task_to_record_and_file() {
    // The paper's output path (Section 6.1.6): application stdout flows
    // through the proxy and dispatcher "and then into a file".
    let stdout_dir = std::env::temp_dir().join(format!("jets-stdout-{}", std::process::id()));
    std::fs::remove_dir_all(&stdout_dir).ok();
    let dispatcher = Dispatcher::start(DispatcherConfig {
        stdout_dir: Some(stdout_dir.clone()),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let worker = jets::worker::Worker::spawn(
        jets::worker::WorkerConfig::new(dispatcher.addr().to_string(), "echoer"),
        Arc::new(jets::worker::Executor::default()),
    );
    let id = dispatcher.submit(JobSpec::sequential(CommandSpec::exec(
        "echo",
        vec!["ETITLE:".into(), "TS".into(), "BOND".into()],
    )));
    assert!(dispatcher.wait_idle(WAIT));
    let record = dispatcher.job_record(id).unwrap();
    assert_eq!(record.status, JobStatus::Succeeded);
    assert_eq!(record.outputs, vec!["ETITLE: TS BOND\n".to_string()]);
    // ...and the file landed.
    let files: Vec<_> = std::fs::read_dir(&stdout_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1);
    assert_eq!(
        std::fs::read_to_string(&files[0]).unwrap(),
        "ETITLE: TS BOND\n"
    );
    dispatcher.shutdown();
    worker.join();
    std::fs::remove_dir_all(&stdout_dir).ok();
}

#[test]
fn per_job_outputs_stay_separate() {
    // Outputs are keyed by job: two concurrent echo jobs must not mix
    // their captured text in the records.
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let worker = jets::worker::Worker::spawn(
        jets::worker::WorkerConfig::new(dispatcher.addr().to_string(), "echoer2"),
        Arc::new(jets::worker::Executor::default()),
    );
    let a = dispatcher.submit(JobSpec::sequential(CommandSpec::exec(
        "echo",
        vec!["alpha".into()],
    )));
    let b = dispatcher.submit(JobSpec::sequential(CommandSpec::exec(
        "echo",
        vec!["beta".into()],
    )));
    assert!(dispatcher.wait_idle(WAIT));
    assert_eq!(
        dispatcher.job_record(a).unwrap().outputs,
        vec!["alpha\n".to_string()]
    );
    assert_eq!(
        dispatcher.job_record(b).unwrap().outputs,
        vec!["beta\n".to_string()]
    );
    dispatcher.shutdown();
    worker.join();
}
