//! Dispatcher crash recovery: `kill -9` mid-run, restart from the
//! write-ahead journal, converge with no lost and no duplicated jobs.
//!
//! The scenario the journal exists for: a dispatcher driving a large
//! batch dies abruptly — no goodbye frames, no clean close marker —
//! while hundreds of jobs sit queued and a full allocation of gangs is
//! mid-flight. A successor started with the same journal path must
//! rebuild the queue, let surviving workers claim their in-flight
//! tasks ([`jets::core::WorkerMsg::SessionState`]), re-adopt the
//! claimed gangs instead of relaunching them, and finish every job
//! exactly once.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{journal, Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets::worker::{Executor, ReconnectPolicy, Worker, WorkerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn journal_path(name: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("jets-recovery-{name}-{}.wal", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// Restart on the address the killed dispatcher held, so reconnecting
/// agents (whose dial string never changes) find the successor. The
/// OS may briefly hold the port after the predecessor's listener
/// drops; retry until the bind sticks.
fn restart_on(addr: &str, config: &DispatcherConfig) -> Dispatcher {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Dispatcher::start(DispatcherConfig {
            bind_addr: addr.to_string(),
            ..config.clone()
        }) {
            Ok(d) => return d,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not rebind dispatcher on {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn killed_dispatcher_converges_with_no_lost_or_duplicated_jobs() {
    const GANGS: usize = 16; // running when the crash hits
    const QUEUED: usize = 200; // still waiting in the queue
    let path = journal_path("converge");
    let config = DispatcherConfig {
        journal: Some(path.clone()),
        // Give slow reconnectors room; the window closes early once
        // every orphaned gang is claimed, so the common case never
        // waits this long.
        reconcile_window: Duration::from_secs(10),
        ..DispatcherConfig::default()
    };
    let d = Dispatcher::start(config.clone()).unwrap();
    let addr = d.addr().to_string();

    // A full allocation of reconnecting pilots, one core each.
    let registry = jets::worker::apps::standard_registry();
    let workers: Vec<Worker> = (0..GANGS)
        .map(|i| {
            Worker::spawn(
                WorkerConfig::new(addr.clone(), format!("pilot-{i}"))
                    .with_reconnect(ReconnectPolicy::default()),
                Arc::new(Executor::new(registry.clone())),
            )
        })
        .collect();
    let deadline = Instant::now() + WAIT;
    while d.alive_workers() < GANGS {
        assert!(Instant::now() < deadline, "workers never registered");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Occupy every worker with a long task, then stack the queue.
    let long_ids = d.submit_all((0..GANGS).map(|_| {
        JobSpec::sequential(CommandSpec::builtin("sleep", vec!["3000".into()])).with_retries(3)
    }));
    while d
        .records()
        .iter()
        .filter(|r| r.status == JobStatus::Running)
        .count()
        < GANGS
    {
        assert!(Instant::now() < deadline, "gangs never launched");
        std::thread::sleep(Duration::from_millis(5));
    }
    let quick_ids = d.submit_all((0..QUEUED).map(|_| {
        JobSpec::sequential(CommandSpec::builtin("sleep", vec!["1".into()])).with_retries(3)
    }));
    let total = (GANGS + QUEUED) as u64;

    // Crash. No shutdown frames reach the workers; their tasks keep
    // running and their agents begin reconnect backoff.
    d.kill();

    // The successor replays the journal before accepting a single
    // connection: every non-terminal job is back, scheduling is paused
    // until the in-flight gangs are claimed or the window expires.
    let d2 = restart_on(&addr, &config);
    let m = d2.metrics();
    assert_eq!(m.journal_replayed_jobs.get(), total as i64);
    // The window is open until the surviving workers reconnect and
    // claim — unless every claim already landed in the instants since
    // the bind (possible under extreme scheduling, never the norm).
    assert!(
        d2.recovering() || m.gangs_readopted_total.get() == GANGS as u64,
        "reconciliation window must open"
    );

    assert!(d2.wait_idle(WAIT), "recovered batch wedged");
    for id in long_ids.iter().chain(quick_ids.iter()) {
        assert_eq!(
            d2.job_record(*id).unwrap().status,
            JobStatus::Succeeded,
            "job {id} not terminal after recovery"
        );
    }
    // Exactly once each: every job completed on the successor, and no
    // adopted gang was also relaunched (a duplicate launch would show
    // up as a requeue of a job that still finished).
    assert_eq!(m.jobs_completed_total.get(), total);
    assert_eq!(m.jobs_requeued_total.get(), 0, "duplicate gang launch");
    // Every mid-flight gang survived the crash and was re-adopted.
    assert_eq!(m.gangs_readopted_total.get(), GANGS as u64);
    let readopted = d2
        .events()
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GangReadopted { .. }))
        .count();
    assert_eq!(readopted, GANGS);
    assert_eq!(m.journal_errors_total.get(), 0);

    d2.shutdown();
    for w in workers {
        w.join();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_tolerates_a_torn_final_record() {
    // A crash can land mid-append: the tail of the journal holds a
    // frame header with no payload, or a payload whose CRC never got
    // its final bytes. Replay must keep the valid prefix and drop the
    // tail — silently, because this is the expected crash artifact.
    let path = journal_path("torn");
    let config = DispatcherConfig {
        journal: Some(path.clone()),
        ..DispatcherConfig::default()
    };
    let d = Dispatcher::start(config.clone()).unwrap();
    let ids = d.submit_all(
        (0..5).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![])).with_retries(1)),
    );
    d.kill();

    // Tear the tail: a partial frame header, as if the process died
    // inside `write(2)`.
    let intact = std::fs::metadata(&path).unwrap().len();
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0x2a, 0x00, 0x00]).unwrap();
    }
    let summary = journal::scan(&path).unwrap();
    assert_eq!(summary.dropped_bytes(), 3, "torn bytes must be dropped");
    assert_eq!(summary.valid_len, intact);

    // The successor replays the intact prefix and finishes the batch.
    let d2 = Dispatcher::start(config).unwrap();
    assert_eq!(d2.outstanding(), 5);
    assert_eq!(d2.metrics().journal_replayed_jobs.get(), 5);
    let w = Worker::spawn(
        WorkerConfig::new(d2.addr().to_string(), "sweeper"),
        Arc::new(Executor::new(jets::worker::apps::standard_registry())),
    );
    assert!(d2.wait_idle(WAIT), "torn-tail recovery wedged");
    for id in ids {
        assert_eq!(d2.job_record(id).unwrap().status, JobStatus::Succeeded);
    }
    assert_eq!(d2.metrics().jobs_completed_total.get(), 5);
    d2.shutdown();
    w.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn scripted_chaos_covers_a_dispatcher_crash() {
    // The same crash, driven through the chaos harness: a scripted
    // plan kills the dispatcher mid-run and restarts it from the
    // journal via `DispatcherHooks`, proving the fault primitives
    // compose with the existing worker-fault machinery.
    use jets::sim::{
        ChaosInjector, DispatcherHooks, FaultAction, FaultEvent, FaultPlan, DISPATCHER_TARGET,
    };
    use std::sync::Mutex;

    let path = journal_path("chaos");
    let config = DispatcherConfig {
        journal: Some(path.clone()),
        reconcile_window: Duration::from_secs(10),
        ..DispatcherConfig::default()
    };
    let d = Dispatcher::start(config.clone()).unwrap();
    let addr = d.addr().to_string();
    let registry = jets::worker::apps::standard_registry();
    let workers: Vec<Worker> = (0..4)
        .map(|i| {
            Worker::spawn(
                WorkerConfig::new(addr.clone(), format!("chaos-pilot-{i}"))
                    .with_reconnect(ReconnectPolicy::default()),
                Arc::new(Executor::new(registry.clone())),
            )
        })
        .collect();
    let deadline = Instant::now() + WAIT;
    while d.alive_workers() < 4 {
        assert!(Instant::now() < deadline, "workers never registered");
        std::thread::sleep(Duration::from_millis(5));
    }
    let ids = d.submit_all((0..24).map(|_| {
        JobSpec::sequential(CommandSpec::builtin("sleep", vec!["200".into()])).with_retries(3)
    }));

    // The chaos thread needs somewhere to park the dispatcher between
    // the kill and the restart; the harness slot is that place.
    let slot: Arc<Mutex<Option<Dispatcher>>> = Arc::new(Mutex::new(Some(d)));
    let (kill_slot, restart_slot) = (Arc::clone(&slot), Arc::clone(&slot));
    let (restart_addr, restart_cfg) = (addr.clone(), config.clone());
    let hooks = DispatcherHooks {
        kill: Box::new(move || {
            if let Some(d) = kill_slot.lock().unwrap().take() {
                d.kill();
            }
        }),
        restart: Box::new(move || {
            let d2 = restart_on(&restart_addr, &restart_cfg);
            *restart_slot.lock().unwrap() = Some(d2);
        }),
    };
    let plan = FaultPlan::scripted(vec![
        FaultEvent {
            at: Duration::from_millis(150),
            action: FaultAction::KillDispatcher,
            roll: 0,
        },
        FaultEvent {
            at: Duration::from_millis(200),
            action: FaultAction::RestartDispatcher,
            roll: 0,
        },
    ]);
    // No worker faults in this plan, so the allocation handle is an
    // empty stand-in; the dispatcher hooks do all the damage.
    let alloc = Arc::new(jets::sim::Allocation::start(
        "127.0.0.1:1",
        jets::sim::AllocationConfig::new(0),
        Arc::new(Executor::new(registry.clone())),
    ));
    let applied = ChaosInjector::start_with_dispatcher(alloc, plan, hooks).join();
    assert_eq!(
        applied,
        vec![
            (FaultAction::KillDispatcher, DISPATCHER_TARGET),
            (FaultAction::RestartDispatcher, DISPATCHER_TARGET),
        ]
    );

    let d2 = slot.lock().unwrap().take().expect("restarted dispatcher");
    assert!(d2.wait_idle(WAIT), "post-chaos batch wedged");
    for id in ids {
        assert_eq!(d2.job_record(id).unwrap().status, JobStatus::Succeeded);
    }
    assert_eq!(d2.metrics().jobs_requeued_total.get(), 0);
    d2.shutdown();
    for w in workers {
        w.join();
    }
    std::fs::remove_file(&path).ok();
}
