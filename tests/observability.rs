//! Tier-1 loopback: the full observability path over a simulated
//! allocation — dispatcher metrics served over HTTP, scraped mid-run
//! with the same parser `jets top` uses, and checked for sanity.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{metrics::JOB_PHASE_METRIC, Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets::sim::{science_registry, Allocation, AllocationConfig};
use jets::worker::Executor;
use jets_cli::prom::Scrape;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);
const WORKERS: u32 = 16;
const JOBS: usize = 100;

fn boot(nodes: u32) -> (Dispatcher, Allocation) {
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    while dispatcher.alive_workers() < nodes as usize {
        std::thread::sleep(Duration::from_millis(5));
    }
    (dispatcher, allocation)
}

/// Scrape until `pred` holds or the deadline passes; returns the last
/// scrape either way.
fn scrape_until(addr: &str, pred: impl Fn(&Scrape) -> bool) -> Scrape {
    let deadline = Instant::now() + WAIT;
    loop {
        let text = jets::obs::scrape(addr, "/metrics").expect("scrape /metrics");
        let scrape = Scrape::parse(&text);
        if pred(&scrape) || Instant::now() >= deadline {
            return scrape;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn live_scrape_tracks_a_running_batch() {
    let (dispatcher, allocation) = boot(WORKERS);
    let metrics_addr = dispatcher.serve_metrics("127.0.0.1:0").unwrap().to_string();

    // /healthz answers before any work exists.
    assert_eq!(
        jets::obs::scrape(&metrics_addr, "/healthz").unwrap(),
        "ok\n"
    );

    // A batch long enough that a scrape lands mid-run: 16 workers × 100
    // jobs of ~2 simulated ms each.
    let ids = dispatcher.submit_all(
        (0..JOBS * WORKERS as usize)
            .map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["2".into()]))),
    );
    let total = ids.len() as f64;

    // Mid-run: completions are flowing and the phase summary is live.
    let mid = scrape_until(&metrics_addr, |s| {
        s.value("jets_jobs_completed_total").unwrap_or(0.0) > 0.0
            && s.labeled(&format!("{JOB_PHASE_METRIC}_count"), "phase", "total")
                .unwrap_or(0.0)
                > 0.0
    });
    assert_eq!(mid.value("jets_jobs_submitted_total"), Some(total));
    assert!(mid.value("jets_jobs_completed_total").unwrap_or(0.0) > 0.0);
    // The worker gauges exist and stay within the allocation size.
    let ready = mid
        .value("jets_workers_ready")
        .expect("workers_ready gauge");
    assert!((0.0..=WORKERS as f64).contains(&ready), "ready {ready}");
    let alive = mid.value("jets_workers_alive").unwrap_or(0.0);
    assert!((0.0..=WORKERS as f64).contains(&alive), "alive {alive}");
    assert!(mid.value("jets_queue_depth").is_some());
    assert!(mid.value("jets_running_gangs").is_some());

    assert!(dispatcher.wait_idle(WAIT));
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }

    // Final scrape: conservation and ordered quantiles.
    let fin = scrape_until(&metrics_addr, |s| {
        s.value("jets_jobs_completed_total") == Some(total)
    });
    assert_eq!(fin.value("jets_jobs_completed_total"), Some(total));
    assert_eq!(fin.value("jets_jobs_failed_total"), Some(0.0));
    assert_eq!(fin.value("jets_tasks_started_total"), Some(total));
    assert_eq!(fin.value("jets_tasks_ended_total"), Some(total));
    for phase in ["queue", "launch", "run", "total"] {
        assert_eq!(
            fin.labeled(&format!("{JOB_PHASE_METRIC}_count"), "phase", phase),
            Some(total),
            "phase {phase} count"
        );
        let q = fin.quantiles(JOB_PHASE_METRIC, "phase", phase);
        let (p50, p95, p99) = (q["0.5"], q["0.95"], q["0.99"]);
        assert!(
            p50 <= p95 && p95 <= p99,
            "phase {phase}: p50 {p50} p95 {p95} p99 {p99}"
        );
        assert!(p99 < 120.0, "phase {phase}: p99 {p99}s is absurd");
    }
    // Sequential jobs never negotiate PMI.
    assert_eq!(
        fin.labeled(&format!("{JOB_PHASE_METRIC}_count"), "phase", "pmi"),
        Some(0.0)
    );

    // Once idle, the whole allocation parks in the ready list.
    let idle = scrape_until(&metrics_addr, |s| {
        s.value("jets_workers_ready") == Some(WORKERS as f64)
    });
    assert_eq!(idle.value("jets_workers_ready"), Some(WORKERS as f64));
    assert_eq!(idle.value("jets_queue_depth"), Some(0.0));
    assert_eq!(idle.value("jets_running_gangs"), Some(0.0));

    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn mpi_jobs_record_pmi_phase_and_event_log_matches() {
    let (dispatcher, allocation) = boot(4);
    let ids = dispatcher.submit_all(
        (0..8).map(|_| JobSpec::mpi(2, CommandSpec::builtin("mpi-sleep", vec!["5".into()]))),
    );
    assert!(dispatcher.wait_idle(WAIT));
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }
    let m = dispatcher.metrics();
    assert_eq!(m.phase_pmi.count(), 8, "every MPI job crossed a fence");
    assert_eq!(m.phase_total.count(), 8);

    // One JobPhases event per completed job, with the PMI span set and
    // the phases summing to no more than the end-to-end span.
    let events = dispatcher.events().snapshot();
    let phases: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::JobPhases {
                job,
                nodes,
                queue_us,
                launch_us,
                pmi_us,
                run_us,
                total_us,
            } => Some((
                *job, *nodes, *queue_us, *launch_us, *pmi_us, *run_us, *total_us,
            )),
            _ => None,
        })
        .collect();
    assert_eq!(phases.len(), 8);
    for (job, nodes, queue_us, launch_us, pmi_us, run_us, total_us) in phases {
        assert_eq!(nodes, 2, "job {job}");
        let pmi = pmi_us.expect("MPI job has a PMI span");
        assert!(
            queue_us + launch_us + pmi + run_us <= total_us + 1_000,
            "job {job}: phases exceed total by more than rounding"
        );
        // The task slept ~5 simulated ms between barriers.
        assert!(run_us > 0, "job {job}: zero run span");
    }
    dispatcher.shutdown();
    allocation.join_all();
}

#[test]
fn metrics_endpoint_shuts_down_with_dispatcher() {
    let (dispatcher, allocation) = boot(1);
    let addr = dispatcher.serve_metrics("127.0.0.1:0").unwrap().to_string();
    assert!(jets::obs::scrape(&addr, "/metrics").is_ok());
    dispatcher.shutdown();
    allocation.join_all();
    drop(dispatcher);
    // The responder died with the dispatcher; the port no longer answers.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if jets::obs::scrape(&addr, "/healthz").is_err() {
            break;
        }
        assert!(Instant::now() < deadline, "responder survived shutdown");
        std::thread::sleep(Duration::from_millis(10));
    }
}
