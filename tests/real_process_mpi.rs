//! End-to-end with *real OS processes*: the dispatcher launches an MPI
//! job whose ranks are separate `namd-lite` processes wired up over PMI
//! and TCP — the deployment mode of the paper's commodity-cluster runs.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{Dispatcher, DispatcherConfig, JobStatus};
use jets::namd::io::read_xsc;
use jets::namd::MdConfig;
use jets::worker::{Executor, Worker, WorkerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Locate a workspace binary next to the test executable
/// (`target/debug/deps/this_test` → `target/debug/<name>`).
fn workspace_binary(name: &str) -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let debug_dir = exe.parent()?.parent()?;
    let candidate = debug_dir.join(name);
    candidate.exists().then_some(candidate)
}

#[test]
fn real_process_mpi_namd_segment() {
    let Some(namd_lite) = workspace_binary("namd-lite") else {
        eprintln!("skipping: namd-lite binary not built (run `cargo build -p jets-cli` first)");
        return;
    };
    let dir = std::env::temp_dir().join(format!("real-mpi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_prefix = dir.join("seg");
    let config = MdConfig {
        num_atoms: 24,
        numsteps: 4,
        outputname: out_prefix.to_string_lossy().into_owned(),
        ..MdConfig::default()
    };
    let config_path = dir.join("seg.conf");
    std::fs::write(&config_path, config.render()).unwrap();

    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    // Plain executors: Exec commands spawn real processes.
    let exec: Arc<dyn jets::worker::TaskExecutor> = Arc::new(Executor::default());
    let workers: Vec<Worker> = (0..2)
        .map(|i| {
            Worker::spawn(
                WorkerConfig::new(dispatcher.addr().to_string(), format!("proc-{i}")),
                Arc::clone(&exec),
            )
        })
        .collect();

    let id = dispatcher.submit(JobSpec::mpi(
        2,
        CommandSpec::exec(
            namd_lite.to_string_lossy().into_owned(),
            vec![config_path.to_string_lossy().into_owned()],
        ),
    ));
    assert!(
        dispatcher.wait_idle(Duration::from_secs(120)),
        "real-process MPI job hung"
    );
    let record = dispatcher.job_record(id).unwrap();
    assert_eq!(record.status, JobStatus::Succeeded, "{record:?}");

    // The two processes cooperated on one trajectory; rank 0 wrote it.
    let xsc = read_xsc(Path::new(&format!("{}.xsc", out_prefix.display()))).unwrap();
    assert_eq!(xsc.step, 4);
    assert!(xsc.potential.is_finite());

    dispatcher.shutdown();
    for w in workers {
        w.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn real_process_sequential_command() {
    let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let exec: Arc<dyn jets::worker::TaskExecutor> = Arc::new(Executor::default());
    let worker = Worker::spawn(
        WorkerConfig::new(dispatcher.addr().to_string(), "proc"),
        exec,
    );
    let ok = dispatcher.submit(JobSpec::sequential(CommandSpec::exec("true", vec![])));
    let bad = dispatcher.submit(JobSpec::sequential(CommandSpec::exec("false", vec![])));
    assert!(dispatcher.wait_idle(Duration::from_secs(60)));
    assert_eq!(
        dispatcher.job_record(ok).unwrap().status,
        JobStatus::Succeeded
    );
    let failed = dispatcher.job_record(bad).unwrap();
    assert_eq!(failed.status, JobStatus::Failed);
    assert_eq!(failed.exit_codes, vec![1]);
    dispatcher.shutdown();
    worker.join();
}
