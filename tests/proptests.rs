//! Property-based tests over cross-crate invariants.

use jets::core::queue::{JobQueue, QueuedJob};
use jets::core::spec::{parse_input, CommandSpec, JobSpec};
use jets::core::QueuePolicy;
use jets::mpi::{runner, NetModel, ReduceOp};
use jets::pmi::wire::{escape, unescape, Message};
use jets::pmi::{ManualLauncher, RankLayout};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PMI escaping is lossless for arbitrary strings.
    #[test]
    fn pmi_escape_round_trips(s in ".*") {
        prop_assert_eq!(unescape(&escape(&s)).unwrap(), s);
    }

    /// Escaped text never contains characters that would break framing.
    #[test]
    fn pmi_escape_output_is_frame_safe(s in ".*") {
        let e = escape(&s);
        prop_assert!(!e.contains(' ') && !e.contains('=') && !e.contains('\n'));
    }

    /// Arbitrary put messages survive the wire.
    #[test]
    fn pmi_put_messages_round_trip(key in ".{0,40}", value in ".{0,80}") {
        let m = Message::Put { key, value };
        prop_assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    /// The manual launcher covers every rank exactly once, whatever the
    /// layout.
    #[test]
    fn proxy_commands_partition_ranks(nodes in 1u32..40, ppn in 1u32..8) {
        let layout = RankLayout { nodes, ppn };
        let cmds = ManualLauncher.proxy_commands("j", layout, "h:1");
        let mut all: Vec<u32> = cmds.iter().flat_map(|c| c.ranks.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..layout.size()).collect::<Vec<_>>());
    }

    /// FIFO never reorders; every pushed job comes out exactly once.
    #[test]
    fn fifo_queue_preserves_order(sizes in prop::collection::vec(1u32..8, 1..30)) {
        let mut q = JobQueue::new(QueuePolicy::Fifo);
        for (i, &n) in sizes.iter().enumerate() {
            q.push(QueuedJob {
                id: i as u64,
                spec: JobSpec::mpi(n, CommandSpec::builtin("x", vec![])),
                attempts: 0,
                excluded: Vec::new(),
                submitted_at: std::time::Instant::now(),
                enqueued_at: std::time::Instant::now(),
            });
        }
        let mut out = Vec::new();
        while let Some(j) = q.pick(usize::MAX) {
            out.push(j.id);
        }
        prop_assert_eq!(out, (0..sizes.len() as u64).collect::<Vec<_>>());
    }

    /// Backfill never loses or duplicates jobs either, and only emits
    /// jobs that fit.
    #[test]
    fn backfill_queue_conserves_jobs(
        sizes in prop::collection::vec(1u32..10, 1..30),
        free in 1usize..10,
    ) {
        let mut q = JobQueue::new(QueuePolicy::PriorityBackfill);
        for (i, &n) in sizes.iter().enumerate() {
            q.push(QueuedJob {
                id: i as u64,
                spec: JobSpec::mpi(n, CommandSpec::builtin("x", vec![])),
                attempts: 0,
                excluded: Vec::new(),
                submitted_at: std::time::Instant::now(),
                enqueued_at: std::time::Instant::now(),
            });
        }
        let mut emitted = Vec::new();
        while let Some(j) = q.pick(free) {
            prop_assert!(j.spec.nodes as usize <= free);
            emitted.push(j.id);
        }
        let expected: Vec<u64> = sizes
            .iter()
            .enumerate()
            .filter(|(_, &n)| n as usize <= free)
            .map(|(i, _)| i as u64)
            .collect();
        let mut sorted = emitted.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, expected);
        prop_assert_eq!(q.len(), sizes.len() - emitted.len());
    }

    /// Input-file parsing accepts every well-formed MPI line.
    #[test]
    fn input_lines_parse(nodes in 1u32..100, ppn in 1u32..8, arg in "[a-z0-9._/-]{1,20}") {
        let text = format!("MPI: {nodes} ppn={ppn} prog {arg}\n");
        let jobs = parse_input(&text).unwrap();
        prop_assert_eq!(jobs.len(), 1);
        prop_assert_eq!(jobs[0].nodes, nodes);
        prop_assert_eq!(jobs[0].ppn, ppn);
        prop_assert_eq!(jobs[0].cmd.args(), &[arg]);
    }

    /// Metropolis acceptance stays within probability bounds and is
    /// certain for non-negative deltas.
    #[test]
    fn metropolis_bounds(delta in -30.0f64..30.0, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let accepted = jets::namd::metropolis_accept(delta, &mut rng);
        if delta >= 0.0 {
            prop_assert!(accepted);
        }
        // (negative deltas may go either way; determinism is separately
        // guaranteed by the seeded RNG)
        let mut rng2 = StdRng::seed_from_u64(seed);
        prop_assert_eq!(accepted, jets::namd::metropolis_accept(delta, &mut rng2));
    }
}

proptest! {
    // Collective correctness spawns threads; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Allreduce(SUM) agrees with a sequential reduction for arbitrary
    /// inputs, sizes, and vector lengths.
    #[test]
    fn allreduce_matches_sequential(
        size in 1u32..6,
        data in prop::collection::vec(-1000i64..1000, 1..8),
    ) {
        let len = data.len();
        let data2 = data.clone();
        let results = runner::run_threads(size, NetModel::ideal(), move |comm| {
            // Rank r contributes data rotated by r so every rank differs.
            let mine: Vec<i64> = (0..len)
                .map(|i| data2[(i + comm.rank() as usize) % len])
                .collect();
            comm.allreduce(&mine, ReduceOp::Sum).unwrap()
        })
        .unwrap();
        let mut expected = vec![0i64; len];
        for r in 0..size as usize {
            for (i, e) in expected.iter_mut().enumerate() {
                *e += data[(i + r) % len];
            }
        }
        for got in results {
            prop_assert_eq!(&got, &expected);
        }
    }

    /// Broadcast delivers the root's data bit-exactly to every rank for
    /// any root and size.
    #[test]
    fn bcast_delivers_exact_data(
        size in 1u32..6,
        payload in prop::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 0..16),
    ) {
        for root in 0..size {
            let p = payload.clone();
            let results = runner::run_threads(size, NetModel::ideal(), move |comm| {
                let data = if comm.rank() == root { p.clone() } else { Vec::new() };
                comm.bcast(root, data).unwrap()
            })
            .unwrap();
            for got in results {
                prop_assert_eq!(&got, &payload);
            }
        }
    }
}
