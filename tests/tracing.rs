//! Tier-1 loopback: distributed span tracing end to end.
//!
//! The acceptance topology: 16 workers — half connected directly, half
//! behind a relay — run a mixed sequential + MPI batch while every
//! process records its flight lane. Merging the lanes must yield a
//! fully-closed submit→run span chain for every completed job, spanning
//! at least two processes; the Perfetto export must be valid JSON; and
//! the critical-path phase durations must reconcile with the same
//! `jets_job_phase_seconds` measurements the live histograms record.
//!
//! The crash half: `kill` the dispatcher mid-batch and merge whatever
//! the surviving flight files retain — open spans and torn slots are
//! counted, never fatal, and every job whose report span closed before
//! the kill still has a complete chain.

use jets::core::spec::{CommandSpec, JobSpec};
use jets::core::{read_flight, Dispatcher, DispatcherConfig, EventKind, JobStatus, SpanKind};
use jets::relay::{Relay, RelayConfig};
use jets::sim::science_registry;
use jets::worker::{Executor, Worker, WorkerConfig};
use jets_trace::TraceModel;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("jets-trace-{name}-{}.ring", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Spawn `n` worker agents against `addr`, each with its own flight
/// file. Returns the workers and their flight paths.
fn spawn_workers(addr: &str, prefix: &str, n: usize) -> (Vec<Worker>, Vec<PathBuf>) {
    let mut workers = Vec::with_capacity(n);
    let mut paths = Vec::with_capacity(n);
    for i in 0..n {
        let path = temp_path(&format!("{prefix}{i}"));
        let config =
            WorkerConfig::new(addr.to_string(), format!("{prefix}{i}")).with_flight_recorder(&path);
        let worker = Worker::spawn(config, Arc::new(Executor::new(science_registry())));
        assert!(worker.events().is_some(), "worker flight file must open");
        workers.push(worker);
        paths.push(path);
    }
    (workers, paths)
}

/// Minimal recursive-descent JSON validator: the export promises *valid*
/// Chrome trace-event JSON, and the workspace is zero-dependency, so the
/// test checks well-formedness by hand rather than trusting a library.
fn assert_valid_json(s: &str) {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Result<usize, usize> {
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(i);
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(i),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(i),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') if b[i..].starts_with(b"true") => Ok(i + 4),
            Some(b'f') if b[i..].starts_with(b"false") => Ok(i + 5),
            Some(b'n') if b[i..].starts_with(b"null") => Ok(i + 4),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < b.len()
                    && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                Ok(i)
            }
            _ => Err(i),
        }
    }
    fn string(b: &[u8], i: usize) -> Result<usize, usize> {
        if b.get(i) != Some(&b'"') {
            return Err(i);
        }
        let mut i = i + 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err(i)
    }
    let b = s.as_bytes();
    match value(b, 0) {
        Ok(end) => assert!(
            skip_ws(b, end) == b.len(),
            "trailing garbage after JSON at byte {end}"
        ),
        Err(at) => panic!(
            "invalid JSON at byte {at}: ...{}...",
            &s[at.saturating_sub(40)..(at + 40).min(s.len())]
        ),
    }
}

/// The acceptance run: 8 direct + 8 relayed workers, a mixed batch, and
/// a merged trace where every job's chain closes across processes and
/// the phase durations agree with `jets_job_phase_seconds`.
#[test]
fn mixed_topology_trace_closes_every_job_across_processes() {
    const DIRECT: usize = 8;
    const RELAYED: usize = 8;
    const SEQ_JOBS: usize = 48;
    const MPI_JOBS: usize = 4;
    let dispatcher_flight = temp_path("d");
    let relay_flight = temp_path("r");
    let dispatcher = Dispatcher::start(DispatcherConfig {
        flight_recorder: Some(dispatcher_flight.clone()),
        monitor_tick: Duration::from_millis(10),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let relay = Relay::start(
        RelayConfig::new(dispatcher.addr().to_string(), "trace-relay")
            .with_liveness_flush(Duration::from_millis(50))
            .with_flight_recorder(&relay_flight),
    )
    .unwrap();
    let (direct, direct_paths) = spawn_workers(&dispatcher.addr().to_string(), "td", DIRECT);
    let (relayed, relayed_paths) = spawn_workers(&relay.addr().to_string(), "tr", RELAYED);
    wait_until("all 16 workers", || {
        dispatcher.alive_workers() == DIRECT + RELAYED
    });

    let mut specs: Vec<JobSpec> = (0..SEQ_JOBS)
        .map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["5".into()])))
        .collect();
    specs.extend(
        (0..MPI_JOBS)
            .map(|_| JobSpec::mpi(4, CommandSpec::builtin("mpi-sleep", vec!["10".into()]))),
    );
    let ids = dispatcher.submit_all(specs);
    assert!(dispatcher.wait_idle(WAIT), "batch did not drain");
    for id in &ids {
        assert_eq!(
            dispatcher.job_record(*id).unwrap().status,
            JobStatus::Succeeded
        );
    }

    // Freeze every lane: tear the whole topology down before reading.
    dispatcher.shutdown();
    for w in direct.into_iter().chain(relayed) {
        w.join();
    }
    relay.shutdown();
    drop(dispatcher);
    std::thread::sleep(Duration::from_millis(300));

    let mut paths = vec![dispatcher_flight.clone(), relay_flight.clone()];
    paths.extend(direct_paths.iter().cloned());
    paths.extend(relayed_paths.iter().cloned());
    let model = TraceModel::from_files(&paths).expect("merge flight lanes");

    // A clean run: every start met its end, nothing lost to wraparound.
    assert_eq!(model.unmatched_ends, 0);
    assert_eq!(
        model.open.len(),
        0,
        "open spans after idle: {:?}",
        model.open
    );
    assert_eq!(model.lanes.len(), 2 + DIRECT + RELAYED);
    // Every completed job's chain is closed and crosses processes.
    for id in &ids {
        assert!(
            model.job_chain_closed(*id),
            "job {id} chain not fully closed"
        );
    }
    // The relayed half really went through the relay's lane.
    assert!(
        model.spans.iter().any(|s| s.kind == SpanKind::RelayForward),
        "no relay-forward spans despite 8 relayed workers"
    );
    // The gangs fenced: each MPI job owns a closed pmi-barrier span.
    for id in &ids[SEQ_JOBS..] {
        assert!(
            model
                .spans
                .iter()
                .any(|s| s.job == *id && s.kind == SpanKind::PmiBarrier),
            "MPI job {id} has no pmi-barrier span"
        );
    }

    // The export is valid Chrome trace-event JSON with every span in it.
    let json = model.perfetto_json();
    assert_valid_json(&json);
    assert_eq!(json.matches("\"ph\":\"X\"").count(), model.spans.len());
    assert_eq!(json.matches("\"ph\":\"B\"").count(), 0);

    // Critical-path durations reconcile with the JobPhases record that
    // fed `jets_job_phase_seconds` — same clock, independent code paths,
    // so agreement is tight; the tolerance only absorbs the instants
    // being taken a few statements apart.
    const TOLERANCE_US: u64 = 100_000;
    let dispatcher_view = read_flight(&dispatcher_flight).expect("replay dispatcher lane");
    let probe = ids[0];
    let phases = dispatcher_view
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::JobPhases {
                job,
                queue_us,
                run_us,
                ..
            } if job == probe => Some((queue_us, run_us)),
            _ => None,
        })
        .expect("JobPhases record for the probe job");
    let cp = model.critical_path(probe).expect("critical path");
    let phase_dur = |kind: SpanKind| {
        cp.phases
            .iter()
            .find(|p| p.kind == kind)
            .map(|p| p.dur_us)
            .unwrap_or(0)
    };
    assert!(
        phase_dur(SpanKind::Queue).abs_diff(phases.0) <= TOLERANCE_US,
        "queue span {} us vs jets_job_phase_seconds queue {} us",
        phase_dur(SpanKind::Queue),
        phases.0
    );
    assert!(
        phase_dur(SpanKind::Run).abs_diff(phases.1) <= TOLERANCE_US,
        "run span {} us vs jets_job_phase_seconds run {} us",
        phase_dur(SpanKind::Run),
        phases.1
    );
    assert!(cp.total_us >= phase_dur(SpanKind::Run));

    // Eq. (1) over the merged lanes: 16 worker lanes, real busy time.
    let st = model.stats();
    assert_eq!(st.worker_lanes, (DIRECT + RELAYED) as u64);
    assert!(st.busy_us > 0);
    assert!(st.utilization > 0.0 && st.utilization <= 1.0);
    assert_eq!(st.jobs, ids.len() as u64);

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

/// The crash half: kill the dispatcher mid-batch, merge the surviving
/// lanes. Open spans and torn slots are counted — never a panic — and
/// jobs whose report span closed before the kill still have complete
/// cross-process chains.
#[test]
fn killed_dispatcher_trace_exports_with_open_spans_counted() {
    const WORKERS: usize = 4;
    const JOBS: usize = 60;
    let dispatcher_flight = temp_path("kill-d");
    let dispatcher = Dispatcher::start(DispatcherConfig {
        flight_recorder: Some(dispatcher_flight.clone()),
        ..DispatcherConfig::default()
    })
    .unwrap();
    let (workers, worker_paths) = spawn_workers(&dispatcher.addr().to_string(), "tk", WORKERS);
    wait_until("workers", || dispatcher.alive_workers() == WORKERS);

    let ids = dispatcher.submit_all(
        (0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("sleep", vec!["5".into()]))),
    );
    wait_until("first third of the batch", || {
        ids.iter()
            .filter(|id| {
                dispatcher
                    .job_record(**id)
                    .is_some_and(|r| r.status == JobStatus::Succeeded)
            })
            .count()
            >= JOBS / 3
    });
    // No sync, no goodbye — the crash case the flight recorder exists
    // for. The workers lose their dispatcher and wind down.
    dispatcher.kill();
    for w in workers {
        w.join();
    }
    std::thread::sleep(Duration::from_millis(300));

    let mut paths = vec![dispatcher_flight];
    paths.extend(worker_paths);
    let model = TraceModel::from_files(&paths).expect("merge lanes after kill");

    // The batch was cut mid-flight: queued and running jobs have open
    // spans, and that is reported, not fatal.
    assert!(
        !model.open.is_empty(),
        "a mid-batch kill must leave open spans"
    );
    // Jobs whose report span closed finished before the kill; their
    // whole chain — including the worker-side exec — must be closed.
    let reported: Vec<u64> = model
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Report)
        .map(|s| s.job)
        .collect();
    assert!(
        reported.len() >= JOBS / 3 - 1,
        "only {} report spans survived the kill",
        reported.len()
    );
    for job in &reported {
        assert!(
            model.job_chain_closed(*job),
            "completed job {job} lost part of its chain"
        );
    }

    // The export never panics on a crashed trace, stays valid JSON, and
    // renders the open spans as begin-only events.
    let json = model.perfetto_json();
    assert_valid_json(&json);
    assert_eq!(json.matches("\"ph\":\"B\"").count(), model.open.len());
    let st = model.stats();
    assert_eq!(st.open_spans, model.open.len() as u64);

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
