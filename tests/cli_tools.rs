//! Integration tests driving the actual command-line binaries.

use std::path::PathBuf;
use std::process::Command;

/// Locate a workspace binary next to the test executable.
fn workspace_binary(name: &str) -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let debug_dir = exe.parent()?.parent()?;
    let candidate = debug_dir.join(name);
    candidate.exists().then_some(candidate)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn jets_tool_runs_a_simulated_batch() {
    let Some(jets) = workspace_binary("jets") else {
        eprintln!("skipping: jets binary not built");
        return;
    };
    let dir = tmpdir("jets");
    let taskfile = dir.join("tasks.txt");
    std::fs::write(
        &taskfile,
        "# mixed batch\n@noop\n@sleep 20\nMPI: 2 @mpi-sleep 20\nMPI: 2 ppn=2 @mpi-sleep 10\n",
    )
    .unwrap();
    let output = Command::new(&jets)
        .arg(&taskfile)
        .args(["--simulate", "4", "--timeout", "120"])
        .output()
        .expect("run jets");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("4 succeeded, 0 failed"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jets_tool_reports_parse_errors() {
    let Some(jets) = workspace_binary("jets") else {
        return;
    };
    let dir = tmpdir("jets-err");
    let taskfile = dir.join("bad.txt");
    std::fs::write(&taskfile, "MPI: zero @noop\n").unwrap();
    let output = Command::new(&jets)
        .arg(&taskfile)
        .args(["--simulate", "1"])
        .output()
        .expect("run jets");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 1"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn namd_lite_runs_serially_from_cli() {
    let Some(namd) = workspace_binary("namd-lite") else {
        return;
    };
    let dir = tmpdir("namd");
    let out = dir.join("seg");
    std::fs::write(
        dir.join("seg.conf"),
        format!(
            "numAtoms 24\nnumsteps 3\noutputname {}\n",
            out.to_string_lossy()
        ),
    )
    .unwrap();
    let output = Command::new(&namd)
        .arg(dir.join("seg.conf"))
        .output()
        .expect("run namd-lite");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("24 atoms, step 3"), "stdout: {stdout}");
    assert!(out.with_extension("coor").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rem_exchange_cli_swaps_files() {
    let (Some(namd), Some(rem)) = (
        workspace_binary("namd-lite"),
        workspace_binary("rem-exchange"),
    ) else {
        return;
    };
    let dir = tmpdir("rem");
    for (name, temp) in [("a", "0.8"), ("b", "1.6")] {
        std::fs::write(
            dir.join(format!("{name}.conf")),
            format!(
                "numAtoms 24\nnumsteps 3\ntemperature {temp}\noutputname {}\n",
                dir.join(name).to_string_lossy()
            ),
        )
        .unwrap();
        assert!(Command::new(&namd)
            .arg(dir.join(format!("{name}.conf")))
            .status()
            .unwrap()
            .success());
    }
    let output = Command::new(&rem)
        .args([
            dir.join("a").to_string_lossy().as_ref(),
            "0.8",
            dir.join("b").to_string_lossy().as_ref(),
            "1.6",
            "7",
        ])
        .output()
        .expect("run rem-exchange");
    assert!(output.status.success());
    let verdict = String::from_utf8_lossy(&output.stdout);
    assert!(
        verdict.trim() == "accepted" || verdict.trim() == "rejected",
        "verdict: {verdict}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swiftlite_cli_runs_local_workflow() {
    let Some(swift) = workspace_binary("swiftlite") else {
        return;
    };
    let dir = tmpdir("swift");
    let out = dir.join("hello.out");
    let script = dir.join("wf.swift");
    std::fs::write(
        &script,
        format!(
            r#"
app (file o) hello (string w) {{
    "echo" w stdout=@o
}}
file out <"{}">;
out = hello("hi-from-swiftlite");
trace("done");
"#,
            out.to_string_lossy()
        ),
    )
    .unwrap();
    let output = Command::new(&swift)
        .arg(&script)
        .args(["--workdir", dir.join("work").to_string_lossy().as_ref()])
        .output()
        .expect("run swiftlite");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("trace: done"), "stdout: {stdout}");
    assert!(
        stdout.contains("1 app invocations completed"),
        "stdout: {stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&out).unwrap().trim(),
        "hi-from-swiftlite"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpiexec_manual_launcher_drives_real_processes() {
    // The full launcher=manual loop with OS processes: jets-mpiexec
    // prints proxy environments; we parse them and start real namd-lite
    // processes that wire up over PMI + TCP.
    let (Some(mpiexec), Some(namd)) = (
        workspace_binary("jets-mpiexec"),
        workspace_binary("namd-lite"),
    ) else {
        return;
    };
    let dir = tmpdir("mpiexec");
    let out = dir.join("seg");
    let conf = dir.join("seg.conf");
    std::fs::write(
        &conf,
        format!(
            "numAtoms 24\nnumsteps 3\noutputname {}\n",
            out.to_string_lossy()
        ),
    )
    .unwrap();

    let mut manager = Command::new(&mpiexec)
        .args(["-n", "2", "--jobid", "cli-test", "--timeout", "60"])
        .arg("namd-lite")
        .arg(&conf)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("start jets-mpiexec");

    // Read proxy lines until both ranks are printed.
    use std::io::BufRead;
    let stdout = manager.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut ranks = Vec::new();
    let mut line = String::new();
    while ranks.len() < 2 {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "mpiexec ended early"
        );
        if let Some(rest) = line.strip_prefix("node ") {
            // Format: `node NNN: K=V K=V K=V K=V namd-lite CONF`
            let (_, envs_and_cmd) = rest.split_once(": ").expect("node line format");
            let env: Vec<(String, String)> = envs_and_cmd
                .split_whitespace()
                .take(4)
                .map(|kv| {
                    let (k, v) = kv.split_once('=').expect("env pair");
                    (k.to_string(), v.to_string())
                })
                .collect();
            ranks.push(env);
        }
    }
    // Launch the two user processes ourselves — we are the external
    // scheduler the manual launcher exists for.
    let children: Vec<_> = ranks
        .into_iter()
        .map(|env| {
            Command::new(&namd)
                .arg(&conf)
                .envs(env)
                .spawn()
                .expect("start rank process")
        })
        .collect();
    for mut child in children {
        assert!(child.wait().unwrap().success());
    }
    assert!(manager.wait().unwrap().success(), "mpiexec saw job failure");
    assert!(out.with_extension("coor").exists());
    std::fs::remove_dir_all(&dir).ok();
}
