//! End-to-end: the REM workflow — Swift script → JETS dispatcher →
//! pilot workers → PMI wire-up → MPI molecular dynamics → file exchange.

use jets::core::{Dispatcher, DispatcherConfig};
use jets::namd::io::read_xsc;
use jets::namd::{rem_script, stage_initial_replicas, RemParams};
use jets::sim::{science_registry, Allocation, AllocationConfig};
use jets::swift::{JetsExecutor, RunOptions, Workflow};
use jets::worker::Executor;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn run_rem(params: &RemParams, nodes: u32) -> jets::swift::WorkflowReport {
    stage_initial_replicas(params).unwrap();
    let dispatcher = Arc::new(Dispatcher::start(DispatcherConfig::default()).unwrap());
    let allocation = Allocation::start(
        &dispatcher.addr().to_string(),
        AllocationConfig::new(nodes),
        Arc::new(Executor::new(science_registry())),
    );
    let workflow = Workflow::parse(&rem_script(params)).unwrap();
    let executor = JetsExecutor::new(Arc::clone(&dispatcher), Duration::from_secs(120));
    let report = workflow
        .run(
            Arc::new(executor),
            RunOptions {
                work_dir: Path::new(&params.dir).join("anon"),
                wait_timeout: Duration::from_secs(240),
            },
        )
        .unwrap();
    dispatcher.shutdown();
    allocation.join_all();
    report
}

fn tmp_dir(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("rem-e2e-{tag}-{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn rem_mpi_segments_full_campaign() {
    let params = RemParams {
        replicas: 4,
        segments: 2,
        nodes: 2,
        ppn: 1,
        atoms: 24,
        steps: 5,
        dir: tmp_dir("mpi"),
        ..RemParams::default()
    };
    let report = run_rem(&params, 4);
    // 8 NAMD segments + exchanges (one per pair per epoch: epochs 0 and 1
    // contribute 2 and 1 pairs respectively for 4 replicas).
    assert_eq!(report.apps_run as u32, params.namd_invocations() + 3);

    // Every replica's final segment must exist with finite energies and a
    // correctly advanced step counter (5 staging steps + 2 × 5).
    for i in 0..params.replicas {
        let k = params.index(i, params.segments);
        let xsc = read_xsc(Path::new(&format!("{}/seg_{k}.xsc", params.dir))).unwrap();
        assert_eq!(xsc.step, 15, "replica {i}");
        assert!(xsc.potential.is_finite());
        assert!(xsc.temperature > 0.0 && xsc.temperature < 10.0);
    }
    std::fs::remove_dir_all(&params.dir).ok();
}

#[test]
fn rem_single_process_segments() {
    // Fig. 18a mode: single-process NAMD segments.
    let params = RemParams {
        replicas: 3,
        segments: 2,
        nodes: 1,
        ppn: 1,
        atoms: 24,
        steps: 4,
        dir: tmp_dir("serial"),
        ..RemParams::default()
    };
    let report = run_rem(&params, 3);
    assert!(report.apps_run as u32 >= params.namd_invocations());
    for i in 0..params.replicas {
        let k = params.index(i, params.segments);
        assert!(
            Path::new(&format!("{}/seg_{k}.coor", params.dir)).exists(),
            "replica {i} final coordinates missing"
        );
    }
    std::fs::remove_dir_all(&params.dir).ok();
}

#[test]
fn rem_exchange_tokens_are_written() {
    let params = RemParams {
        replicas: 2,
        segments: 2,
        nodes: 1,
        ppn: 1,
        atoms: 24,
        steps: 4,
        dir: tmp_dir("tokens"),
        ..RemParams::default()
    };
    run_rem(&params, 2);
    // With 2 replicas, exchanges happen on even epochs only (pairing
    // (0,1) at j=0); epoch j=1 pairs (1,2) which is out of range.
    let token = format!("{}/ex_{}.token", params.dir, params.index(0, 0));
    let verdict = std::fs::read_to_string(&token).unwrap();
    assert!(
        verdict.trim() == "accepted" || verdict.trim() == "rejected",
        "token: {verdict:?}"
    );
    std::fs::remove_dir_all(&params.dir).ok();
}
